// Reproduces Fig. 5: total query time (query computation + processing until
// >= 10 answers) of our approach vs. the answer-tree baselines on DBLP data,
// for queries Q1-Q10 of increasing keyword count.
//
//   - "ours":      top-10 query computation on the summary graph, plus
//                  evaluation of the computed queries (best first) until 10
//                  answers are retrieved — exactly the protocol of Sec. VII-B.
//   - "bidirect":  bidirectional expansion on the data graph [14].
//   - "backward":  BANKS-style backward expansion [1] (extra reference).
//   - "{1000,300} x {BFS,METIS}": BLINKS-style block-index search [2]
//                  (METIS is substituted by the greedy refiner, DESIGN.md §5).
//
// Expected shape (paper): ours beats bidirect by about an order of magnitude
// on most queries and degrades least as the keyword count grows (Q7-Q10);
// the block-indexed baselines sit in between.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/backward_search.h"
#include "baseline/bidirectional_search.h"
#include "baseline/blinks.h"
#include "baseline/keyword_map.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/workload.h"

namespace {

using grasp::baseline::BaselineOptions;
using grasp::core::KeywordSearchEngine;

/// Our end-to-end protocol: compute top-10 queries, then evaluate them in
/// rank order until at least 10 answers accumulate.
double OursTotalMillis(const KeywordSearchEngine& engine,
                       const std::vector<std::string>& keywords) {
  grasp::WallTimer timer;
  auto result = engine.Search(keywords, 10);
  std::size_t answers = 0;
  for (const auto& ranked : result.queries) {
    auto eval = engine.Answers(ranked.query, 10 - answers);
    if (eval.ok()) answers += eval->rows.size();
    if (answers >= 10) break;
  }
  return timer.ElapsedMillis();
}

}  // namespace

int main() {
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  std::printf(
      "Fig. 5 reproduction: total time (ms, log-scale in the paper) on DBLP "
      "(%zu triples)\n",
      dblp.store.size());

  KeywordSearchEngine engine(dblp.store, dblp.dictionary);
  const auto& graph = engine.data_graph();
  grasp::baseline::VertexKeywordMap keyword_map(graph);
  grasp::baseline::BackwardSearch backward(graph, keyword_map);
  grasp::baseline::BidirectionalSearch bidirect(graph, keyword_map);

  auto make_blinks = [&](std::size_t blocks,
                         grasp::baseline::PartitionMethod method) {
    grasp::baseline::BlinksIndex::BuildOptions options;
    options.num_blocks = blocks;
    options.method = method;
    return grasp::baseline::BlinksIndex(graph, keyword_map, options);
  };
  grasp::baseline::BlinksIndex blinks_1000_bfs =
      make_blinks(1000, grasp::baseline::PartitionMethod::kBfs);
  grasp::baseline::BlinksIndex blinks_1000_greedy =
      make_blinks(1000, grasp::baseline::PartitionMethod::kGreedy);
  grasp::baseline::BlinksIndex blinks_300_bfs =
      make_blinks(300, grasp::baseline::PartitionMethod::kBfs);
  grasp::baseline::BlinksIndex blinks_300_greedy =
      make_blinks(300, grasp::baseline::PartitionMethod::kGreedy);

  BaselineOptions baseline_options;
  baseline_options.k = 10;
  baseline_options.max_visits = 2000000;
  grasp::baseline::BidirectionalSearch::Options bidi_options;
  static_cast<BaselineOptions&>(bidi_options) = baseline_options;

  std::printf("\n%-5s %3s %10s %10s %10s %10s %10s %10s %10s\n", "query",
              "#kw", "ours", "bidirect", "backward", "1000BFS", "1000METIS*",
              "300BFS", "300METIS*");
  grasp::bench::Rule(96);

  for (const auto& wq : grasp::datagen::DblpPerformanceWorkload()) {
    const double ours = OursTotalMillis(engine, wq.keywords);
    const double t_bidi = bidirect.Search(wq.keywords, bidi_options).millis;
    const double t_back = backward.Search(wq.keywords, baseline_options).millis;
    const double t_1000_bfs =
        blinks_1000_bfs.Search(wq.keywords, baseline_options).millis;
    const double t_1000_greedy =
        blinks_1000_greedy.Search(wq.keywords, baseline_options).millis;
    const double t_300_bfs =
        blinks_300_bfs.Search(wq.keywords, baseline_options).millis;
    const double t_300_greedy =
        blinks_300_greedy.Search(wq.keywords, baseline_options).millis;
    std::printf("%-5s %3zu %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                wq.id.c_str(), wq.keywords.size(), ours, t_bidi, t_back,
                t_1000_bfs, t_1000_greedy, t_300_bfs, t_300_greedy);
  }
  grasp::bench::Rule(96);
  std::printf(
      "*METIS substituted by the greedy min-cut refiner (DESIGN.md §5).\n"
      "BLINKS index build (ms): 1000BFS=%.1f 1000METIS*=%.1f 300BFS=%.1f "
      "300METIS*=%.1f\n",
      blinks_1000_bfs.build_millis(), blinks_1000_greedy.build_millis(),
      blinks_300_bfs.build_millis(), blinks_300_greedy.build_millis());

  // Scaling sweep: the paper's order-of-magnitude gap over bidirectional
  // search comes from data volume (their DBLP has 26M triples) — the data
  // graph grows with the dataset while the summary graph does not. This
  // section regenerates DBLP at increasing scale and reruns ours vs
  // bidirectional; the expected shape is bidirect growing roughly linearly
  // with the data and ours staying near-flat.
  std::printf(
      "\nScaling (avg over Q1-Q10, ms): ours vs bidirectional expansion\n");
  std::printf("%8s %10s %10s %10s %10s\n", "scale", "triples", "ours",
              "bidirect", "ratio");
  grasp::bench::Rule(52);
  for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
    grasp::datagen::DblpOptions options;
    options.num_authors = static_cast<std::size_t>(1500 * scale);
    options.num_publications = static_cast<std::size_t>(5000 * scale);
    grasp::bench::Dataset scaled;
    grasp::datagen::GenerateDblp(options, &scaled.dictionary, &scaled.store);
    scaled.store.Finalize();
    KeywordSearchEngine scaled_engine(scaled.store, scaled.dictionary);
    grasp::baseline::VertexKeywordMap scaled_map(scaled_engine.data_graph());
    grasp::baseline::BidirectionalSearch scaled_bidi(
        scaled_engine.data_graph(), scaled_map);
    double ours_total = 0.0, bidi_total = 0.0;
    std::size_t queries = 0;
    for (const auto& wq : grasp::datagen::DblpPerformanceWorkload()) {
      ours_total += OursTotalMillis(scaled_engine, wq.keywords);
      bidi_total += scaled_bidi.Search(wq.keywords, bidi_options).millis;
      ++queries;
    }
    const double ours_avg = ours_total / static_cast<double>(queries);
    const double bidi_avg = bidi_total / static_cast<double>(queries);
    std::printf("%8.0fx %10zu %10.2f %10.2f %9.1fx\n", scale,
                scaled.store.size(), ours_avg, bidi_avg,
                bidi_avg / std::max(0.001, ours_avg));
  }
  return 0;
}
