// Reproduces Fig. 6b: index sizes and preprocessing time for DBLP, LUBM and
// TAP — extended with the cold-vs-warm start sweep the index snapshots buy:
// `build(ms)` is the cold preprocessing pass, `warm(ms)` is mmap + validate
// of a saved snapshot (ready to serve), and `x` their ratio.
//
// Expected shape (paper): DBLP's keyword index is the largest (most
// V-vertices); TAP's graph index is the largest (most classes); indexing
// time stays practical for all three. Extension: warm start is an order of
// magnitude under cold build on every dataset.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"

namespace {

void Report(grasp::bench::Dataset* dataset) {
  grasp::WallTimer timer;
  grasp::core::KeywordSearchEngine engine(dataset->store,
                                          dataset->dictionary);
  // Warm the serving state (scratch pool, overlay pool, augmentation
  // cache) with a few queries so the accreted footprint is visible too:
  // the static indexes are not the whole memory story once serving.
  for (const char* kw : {"name", "publication", "city", "professor"}) {
    engine.Search({kw}, 3);
  }

  // Snapshot round trip: save, then time a warm open of a fresh engine.
  const std::string path = "/tmp/grasp_fig6b_" + dataset->name + "_" +
                           std::to_string(::getpid()) + ".snap";
  double warm_millis = -1.0;
  if (engine.SaveIndex(path).ok()) {
    // First open faults the file into the page cache; the timed second open
    // is the steady warm start (restart of a serving process on a host that
    // has the snapshot resident — the scenario snapshots exist for).
    auto prewarm = grasp::core::KeywordSearchEngine::Open(path);
    timer.Reset();
    auto warm = grasp::core::KeywordSearchEngine::Open(path);
    if (warm.ok()) warm_millis = timer.ElapsedMillis();
  }
  std::remove(path.c_str());

  const auto& stats = engine.index_stats();
  const auto& graph = engine.data_graph();
  const double ratio =
      warm_millis > 0 ? stats.build_millis / warm_millis : 0.0;
  std::printf(
      "%-6s %9zu %9zu %9zu %9zu | %12s %12s %12s | %7zu %7zu %10.1f %8.1f "
      "%5.1fx\n",
      dataset->name.c_str(), dataset->store.size(), graph.NumEntities(),
      graph.NumClasses(), graph.NumValues(),
      grasp::HumanBytes(stats.keyword_index_bytes).c_str(),
      grasp::HumanBytes(stats.summary_graph_bytes).c_str(),
      grasp::HumanBytes(stats.scratch_pool_bytes + stats.overlay_pool_bytes +
                        stats.augmentation_cache_bytes)
          .c_str(),
      stats.summary_nodes, stats.summary_edges, stats.build_millis,
      warm_millis, ratio);
}

}  // namespace

int main() {
  std::printf(
      "Fig. 6b reproduction: index sizes, preprocessing time, warm start\n\n");
  std::printf("%-6s %9s %9s %9s %9s | %12s %12s %12s | %7s %7s %10s %8s %6s\n",
              "data", "triples", "entities", "classes", "values", "kw-index",
              "graph-index", "serving", "g-nodes", "g-edges", "build(ms)",
              "warm(ms)", "x");
  grasp::bench::Rule(138);
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  Report(&dblp);
  grasp::bench::Dataset lubm = grasp::bench::MakeLubm();
  Report(&lubm);
  grasp::bench::Dataset tap = grasp::bench::MakeTap();
  Report(&tap);
  grasp::bench::Rule(138);
  std::printf(
      "Expected shape: DBLP dominates the keyword index (V-vertices); TAP "
      "dominates the graph index (classes);\nwarm start (mmap + validate) is "
      ">= 10x under cold build.\n");
  return 0;
}
