// Reproduces Fig. 6b: index sizes and preprocessing time for DBLP, LUBM and
// TAP.
//
// Expected shape (paper): DBLP's keyword index is the largest (most
// V-vertices); TAP's graph index is the largest (most classes); indexing
// time stays practical for all three.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace {

void Report(grasp::bench::Dataset* dataset) {
  grasp::core::KeywordSearchEngine engine(dataset->store,
                                          dataset->dictionary);
  // Warm the serving state (scratch pool, overlay pool, augmentation
  // cache) with a few queries so the accreted footprint is visible too:
  // the static indexes are not the whole memory story once serving.
  for (const char* kw : {"name", "publication", "city", "professor"}) {
    engine.Search({kw}, 3);
  }
  const auto& stats = engine.index_stats();
  const auto& graph = engine.data_graph();
  std::printf(
      "%-6s %9zu %9zu %9zu %9zu | %12s %12s %12s | %7zu %7zu %10.1f\n",
      dataset->name.c_str(), dataset->store.size(), graph.NumEntities(),
      graph.NumClasses(), graph.NumValues(),
      grasp::HumanBytes(stats.keyword_index_bytes).c_str(),
      grasp::HumanBytes(stats.summary_graph_bytes).c_str(),
      grasp::HumanBytes(stats.scratch_pool_bytes + stats.overlay_pool_bytes +
                        stats.augmentation_cache_bytes)
          .c_str(),
      stats.summary_nodes, stats.summary_edges, stats.build_millis);
}

}  // namespace

int main() {
  std::printf("Fig. 6b reproduction: index sizes and preprocessing time\n\n");
  std::printf(
      "%-6s %9s %9s %9s %9s | %12s %12s %12s | %7s %7s %10s\n", "data",
      "triples", "entities", "classes", "values", "kw-index", "graph-index",
      "serving", "g-nodes", "g-edges", "build(ms)");
  grasp::bench::Rule(123);
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  Report(&dblp);
  grasp::bench::Dataset lubm = grasp::bench::MakeLubm();
  Report(&lubm);
  grasp::bench::Dataset tap = grasp::bench::MakeTap();
  Report(&tap);
  grasp::bench::Rule(123);
  std::printf(
      "Expected shape: DBLP dominates the keyword index (V-vertices); TAP "
      "dominates the graph index (classes).\n");
  return 0;
}
