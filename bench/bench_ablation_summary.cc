// Ablation: the paper's central efficiency claim is that exploration on a
// *summary* of the data graph beats exploration on the data graph itself
// ("the exploration of subgraphs does not operate on the entire data graph
// but a summary", Sec. I).
//
// This harness disables summarization by re-typing every entity with its
// own singleton class: the summary graph then has one node per entity,
// i.e. it *is* the data graph (plus value augmentation). Both engines then
// answer the same keyword queries.
//
// Expected shape: the summarized engine explores a graph that is orders of
// magnitude smaller, and query computation is correspondingly faster.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "rdf/data_graph.h"
#include "rdf/term.h"

namespace {

/// Copies `input` adding type(e, Class_e) for every entity, which makes
/// every summary node a singleton — the no-summarization strawman.
void DesummarizeInto(const grasp::rdf::TripleStore& input,
                     grasp::rdf::Dictionary* dictionary,
                     grasp::rdf::TripleStore* output) {
  const grasp::rdf::TermId type =
      dictionary->InternIri(grasp::rdf::Vocabulary().type_iri);
  for (const auto& t : input.triples()) output->Add(t);
  // Entities = IRI subjects/objects that are not classes. Build a data
  // graph once to classify.
  grasp::rdf::DataGraph graph =
      grasp::rdf::DataGraph::Build(input, *dictionary);
  for (const auto& v : graph.vertices()) {
    if (v.kind != grasp::rdf::VertexKind::kEntity) continue;
    const std::string_view iri = dictionary->text(v.term);
    const grasp::rdf::TermId singleton =
        dictionary->InternIri(std::string(iri) + "/SingletonClass");
    output->Add(v.term, type, singleton);
  }
  output->Finalize();
}

}  // namespace

int main() {
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  std::printf(
      "Ablation: summary-graph exploration vs data-graph exploration "
      "(singleton classes), DBLP %zu triples\n",
      dblp.store.size());

  grasp::rdf::TripleStore flat_store;
  DesummarizeInto(dblp.store, &dblp.dictionary, &flat_store);

  grasp::core::KeywordSearchEngine summarized(dblp.store, dblp.dictionary);
  grasp::core::KeywordSearchEngine::Options flat_options;
  // The flat engine explores a graph with ~1 node per entity; cap pops so a
  // single query cannot run away.
  flat_options.exploration.max_cursor_pops = 500000;
  grasp::core::KeywordSearchEngine flat(flat_store, dblp.dictionary,
                                        flat_options);

  std::printf("summary graph: %zu nodes / %zu edges;  flat graph: %zu nodes / %zu edges\n",
              summarized.index_stats().summary_nodes,
              summarized.index_stats().summary_edges,
              flat.index_stats().summary_nodes,
              flat.index_stats().summary_edges);

  std::printf("\n%-5s %3s %14s %14s %10s %12s %12s\n", "query", "#kw",
              "summary(ms)", "flat(ms)", "speedup", "pops(sum)", "pops(flat)");
  grasp::bench::Rule(80);
  double total_summary = 0, total_flat = 0;
  for (const auto& wq : grasp::datagen::DblpPerformanceWorkload()) {
    auto rs = summarized.Search(wq.keywords, 10);
    auto rf = flat.Search(wq.keywords, 10);
    total_summary += rs.total_millis;
    total_flat += rf.total_millis;
    std::printf("%-5s %3zu %14.2f %14.2f %9.1fx %12zu %12zu\n", wq.id.c_str(),
                wq.keywords.size(), rs.total_millis, rf.total_millis,
                rf.total_millis / std::max(1e-3, rs.total_millis),
                rs.exploration_stats.cursors_popped,
                rf.exploration_stats.cursors_popped);
  }
  grasp::bench::Rule(80);
  std::printf("total: summary %.1f ms, flat %.1f ms, speedup %.1fx\n",
              total_summary, total_flat,
              total_flat / std::max(1e-3, total_summary));
  return 0;
}
