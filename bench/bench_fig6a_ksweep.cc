// Reproduces Fig. 6a: average query-computation time on DBLP (scoring
// function C3) as a function of k, bucketed by keyword-query length.
//
// Expected shape (paper): time grows roughly linearly with k; the impact of
// query length is minimal at k = 10 and grows for larger k.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datagen/workload.h"

int main() {
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  std::printf(
      "Fig. 6a reproduction: avg search time (ms) vs k on DBLP (%zu "
      "triples), scoring C3\n",
      dblp.store.size());

  grasp::core::KeywordSearchEngine engine(dblp.store, dblp.dictionary);
  const auto workload = grasp::datagen::DblpEffectivenessWorkload();
  const std::size_t ks[] = {1, 5, 10, 20, 50, 100};

  std::printf("\n%-8s %12s %12s %12s %12s\n", "k", "len=2", "len=3", "len=4",
              "all");
  grasp::bench::Rule(62);
  for (std::size_t k : ks) {
    std::map<std::size_t, std::pair<double, std::size_t>> by_len;
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& wq : workload) {
      auto result = engine.Search(wq.keywords, k);
      auto& slot = by_len[wq.keywords.size()];
      slot.first += result.total_millis;
      slot.second += 1;
      total += result.total_millis;
      ++count;
    }
    auto avg = [&](std::size_t len) {
      auto it = by_len.find(len);
      if (it == by_len.end() || it->second.second == 0) return 0.0;
      return it->second.first / static_cast<double>(it->second.second);
    };
    std::printf("%-8zu %12.2f %12.2f %12.2f %12.2f\n", k, avg(2), avg(3),
                avg(4), total / static_cast<double>(count));
  }
  return 0;
}
