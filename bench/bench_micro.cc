// Micro-benchmarks (google-benchmark) for the substrate primitives: term
// interning, triple-store scans, the text stack, summary construction,
// augmentation, and end-to-end exploration on the running example.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/edge_filter.h"

#include "common/aligned.h"
#include "core/engine.h"
#include "core/exploration.h"
#include "core/exploration_reference.h"
#include "datagen/dblp_gen.h"
#include "datagen/tap_gen.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "simd/cpu.h"
#include "simd/kernels.h"
#include "summary/augmentation_cache.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "text/inverted_index.h"
#include "text/levenshtein.h"
#include "text/porter_stemmer.h"
#include "common/string_util.h"

namespace {

struct DblpFixture {
  DblpFixture()
      : DblpFixture([] {
          grasp::datagen::DblpOptions options;
          options.num_authors = 500;
          options.num_publications = 1500;
          return options;
        }()) {}

  explicit DblpFixture(const grasp::datagen::DblpOptions& options) {
    grasp::datagen::GenerateDblp(options, &dictionary, &store);
    store.Finalize();
    graph = std::make_unique<grasp::rdf::DataGraph>(
        grasp::rdf::DataGraph::Build(store, dictionary));
    summary = std::make_unique<grasp::summary::SummaryGraph>(
        grasp::summary::SummaryGraph::Build(*graph));
    index = std::make_unique<grasp::keyword::KeywordIndex>(
        grasp::keyword::KeywordIndex::Build(*graph));
  }
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  std::unique_ptr<grasp::rdf::DataGraph> graph;
  std::unique_ptr<grasp::summary::SummaryGraph> summary;
  std::unique_ptr<grasp::keyword::KeywordIndex> index;
};

DblpFixture& Fixture() {
  static DblpFixture* fixture = new DblpFixture();
  return *fixture;
}

void BM_DictionaryIntern(benchmark::State& state) {
  std::size_t i = 0;
  grasp::rdf::Dictionary dict;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dict.InternIri(grasp::StrFormat("http://x/e%zu", i++ % 10000)));
  }
}
BENCHMARK(BM_DictionaryIntern);

void BM_TripleStoreScanByPredicate(benchmark::State& state) {
  DblpFixture& f = Fixture();
  const grasp::rdf::TermId author = f.dictionary.Find(
      grasp::rdf::TermKind::kIri,
      std::string(grasp::datagen::kDblpNs) + "author");
  for (auto _ : state) {
    std::size_t count = 0;
    f.store.Scan({grasp::rdf::kInvalidTermId, author,
                  grasp::rdf::kInvalidTermId},
                 [&](const grasp::rdf::Triple&) {
                   ++count;
                   return true;
                 });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TripleStoreScanByPredicate);

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"publications", "relational", "optimization",
                         "troubling",    "databases",  "formalize"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grasp::text::PorterStem(words[i++ % 6]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_BoundedLevenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grasp::text::BoundedLevenshtein("cimiano", "cimano", 2));
  }
}
BENCHMARK(BM_BoundedLevenshtein);

// ------------------------------------------------------ SIMD kernel tiers --
// The dispatched hot-path kernels, benchmarked per ISA tier (Arg 0=scalar,
// 1=sse42, 2=avx2) through the same function-pointer table the engine
// dispatches through. Tiers the host CPU (or a non-x86 build) cannot run
// are skipped. The acceptance bar is >=1.5x over scalar on at least one
// kernel on an AVX2 host; the scalar rows double as the regression
// baseline for the trend tracker.

const grasp::simd::KernelTable* KernelTableForArg(benchmark::State& state) {
  const auto level = static_cast<grasp::simd::Level>(state.range(0));
  const grasp::simd::KernelTable* table = grasp::simd::TableFor(level);
  if (table == nullptr) {
    state.SkipWithError("SIMD tier unavailable on this CPU/build");
  }
  return table;
}

void BM_KernelMaskCompose(benchmark::State& state) {
  const grasp::simd::KernelTable* table = KernelTableForArg(state);
  if (table == nullptr) return;
  constexpr std::size_t kWords = 4096;  // a 256Ki-edge scope mask
  grasp::AlignedVector<std::uint64_t> a(kWords), b(kWords), out(kWords);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < kWords; ++i) {
    a[i] = x = x * 6364136223846793005ull + 1442695040888963407ull;
    b[i] = x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  for (auto _ : state) {
    table->mask_and(a.data(), b.data(), out.data(), kWords);
    table->mask_or(a.data(), out.data(), out.data(), kWords);
    table->mask_andnot(out.data(), b.data(), out.data(), kWords);
    benchmark::DoNotOptimize(table->popcount_words(out.data(), kWords));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * kWords * 8));
  state.SetLabel(table->name);
}
BENCHMARK(BM_KernelMaskCompose)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_KernelPostingsIntersect(benchmark::State& state) {
  const grasp::simd::KernelTable* table = KernelTableForArg(state);
  if (table == nullptr) return;
  // Three overlapping candidate runs folded into one dense best[] array —
  // the shape of a fuzzy keyword with several close variants.
  constexpr std::size_t kNumDocs = 1 << 15;
  constexpr std::size_t kRun = 8192;
  grasp::AlignedVector<std::uint32_t> pairs;
  pairs.reserve(3 * 2 * kRun);
  for (std::uint32_t run = 0; run < 3; ++run) {
    for (std::uint32_t i = 0; i < kRun; ++i) {
      pairs.push_back((run * 1031 + i * 3) % kNumDocs);  // doc
      pairs.push_back(1 + (i & 7));                      // tf
    }
  }
  grasp::AlignedVector<double> best(kNumDocs, -1.0);
  grasp::AlignedVector<std::uint32_t> touched(3 * kRun);
  for (auto _ : state) {
    std::size_t appended = 0;
    for (std::uint32_t run = 0; run < 3; ++run) {
      appended += table->postings_best_update(
          pairs.data() + run * 2 * kRun, kRun, 0.25 + 0.5 * run,
          best.data(), touched.data() + appended);
    }
    // The engine's epilogue: restore the -1.0 resting state, O(touched).
    for (std::size_t i = 0; i < appended; ++i) best[touched[i]] = -1.0;
    benchmark::DoNotOptimize(appended);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * kRun));
  state.SetLabel(table->name);
}
BENCHMARK(BM_KernelPostingsIntersect)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_KernelFuzzyScan(benchmark::State& state) {
  const grasp::simd::KernelTable* table = KernelTableForArg(state);
  if (table == nullptr) return;
  // A vocabulary slice the size of a large length-bucket range.
  constexpr std::size_t kTerms = 4096;
  grasp::AlignedVector<unsigned char> first(kTerms), last(kTerms);
  grasp::AlignedVector<std::uint32_t> sigs(kTerms), out(kTerms);
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (std::size_t i = 0; i < kTerms; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    first[i] = static_cast<unsigned char>('a' + x % 26);
    last[i] = static_cast<unsigned char>('a' + (x >> 8) % 26);
    std::uint32_t sig = 0;
    for (unsigned c = 0; c < 5; ++c) sig |= 1u << ((x >> (16 + 5 * c)) % 26);
    sigs[i] = sig;
  }
  const std::uint32_t query_sig =
      (1u << ('c' - 'a')) | (1u << ('i' - 'a')) | (1u << ('m' - 'a')) |
      (1u << ('a' - 'a')) | (1u << ('n' - 'a')) | (1u << ('o' - 'a'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->fuzzy_prefilter(first.data(), last.data(), sigs.data(), kTerms,
                               'c', 'o', query_sig, /*max_dist=*/2,
                               out.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTerms));
  state.SetLabel(table->name);
}
BENCHMARK(BM_KernelFuzzyScan)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_KernelStructHash(benchmark::State& state) {
  const grasp::simd::KernelTable* table = KernelTableForArg(state);
  if (table == nullptr) return;
  // A generated-subgraph signature at dedup time: tens of nodes/edges.
  constexpr std::size_t kNodes = 48, kEdges = 96;
  grasp::AlignedVector<std::uint32_t> nodes(kNodes), edges(kEdges);
  for (std::size_t i = 0; i < kNodes; ++i) nodes[i] = 7919u * (i + 1);
  for (std::size_t i = 0; i < kEdges; ++i) edges[i] = 104729u * (i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->struct_hash(nodes.data(), kNodes, edges.data(), kEdges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kNodes + kEdges));
  state.SetLabel(table->name);
}
BENCHMARK(BM_KernelStructHash)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_KeywordLookup(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->Lookup("cimiano", options));
  }
}
BENCHMARK(BM_KeywordLookup);

void BM_SummaryBuild(benchmark::State& state) {
  DblpFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(grasp::summary::SummaryGraph::Build(*f.graph));
  }
}
BENCHMARK(BM_SummaryBuild);

void BM_Augmentation(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  matches.push_back(f.index->Lookup("2006", options));
  matches.push_back(f.index->Lookup("cimiano", options));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grasp::summary::AugmentedGraph::Build(*f.summary, matches));
  }
}
BENCHMARK(BM_Augmentation);

// ------------------------------------------------- augmentation cost sweep --
// Per-query augmentation cost as a function of summary size x matches per
// keyword. The copy-free overlay build must scale with the keyword matches
// only (rows with the same match budget stay flat across summary scales),
// while the materialized reference build pays the O(|summary|) copy tax —
// the difference is the win `augmentation_millis` sees in Fig. 5 / Fig. 6a.
//
// The dataset is TAP-like (many classes, few instances each): its summary
// grows with the class count, so the `classes` axis really scales the base
// graph the overlay borrows — DBLP's summary is schema-sized and would stay
// flat.
//
// One caveat since the dense epoch-stamped incidence extensions: a *fresh*
// overlay build pays a one-time O(base nodes) allocation for the extension
// array, visible at tiny match budgets on the 1024-class row. The engine
// never pays it per query — pooled shells allocate the array once and
// Rebuild from then on (BM_AugmentationPooledRebuild below is that path).

struct TapFixture {
  explicit TapFixture(std::size_t num_classes) {
    grasp::datagen::TapOptions options;
    options.num_classes = num_classes;
    grasp::datagen::GenerateTap(options, &dictionary, &store);
    store.Finalize();
    graph = std::make_unique<grasp::rdf::DataGraph>(
        grasp::rdf::DataGraph::Build(store, dictionary));
    summary = std::make_unique<grasp::summary::SummaryGraph>(
        grasp::summary::SummaryGraph::Build(*graph));
    index = std::make_unique<grasp::keyword::KeywordIndex>(
        grasp::keyword::KeywordIndex::Build(*graph));
  }
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  std::unique_ptr<grasp::rdf::DataGraph> graph;
  std::unique_ptr<grasp::summary::SummaryGraph> summary;
  std::unique_ptr<grasp::keyword::KeywordIndex> index;
};

TapFixture& ScaledTapFixture(int num_classes) {
  static std::map<int, TapFixture*>* fixtures = new std::map<int, TapFixture*>();
  auto it = fixtures->find(num_classes);
  if (it == fixtures->end()) {
    it = fixtures
             ->emplace(num_classes,
                       new TapFixture(static_cast<std::size_t>(num_classes)))
             .first;
  }
  return *it->second;
}

std::vector<std::vector<grasp::keyword::KeywordMatch>> SweepMatches(
    TapFixture& f, int per_keyword) {
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = static_cast<std::size_t>(per_keyword);
  // "item" occurs in every instance description: each match is a distinct
  // V-vertex, so `max_results` directly controls the number of overlay
  // elements created. "album" matches class nodes (no overlay growth).
  // Neither brushes a relation/attribute label, whose K_i would legitimately
  // grow with the summary and obscure the copy-tax comparison.
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  matches.push_back(f.index->Lookup("item", options));
  matches.push_back(f.index->Lookup("album", options));
  return matches;
}

template <typename BuildFn>
void RunAugmentationSweep(benchmark::State& state, BuildFn&& build) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  const auto matches = SweepMatches(f, static_cast<int>(state.range(1)));
  std::size_t overlay_nodes = 0, overlay_edges = 0, overlay_bytes = 0;
  for (auto _ : state) {
    auto g = build(*f.summary, matches);
    overlay_nodes = g.NumNodes() - g.base_nodes();
    overlay_edges = g.NumEdges() - g.base_edges();
    overlay_bytes = g.OverlayMemoryUsageBytes();
    benchmark::DoNotOptimize(g);
  }
  state.counters["summary_nodes"] =
      static_cast<double>(f.summary->NumNodes());
  state.counters["summary_edges"] =
      static_cast<double>(f.summary->NumEdges());
  state.counters["overlay_nodes"] = static_cast<double>(overlay_nodes);
  state.counters["overlay_edges"] = static_cast<double>(overlay_edges);
  state.counters["overlay_bytes"] = static_cast<double>(overlay_bytes);
}

void BM_AugmentationSweepOverlay(benchmark::State& state) {
  RunAugmentationSweep(state, [](const auto& summary, const auto& matches) {
    return grasp::summary::AugmentedGraph::Build(summary, matches);
  });
}
BENCHMARK(BM_AugmentationSweepOverlay)
    ->ArgNames({"classes", "matches"})
    ->ArgsProduct({{64, 256, 1024}, {4, 16, 64}});

void BM_AugmentationSweepMaterialized(benchmark::State& state) {
  RunAugmentationSweep(state, [](const auto& summary, const auto& matches) {
    return grasp::summary::AugmentedGraph::BuildMaterialized(summary, matches);
  });
}
BENCHMARK(BM_AugmentationSweepMaterialized)
    ->ArgNames({"classes", "matches"})
    ->ArgsProduct({{64, 256, 1024}, {4, 16, 64}});

// ---------------------------------------------------- overlay incidence pop --
// Per-pop incidence probe cost on an augmented overlay: the exploration
// calls IncidentEdges once per cursor pop, so the probe is pure overhead on
// the paper's hottest loop. The dense variant is the shipped epoch-stamped
// extension array (one index + epoch compare); the hash variant emulates
// the PR-2 `unordered_map<node, extension>` probe over the same data. The
// gap between the two is the win of the hash removal.

void BM_OverlayIncidentPopDense(benchmark::State& state) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  const auto matches = SweepMatches(f, 16);
  const grasp::summary::AugmentedGraph g =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  const std::uint32_t n = g.base_nodes();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint32_t node = 0; node < n; ++node) {
      const grasp::graph::ChainedIds incident = g.IncidentEdges(node);
      for (std::uint32_t e : incident.first()) sum += e;
      for (std::uint32_t e : incident.second()) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_OverlayIncidentPopDense)
    ->ArgNames({"classes"})
    ->Arg(64)->Arg(256)->Arg(1024);

void BM_OverlayIncidentPopHashReference(benchmark::State& state) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  const auto matches = SweepMatches(f, 16);
  const grasp::summary::AugmentedGraph g =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  // Rebuild the same incidence extensions into the PR-2 sparse-hash shape.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> extra;
  for (std::uint32_t e = g.base_edges(); e < g.NumEdges(); ++e) {
    const auto& edge = g.edge(e);
    if (edge.from < g.base_nodes()) extra[edge.from].push_back(e);
    if (edge.to != edge.from && edge.to < g.base_nodes()) {
      extra[edge.to].push_back(e);
    }
  }
  const auto& csr = f.summary->csr();
  const std::uint32_t n = g.base_nodes();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint32_t node = 0; node < n; ++node) {
      for (std::uint32_t e : csr.IncidentEdges(node)) sum += e;
      const auto it = extra.find(node);
      if (it != extra.end()) {
        for (std::uint32_t e : it->second) sum += e;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_OverlayIncidentPopHashReference)
    ->ArgNames({"classes"})
    ->Arg(64)->Arg(256)->Arg(1024);

// -------------------------------------------------- augmentation cache/pool --
// Steady-state augmentation cost per serving strategy, on the same matched
// keyword set: cold Build (the BM_Augmentation baseline above), pooled
// shell Rebuild (cache off: epoch-reset + re-augment, no reallocation), and
// cache hit (key serialization + one locked LRU probe). The acceptance bar
// is hit >= 5x cheaper than cold build; in practice it is orders of
// magnitude.

void BM_AugmentationPooledRebuild(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  matches.push_back(f.index->Lookup("2006", options));
  matches.push_back(f.index->Lookup("cimiano", options));
  grasp::summary::AugmentedGraph shell =
      grasp::summary::AugmentedGraph::MakeOverlayShell(*f.summary);
  for (auto _ : state) {
    shell.Rebuild(matches);
    benchmark::DoNotOptimize(shell);
  }
}
BENCHMARK(BM_AugmentationPooledRebuild);

void BM_AugmentationCacheHit(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  matches.push_back(f.index->Lookup("2006", options));
  matches.push_back(f.index->Lookup("cimiano", options));
  grasp::summary::AugmentationCache cache(8u << 20);
  auto build = [&] {
    return std::make_shared<grasp::summary::AugmentedGraph>(
        grasp::summary::AugmentedGraph::Build(*f.summary, matches));
  };
  cache.GetOrBuild(grasp::summary::AugmentationCacheKey(matches), build);
  for (auto _ : state) {
    // The engine's per-query hit cost: serialize the key, probe the LRU.
    auto g = cache.GetOrBuild(grasp::summary::AugmentationCacheKey(matches),
                              build);
    benchmark::DoNotOptimize(g);
  }
  state.counters["hits"] = static_cast<double>(cache.stats().hits);
}
BENCHMARK(BM_AugmentationCacheHit);

void BM_AugmentationCacheMissEvict(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  // Distinct single-keyword match sets cycled through a budget sized (by a
  // scout insertion) for roughly one entry: every access misses and evicts
  // — the cache's worst case (key + probe + insert + eviction on top of
  // the build).
  static constexpr const char* kKeys[] = {"2006", "cimiano", "aifb", "2005",
                                          "2007", "publication"};
  std::vector<std::vector<std::vector<grasp::keyword::KeywordMatch>>> sets;
  for (const char* kw : kKeys) {
    sets.push_back({f.index->Lookup(kw, options)});
  }
  std::size_t entry_bytes = 0;
  {
    grasp::summary::AugmentationCache scout(1u << 30);
    scout.GetOrBuild(grasp::summary::AugmentationCacheKey(sets[0]), [&] {
      return std::make_shared<grasp::summary::AugmentedGraph>(
          grasp::summary::AugmentedGraph::Build(*f.summary, sets[0]));
    });
    entry_bytes = scout.stats().charged_bytes;
  }
  grasp::summary::AugmentationCache cache(entry_bytes + entry_bytes / 2);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& matches = sets[i++ % (sizeof(kKeys) / sizeof(kKeys[0]))];
    auto g = cache.GetOrBuild(
        grasp::summary::AugmentationCacheKey(matches), [&] {
          return std::make_shared<grasp::summary::AugmentedGraph>(
              grasp::summary::AugmentedGraph::Build(*f.summary, matches));
        });
    benchmark::DoNotOptimize(g);
  }
  state.counters["evictions"] = static_cast<double>(cache.stats().evictions);
}
BENCHMARK(BM_AugmentationCacheMissEvict);

// ------------------------------------------------------- batch serving QPS --
// End-to-end throughput of KeywordSearchEngine::SearchBatch on a TAP
// workload mix (repeated keys exercising the cache, distinct keys paying
// augmentation + exploration), swept over worker count. items/s is QPS.
// The 1 -> 8 thread scaling is the concurrency acceptance bar; it needs a
// machine with >= 8 cores to show (CI runners report what they have via
// the host context in the JSON).

grasp::core::KeywordSearchEngine& TapEngine() {
  static auto* engine = [] {
    TapFixture& f = ScaledTapFixture(256);
    return new grasp::core::KeywordSearchEngine(f.store, f.dictionary);
  }();
  return *engine;
}

void BM_SearchBatchQPS(benchmark::State& state) {
  grasp::core::KeywordSearchEngine& engine = TapEngine();
  using KeywordQuery = grasp::core::KeywordSearchEngine::KeywordQuery;
  const std::vector<KeywordQuery> workload = {
      {{"item", "album"}, 5},   {{"team", "player"}, 5},
      {{"music", "song"}, 5},   {{"city", "country"}, 5},
      {{"item", "album"}, 5},   {{"band", "award"}, 5},
      {{"item", "team"}, 5},    {{"movies", "event"}, 5},
      {{"sports", "club"}, 5},  {{"music", "song"}, 5},
      {{"river", "mountain"}, 5}, {{"company", "product"}, 5},
      {{"item", "album"}, 5},   {{"festival", "venue"}, 5},
      {{"team", "player"}, 5},  {{"museum", "art"}, 5},
  };
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  // Warm caches and pools so every measured batch serves steady-state.
  engine.SearchBatch(workload, threads);
  for (auto _ : state) {
    auto results = engine.SearchBatch(workload, threads);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SearchBatchQPS)
    ->ArgNames({"threads"})
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- cold vs warm engine start --
// The index-snapshot acceptance bar: a warm engine (mmap + validate + hash
// rebuilds) must be ready to serve at least 10x faster than a cold rebuild
// (parse-derived graphs, tokenization, postings) on DBLP-scale data. Both
// paths end in a fully serving-ready engine.

struct EngineStartFixture {
  EngineStartFixture() {
    grasp::datagen::DblpOptions options;
    options.num_authors = 1500;
    options.num_publications = 5000;
    grasp::datagen::GenerateDblp(options, &dictionary, &store);
    store.Finalize();
    path = "/tmp/grasp_bench_engine_" + std::to_string(::getpid()) + ".snap";
    grasp::core::KeywordSearchEngine engine(store, dictionary);
    const grasp::Status status = engine.SaveIndex(path);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  ~EngineStartFixture() { std::remove(path.c_str()); }

  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  std::string path;
};

EngineStartFixture& StartFixture() {
  // Function-local static (not a leaked pointer like the other fixtures):
  // the destructor removes the multi-MB snapshot from /tmp at exit.
  static EngineStartFixture fixture;
  return fixture;
}

void BM_EngineStartCold(benchmark::State& state) {
  EngineStartFixture& f = StartFixture();
  for (auto _ : state) {
    grasp::core::KeywordSearchEngine engine(f.store, f.dictionary);
    benchmark::DoNotOptimize(engine.index_stats().summary_nodes);
  }
}
BENCHMARK(BM_EngineStartCold)->Unit(benchmark::kMillisecond);

void BM_EngineStartWarm(benchmark::State& state) {
  EngineStartFixture& f = StartFixture();
  double mapped = 0;
  for (auto _ : state) {
    auto opened = grasp::core::KeywordSearchEngine::Open(f.path);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      break;
    }
    mapped =
        static_cast<double>((*opened)->index_stats().mapped_snapshot_bytes);
    benchmark::DoNotOptimize(**opened);
  }
  state.counters["mapped_bytes"] = mapped;
}
BENCHMARK(BM_EngineStartWarm)->Unit(benchmark::kMillisecond);

// Warm start through to the first answered query: the user-visible
// "process start to first result" latency the snapshot is for.
void BM_EngineStartWarmFirstQuery(benchmark::State& state) {
  EngineStartFixture& f = StartFixture();
  for (auto _ : state) {
    auto opened = grasp::core::KeywordSearchEngine::Open(f.path);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*opened)->Search({"name", "publication"}, 5));
  }
}
BENCHMARK(BM_EngineStartWarmFirstQuery)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ exploration hot-path sweep --
// ns/query of the flat SubgraphExplorer vs the retained straightforward
// ReferenceExplorer, swept over summary scale (TAP classes) x keyword count
// x k. The flat engine reuses one ExplorationScratch across iterations the
// way the engine does across queries; `scratch_grow_events` staying at 1
// demonstrates the allocation-free steady state. Each configuration first
// cross-checks that both explorers return byte-identical top-k costs and
// structure keys. CI captures this sweep as BENCH_exploration.json
// (--benchmark_out) for cross-PR trend tracking.

std::vector<std::vector<grasp::keyword::KeywordMatch>> ExplorationSweepMatches(
    TapFixture& f, int m) {
  // Vocabulary that spans match kinds: "item" hits instance descriptions
  // (V-vertices), the rest hit class nodes minted from the Domain+Concept
  // cross product ("MusicAlbum", "SportsTeam", ...).
  static constexpr const char* kSweepKeywords[] = {"item", "album", "team"};
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 8;
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  for (int i = 0; i < m; ++i) {
    matches.push_back(f.index->Lookup(kSweepKeywords[i], options));
  }
  return matches;
}

template <typename RunFn>
void RunExplorationSweep(benchmark::State& state, bool uses_scratch,
                         RunFn&& run) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  const int m = static_cast<int>(state.range(1));
  auto matches = ExplorationSweepMatches(f, m);
  for (const auto& list : matches) {
    if (list.empty()) {
      state.SkipWithError("sweep keyword without matches");
      return;
    }
  }
  grasp::summary::AugmentedGraph augmented =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  grasp::core::ExplorationOptions explore;
  explore.k = static_cast<std::size_t>(state.range(2));

  // Differential guard: the optimized engine must reproduce the reference
  // byte for byte before its speed means anything.
  {
    grasp::core::SubgraphExplorer flat(augmented, explore);
    grasp::core::ReferenceExplorer reference(augmented, explore);
    const auto a = flat.FindTopK();
    const auto b = reference.FindTopK();
    bool identical = a.size() == b.size();
    for (std::size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].cost == b[i].cost &&
                  a[i].StructureKey() == b[i].StructureKey();
    }
    if (!identical) {
      state.SkipWithError("flat and reference explorers diverge");
      return;
    }
  }

  grasp::core::ExplorationScratch scratch;
  grasp::core::ExplorationStats stats;
  for (auto _ : state) {
    stats = run(augmented, explore, &scratch);
  }
  state.counters["summary_nodes"] = static_cast<double>(f.summary->NumNodes());
  state.counters["cursors_popped"] = static_cast<double>(stats.cursors_popped);
  state.counters["candidates_generated"] =
      static_cast<double>(stats.subgraphs_generated);
  if (uses_scratch) {  // the reference explorer has no pooled scratch
    state.counters["scratch_bytes"] =
        static_cast<double>(scratch.CapacityBytes());
    state.counters["scratch_grow_events"] =
        static_cast<double>(scratch.grow_events);
  }
}

void BM_ExplorationSweepFlat(benchmark::State& state) {
  RunExplorationSweep(
      state, /*uses_scratch=*/true,
      [](const grasp::summary::AugmentedGraph& augmented,
                const grasp::core::ExplorationOptions& explore,
                grasp::core::ExplorationScratch* scratch) {
        grasp::core::SubgraphExplorer explorer(augmented, explore, scratch);
        benchmark::DoNotOptimize(explorer.FindTopK());
        return explorer.stats();
      });
}
BENCHMARK(BM_ExplorationSweepFlat)
    ->ArgNames({"classes", "m", "k"})
    ->ArgsProduct({{64, 256, 1024}, {2, 3}, {1, 10}});

void BM_ExplorationSweepReference(benchmark::State& state) {
  RunExplorationSweep(
      state, /*uses_scratch=*/false,
      [](const grasp::summary::AugmentedGraph& augmented,
                const grasp::core::ExplorationOptions& explore,
                grasp::core::ExplorationScratch*) {
        grasp::core::ReferenceExplorer explorer(augmented, explore);
        benchmark::DoNotOptimize(explorer.FindTopK());
        return explorer.stats();
      });
}
BENCHMARK(BM_ExplorationSweepReference)
    ->ArgNames({"classes", "m", "k"})
    ->ArgsProduct({{64, 256, 1024}, {2, 3}, {1, 10}});

// --------------------------------------------- filtered exploration sweep --
// Predicate-scoped exploration through graph::OverlayEdgeFilter views vs
// the same query on the full graph, plus the cost of building the scope
// mask itself (base summary sweep + per-query overlay compose). The scoped
// row should pop fewer cursors and run no slower per pop than full; the
// mask-build row prices what a scope-cache miss costs. CI exports all
// three to BENCH_exploration.json for trend tracking.

std::vector<grasp::rdf::TermId> FilteredSweepScopeTerms(TapFixture& f) {
  // Every other distinct relation/attribute label, deterministic in the
  // fixture: a scope that admits roughly half the summary's edges.
  std::set<grasp::rdf::TermId> labels;
  for (const grasp::rdf::Edge& e : f.graph->edges()) {
    if (e.kind == grasp::rdf::EdgeKind::kRelation ||
        e.kind == grasp::rdf::EdgeKind::kAttribute) {
      labels.insert(e.label);
    }
  }
  std::vector<grasp::rdf::TermId> all(labels.begin(), labels.end());
  std::vector<grasp::rdf::TermId> half;
  for (std::size_t i = 0; i < all.size(); i += 2) half.push_back(all[i]);
  return half;
}

void RunFilteredExplorationSweep(benchmark::State& state, bool scoped) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  const int m = static_cast<int>(state.range(1));
  auto matches = ExplorationSweepMatches(f, m);
  for (const auto& list : matches) {
    if (list.empty()) {
      state.SkipWithError("sweep keyword without matches");
      return;
    }
  }
  grasp::summary::AugmentedGraph augmented =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  const std::vector<grasp::rdf::TermId> scope_terms =
      FilteredSweepScopeTerms(f);
  const grasp::graph::EdgeFilter base =
      f.summary->PredicateScopeFilter(scope_terms);
  const grasp::graph::OverlayEdgeFilter scoped_view =
      augmented.ScopedFilter(&base, scope_terms);

  grasp::core::ExplorationOptions explore;
  explore.k = static_cast<std::size_t>(state.range(2));
  if (scoped) explore.edge_filter = &scoped_view;

  // Differential guard: the word-scanned filtered path must reproduce the
  // inline-reject reference byte for byte before its speed means anything.
  {
    grasp::core::SubgraphExplorer flat(augmented, explore);
    grasp::core::ReferenceExplorer reference(augmented, explore);
    const auto a = flat.FindTopK();
    const auto b = reference.FindTopK();
    bool identical = a.size() == b.size();
    for (std::size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].cost == b[i].cost &&
                  a[i].StructureKey() == b[i].StructureKey();
    }
    if (!identical) {
      state.SkipWithError("scoped flat and reference explorers diverge");
      return;
    }
  }

  grasp::core::ExplorationScratch scratch;
  grasp::core::ExplorationStats stats;
  for (auto _ : state) {
    grasp::core::SubgraphExplorer explorer(augmented, explore, &scratch);
    benchmark::DoNotOptimize(explorer.FindTopK());
    stats = explorer.stats();
  }
  state.counters["summary_edges"] = static_cast<double>(f.summary->NumEdges());
  state.counters["in_scope_edges"] = static_cast<double>(base.CountSet());
  state.counters["cursors_popped"] = static_cast<double>(stats.cursors_popped);
}

void BM_FilteredExplorationSweepScoped(benchmark::State& state) {
  RunFilteredExplorationSweep(state, /*scoped=*/true);
}
BENCHMARK(BM_FilteredExplorationSweepScoped)
    ->ArgNames({"classes", "m", "k"})
    ->ArgsProduct({{64, 256, 1024}, {2, 3}, {10}});

void BM_FilteredExplorationSweepFull(benchmark::State& state) {
  RunFilteredExplorationSweep(state, /*scoped=*/false);
}
BENCHMARK(BM_FilteredExplorationSweepFull)
    ->ArgNames({"classes", "m", "k"})
    ->ArgsProduct({{64, 256, 1024}, {2, 3}, {10}});

void BM_FilteredExplorationSweepMaskBuild(benchmark::State& state) {
  TapFixture& f = ScaledTapFixture(static_cast<int>(state.range(0)));
  auto matches = ExplorationSweepMatches(f, 2);
  grasp::summary::AugmentedGraph augmented =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  const std::vector<grasp::rdf::TermId> scope_terms =
      FilteredSweepScopeTerms(f);
  for (auto _ : state) {
    // What a scope-cache miss pays: one word-per-64-edges base sweep over
    // the summary plus the O(augmentation) overlay compose.
    grasp::graph::EdgeFilter base =
        f.summary->PredicateScopeFilter(scope_terms);
    grasp::graph::OverlayEdgeFilter scoped =
        augmented.ScopedFilter(&base, scope_terms);
    benchmark::DoNotOptimize(scoped.Contains(0));
  }
  state.counters["summary_edges"] = static_cast<double>(f.summary->NumEdges());
  state.counters["scope_terms"] = static_cast<double>(scope_terms.size());
}
BENCHMARK(BM_FilteredExplorationSweepMaskBuild)
    ->ArgName("classes")
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

void BM_TopKExploration(benchmark::State& state) {
  DblpFixture& f = Fixture();
  grasp::text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  std::vector<std::vector<grasp::keyword::KeywordMatch>> matches;
  matches.push_back(f.index->Lookup("2006", options));
  matches.push_back(f.index->Lookup("cimiano", options));
  matches.push_back(f.index->Lookup("aifb", options));
  grasp::summary::AugmentedGraph augmented =
      grasp::summary::AugmentedGraph::Build(*f.summary, matches);
  for (auto _ : state) {
    grasp::core::ExplorationOptions explore;
    explore.k = static_cast<std::size_t>(state.range(0));
    grasp::core::SubgraphExplorer explorer(augmented, explore);
    benchmark::DoNotOptimize(explorer.FindTopK());
  }
}
BENCHMARK(BM_TopKExploration)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
