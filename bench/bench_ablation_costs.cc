// Ablation of the design choices called out in DESIGN.md §8:
//   1. per-(element, keyword) path cap (the k*|K|*|G| space bound of
//      Sec. VI-C) on vs off,
//   2. the paper's TA bound (min cursor cost) vs the tightened bound
//      (min cursor cost + cheapest completion),
//   3. cost models C1/C2/C3 runtime deltas,
//   4. distance-guided pruning (the Sec. IX connectivity-indexing future
//      work) on vs off.
//
// Reported per configuration: average query time and cursor pops over the
// Fig. 5 workload.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/workload.h"

namespace {

using grasp::core::CostModel;
using grasp::core::ExplorationOptions;

struct Config {
  const char* name;
  bool prune;
  bool tightened;
  CostModel model;
  bool distance_pruning = false;
};

}  // namespace

int main() {
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  std::printf("Ablation: pruning / TA bound / cost model on DBLP (%zu triples)\n",
              dblp.store.size());
  grasp::core::KeywordSearchEngine engine(dblp.store, dblp.dictionary);
  const auto workload = grasp::datagen::DblpPerformanceWorkload();

  const Config configs[] = {
      {"C3 prune+paper-bound (default)", true, false, CostModel::kMatching},
      {"C3 prune+tight-bound", true, true, CostModel::kMatching},
      {"C3 noprune+paper-bound", false, false, CostModel::kMatching},
      {"C3 noprune+tight-bound", false, true, CostModel::kMatching},
      {"C1 prune+paper-bound", true, false, CostModel::kPathLength},
      {"C2 prune+paper-bound", true, false, CostModel::kPopularity},
      {"C3 prune+distance-guided", true, false, CostModel::kMatching, true},
      {"C3 tight-bound+distance-guided", true, true, CostModel::kMatching,
       true},
  };

  std::printf("\n%-34s %12s %14s %14s %10s\n", "config", "avg ms", "avg pops",
              "avg cursors", "early-stop");
  grasp::bench::Rule(90);
  for (const Config& config : configs) {
    double total_ms = 0;
    std::size_t total_pops = 0, total_cursors = 0, early = 0, capped = 0;
    for (const auto& wq : workload) {
      ExplorationOptions explore;
      explore.cost_model = config.model;
      explore.prune_paths_per_element = config.prune;
      explore.tightened_bound = config.tightened;
      explore.distance_pruning = config.distance_pruning;
      // Safety valve so the no-cap configurations terminate: without the
      // per-(element, keyword) path cap the cursor population explodes on
      // the many-keyword queries — which is the point of the ablation.
      explore.max_cursor_pops = 200000;
      auto result = engine.Search(wq.keywords, 10, explore);
      total_ms += result.total_millis;
      total_pops += result.exploration_stats.cursors_popped;
      total_cursors += result.exploration_stats.cursors_created;
      early += result.exploration_stats.early_terminated ? 1 : 0;
      capped += result.exploration_stats.budget_exceeded ? 1 : 0;
    }
    const double n = static_cast<double>(workload.size());
    std::printf("%-34s %12.2f %14.0f %14.0f %7zu/%zu %s\n", config.name,
                total_ms / n, static_cast<double>(total_pops) / n,
                static_cast<double>(total_cursors) / n, early,
                workload.size(),
                capped > 0 ? grasp::StrFormat("(%zu hit the pop cap)",
                                              capped)
                                 .c_str()
                           : "");
  }

  // Distance-guided pruning pays off where the graph index is large and
  // sparse: TAP's many-class summary graph (Fig. 6b) with keywords from
  // distant domains. DBLP's eight-node summary is too dense for any cursor
  // to be provably useless.
  grasp::bench::Dataset tap = grasp::bench::MakeTap();
  grasp::core::KeywordSearchEngine tap_engine(tap.store, tap.dictionary);
  std::printf(
      "\nDistance-guided exploration on TAP (%zu triples, %zu summary "
      "nodes)\n",
      tap.store.size(), tap_engine.index_stats().summary_nodes);
  std::printf("%6s %12s %12s %14s %14s %12s\n", "dmax", "plain ms",
              "guided ms", "plain pops", "guided pops", "pruned");
  grasp::bench::Rule(76);
  const std::vector<std::vector<std::string>> tap_queries = {
      {"music", "album"},       {"sports", "team", "city"},
      {"politics", "person"},   {"technology", "product", "organization"},
      {"history", "event"},     {"art", "museum", "place"},
  };
  for (std::uint32_t dmax : {4u, 6u, 8u, 12u}) {
    double plain_ms = 0, guided_ms = 0;
    std::size_t plain_pops = 0, guided_pops = 0, pruned = 0;
    for (const auto& keywords : tap_queries) {
      ExplorationOptions explore;
      explore.dmax = dmax;
      auto plain = tap_engine.Search(keywords, 10, explore);
      plain_ms += plain.total_millis;
      plain_pops += plain.exploration_stats.cursors_popped;
      explore.distance_pruning = true;
      auto guided = tap_engine.Search(keywords, 10, explore);
      guided_ms += guided.total_millis;
      guided_pops += guided.exploration_stats.cursors_popped;
      pruned += guided.exploration_stats.cursors_distance_pruned;
    }
    std::printf("%6u %12.2f %12.2f %14zu %14zu %12zu\n", dmax, plain_ms,
                guided_ms, plain_pops, guided_pops, pruned);
  }
  return 0;
}
