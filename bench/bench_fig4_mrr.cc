// Reproduces Fig. 4: Mean Reciprocal Rank of the scoring functions C1
// (path length), C2 (popularity) and C3 (keyword matching) over the 30
// DBLP effectiveness queries. A generated query is correct when it is
// isomorphic to the workload's gold-standard query; RR = 1/rank, 0 when the
// gold query is absent from the top-k.
//
// Expected shape (paper): C3 >= C2 >= C1 in MRR; C2 ~ C1 on queries with
// few alternative interpretations; C3 wins when keyword-to-element
// ambiguity is high.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datagen/workload.h"

namespace {

using grasp::core::CostModel;
using grasp::core::ExplorationOptions;
using grasp::core::KeywordSearchEngine;

double ReciprocalRank(const KeywordSearchEngine::SearchResult& result,
                      const grasp::query::ConjunctiveQuery& gold) {
  const std::string gold_canonical = gold.CanonicalString();
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    if (result.queries[i].query.CanonicalString() == gold_canonical) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  std::printf("Fig. 4 reproduction: MRR of scoring functions on DBLP (%zu triples)\n",
              dblp.store.size());

  KeywordSearchEngine engine(dblp.store, dblp.dictionary);
  const auto workload = grasp::datagen::DblpEffectivenessWorkload();

  const CostModel models[] = {CostModel::kPathLength, CostModel::kPopularity,
                              CostModel::kMatching};
  const char* model_names[] = {"C1(path)", "C2(popularity)", "C3(matching)"};

  std::printf("\n%-5s %-38s %9s %9s %9s\n", "query", "keywords", "C1", "C2",
              "C3");
  grasp::bench::Rule(76);

  double mrr[3] = {0, 0, 0};
  for (const auto& wq : workload) {
    grasp::query::ConjunctiveQuery gold = grasp::datagen::BuildGoldQuery(
        wq, &dblp.dictionary, grasp::datagen::kDblpNs);
    double rr[3];
    for (int m = 0; m < 3; ++m) {
      ExplorationOptions explore;
      explore.cost_model = models[m];
      auto result = engine.Search(wq.keywords, 10, explore);
      rr[m] = ReciprocalRank(result, gold);
      mrr[m] += rr[m];
    }
    std::printf("%-5s %-38s %9.3f %9.3f %9.3f\n", wq.id.c_str(),
                grasp::Join(wq.keywords, " ").c_str(), rr[0], rr[1], rr[2]);
  }
  grasp::bench::Rule(76);
  std::printf("%-44s %9.3f %9.3f %9.3f   (MRR over %zu queries)\n", "MRR",
              mrr[0] / workload.size(), mrr[1] / workload.size(),
              mrr[2] / workload.size(), workload.size());
  for (int m = 0; m < 3; ++m) {
    std::printf("  %-16s MRR = %.3f\n", model_names[m],
                mrr[m] / workload.size());
  }

  // The companion TAP study (Sec. VII-A: "We get similar conclusions in the
  // evaluation with TAP"). TAP's many-class ontology exercises class-name
  // keywords far more than DBLP's value-heavy queries.
  grasp::bench::Dataset tap = grasp::bench::MakeTap();
  std::printf("\nTAP companion study (%zu triples)\n", tap.store.size());
  KeywordSearchEngine tap_engine(tap.store, tap.dictionary);
  const auto tap_workload = grasp::datagen::TapEffectivenessWorkload();
  std::printf("\n%-5s %-38s %9s %9s %9s\n", "query", "keywords", "C1", "C2",
              "C3");
  grasp::bench::Rule(76);
  double tap_mrr[3] = {0, 0, 0};
  for (const auto& wq : tap_workload) {
    grasp::query::ConjunctiveQuery gold = grasp::datagen::BuildGoldQuery(
        wq, &tap.dictionary, grasp::datagen::kTapNs);
    double rr[3];
    for (int m = 0; m < 3; ++m) {
      ExplorationOptions explore;
      explore.cost_model = models[m];
      auto result = tap_engine.Search(wq.keywords, 10, explore);
      rr[m] = ReciprocalRank(result, gold);
      tap_mrr[m] += rr[m];
    }
    std::printf("%-5s %-38s %9.3f %9.3f %9.3f\n", wq.id.c_str(),
                grasp::Join(wq.keywords, " ").c_str(), rr[0], rr[1], rr[2]);
  }
  grasp::bench::Rule(76);
  for (int m = 0; m < 3; ++m) {
    std::printf("  %-16s MRR = %.3f\n", model_names[m],
                tap_mrr[m] / tap_workload.size());
  }
  return 0;
}
