#ifndef GRASP_BENCH_BENCH_UTIL_H_
#define GRASP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "datagen/dblp_gen.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::bench {

/// Owning bundle of one generated dataset.
struct Dataset {
  std::string name;
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
};

/// Scale factor for the generated datasets; set GRASP_BENCH_SCALE to run
/// the harness at a different size (1.0 keeps the defaults, which finish in
/// seconds on a laptop-class machine).
inline double BenchScale() {
  const char* env = std::getenv("GRASP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline Dataset MakeDblp() {
  Dataset d;
  d.name = "DBLP";
  datagen::DblpOptions options;
  const double s = BenchScale();
  options.num_authors = static_cast<std::size_t>(1500 * s);
  options.num_publications = static_cast<std::size_t>(5000 * s);
  datagen::GenerateDblp(options, &d.dictionary, &d.store);
  d.store.Finalize();
  return d;
}

inline Dataset MakeLubm() {
  Dataset d;
  d.name = "LUBM";
  datagen::LubmOptions options;
  options.num_universities =
      std::max<std::size_t>(1, static_cast<std::size_t>(5 * BenchScale()));
  datagen::GenerateLubm(options, &d.dictionary, &d.store);
  d.store.Finalize();
  return d;
}

inline Dataset MakeTap() {
  Dataset d;
  d.name = "TAP";
  datagen::TapOptions options;
  options.num_classes =
      std::max<std::size_t>(24, static_cast<std::size_t>(240 * BenchScale()));
  datagen::GenerateTap(options, &d.dictionary, &d.store);
  d.store.Finalize();
  return d;
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void Header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  Rule(static_cast<int>(title.size()));
}

}  // namespace grasp::bench

#endif  // GRASP_BENCH_BENCH_UTIL_H_
