#!/usr/bin/env python3
"""Cross-run benchmark trend check for google-benchmark JSON output.

Compares the current run's benchmarks against a previous run's artifact and
emits GitHub Actions `::warning::` annotations for real_time regressions
beyond a threshold (default 10%). Fail-soft by design: the step must never
break CI — benchmark noise on shared runners is real, the annotations are
the trend dashboard — so every exit path is status 0.

Usage: bench_trend.py PREVIOUS.json CURRENT.json [--threshold 0.10]
"""

import argparse
import json
import sys


# real_time is reported in each entry's own time_unit; normalize to ns so
# runs recorded with different --benchmark_time_unit settings compare.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """name -> real_time (normalized to ns) per non-aggregate benchmark."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::benchmark trend: cannot read {path}: {e}")
        return None
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        time = b.get("real_time")
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if name is not None and isinstance(time, (int, float)) and unit:
            out[name] = float(time) * unit
    return out


# Benchmark families CI is expected to export every run. A family that
# vanishes from the current JSON (renamed benchmark, filter typo, kernel
# bench silently skipped) would otherwise just shrink the comparison set
# with no signal at all.
_EXPECTED_FAMILIES = (
    "BM_ExplorationSweep",
    "BM_FilteredExplorationSweep",
    "BM_KeywordLookup",
    "BM_KernelMaskCompose",
    "BM_KernelPostingsIntersect",
    "BM_KernelFuzzyScan",
    "BM_KernelStructHash",
    # Serving-layer load-generator families merged in by bench_merge.py.
    "LG_ServeLatency",
    "LG_ShedRate",
)


def warn_missing_families(cur):
    for family in _EXPECTED_FAMILIES:
        if not any(name.startswith(family) for name in cur):
            print(
                f"::warning title=benchmark family missing::{family} has no "
                f"entries in the current run's output (renamed, filtered "
                f"out, or skipped?)"
            )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10)
    args = parser.parse_args()

    prev = load_benchmarks(args.previous)
    cur = load_benchmarks(args.current)
    if cur is not None:
        warn_missing_families(cur)
    if prev is None or cur is None or not prev:
        print("benchmark trend: no usable baseline, skipping comparison")
        return 0

    regressions = []
    improvements = []
    for name, now in sorted(cur.items()):
        before = prev.get(name)
        if before is None or before <= 0:
            continue
        ratio = now / before
        if ratio > 1.0 + args.threshold:
            regressions.append((name, before, now, ratio))
        elif ratio < 1.0 - args.threshold:
            improvements.append((name, before, now, ratio))

    print(
        f"benchmark trend: compared {len(cur)} benchmarks against "
        f"{len(prev)} baseline entries "
        f"({len(regressions)} slower, {len(improvements)} faster beyond "
        f"{args.threshold:.0%})"
    )
    for name, before, now, ratio in improvements:
        print(f"  faster: {name}: {before:.0f}ns -> {now:.0f}ns ({ratio:.2f}x)")
    for name, before, now, ratio in regressions:
        # One annotation per regression; visible on the run summary page.
        print(
            f"::warning title=benchmark regression::{name} real_time "
            f"{before:.0f}ns -> {now:.0f}ns ({ratio:.2f}x, threshold "
            f"{1 + args.threshold:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
