#!/usr/bin/env python3
"""Validates a Prometheus text-format (0.0.4) scrape from grasp_serve.

    check_metrics.py SCRAPE [BASELINE]

Checks, in order:
  1. Grammar: every line is a comment or `name[{labels}] value` with a
     parseable float value and a well-formed label block.
  2. Families: every sample belongs to a family announced by # TYPE, and
     histogram sample suffixes (_bucket/_sum/_count) only appear under
     histogram families.
  3. Histogram structure, per labeled series: cumulative bucket counts are
     nondecreasing in `le` order, the +Inf bucket exists, and _count
     equals the +Inf cumulative count exactly.
  4. Shard labels: every per-shard family (grasp_shard_*, except the
     registry-wide grasp_shard_merge_* instruments) must carry a `shard`
     label whose value is a nonnegative integer — a missing or free-form
     shard label would silently sum the per-shard series.
  5. Cross-scrape monotonicity (when BASELINE is given): every counter,
     histogram _count, and cumulative bucket present in BASELINE must
     still exist in SCRAPE with a value >= its baseline value. Counters
     going backwards mean a metric got re-registered or raced.

Exits 0 when every check passes, 1 with one line per violation otherwise.
The CI network-smoke job runs this on scrapes taken before and after the
chaos run; it is dependency-free on purpose.
"""

import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[^\"}]|\"(?:[^\"\\]|\\.)*\")*\})? (\S+)$"
)


def parse(text, errors, origin):
    """Returns ({family: type}, {(name, label_block): float_value})."""
    types = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{origin}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line inside exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                errors.append(f"{where}: malformed TYPE line: {line}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP "):
                errors.append(f"{where}: unknown comment form: {line}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{where}: unparsable sample line: {line}")
            continue
        name, labels, value_text = m.group(1), m.group(2) or "", m.group(3)
        try:
            value = float(value_text)
        except ValueError:
            errors.append(f"{where}: bad value '{value_text}' in: {line}")
            continue
        if math.isnan(value):
            errors.append(f"{where}: NaN value in: {line}")
        if labels:
            body = labels[1:-1]
            if LABEL_RE.sub("", body).strip(","):
                errors.append(f"{where}: malformed label block: {labels}")
        key = (name, labels)
        if key in samples:
            errors.append(f"{where}: duplicate sample: {name}{labels}")
        samples[key] = value
    return types, samples


def family_of(name, types):
    """Maps a sample name to its announced family, handling histogram
    suffixes."""
    if name in types:
        return name, types[name]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)], types[name[: -len(suffix)]]
    return None, None


def le_of(label_block):
    """Returns (le_value_or_None, label_block_without_le)."""
    le = None
    kept = []
    for key, raw in LABEL_RE.findall(label_block[1:-1] if label_block else ""):
        if key == "le":
            le = math.inf if raw == "+Inf" else float(raw)
        else:
            kept.append(f'{key}="{raw}"')
    return le, "{" + ",".join(kept) + "}" if kept else ""


def check_structure(types, samples, errors, origin):
    # Histogram series, keyed by (family, labels-minus-le).
    buckets = {}
    for (name, labels), value in samples.items():
        family, ftype = family_of(name, types)
        if family is None:
            errors.append(f"{origin}: sample without # TYPE: {name}{labels}")
            continue
        is_histogram_part = name != family
        if is_histogram_part and ftype != "histogram":
            errors.append(
                f"{origin}: {name}{labels} uses histogram suffix but "
                f"{family} is a {ftype}"
            )
        if ftype in ("counter", "histogram") and value < 0:
            errors.append(f"{origin}: negative {ftype}: {name}{labels}={value}")
        if name.endswith("_bucket") and ftype == "histogram":
            le, rest = le_of(labels)
            if le is None:
                errors.append(f"{origin}: _bucket without le: {name}{labels}")
                continue
            buckets.setdefault((family, rest), []).append((le, value))

    for (family, rest), series in buckets.items():
        series.sort()
        prev = -1.0
        for le, value in series:
            if value < prev:
                errors.append(
                    f"{origin}: {family}_bucket{rest} not cumulative at "
                    f'le="{le}": {value} < {prev}'
                )
            prev = value
        if not series or not math.isinf(series[-1][0]):
            errors.append(f"{origin}: {family}{rest} has no +Inf bucket")
            continue
        count = samples.get((family + "_count", rest))
        if count is None:
            errors.append(f"{origin}: {family}{rest} has no _count")
        elif count != series[-1][1]:
            errors.append(
                f"{origin}: {family}_count{rest}={count} != "
                f"+Inf bucket {series[-1][1]}"
            )
        if (family + "_sum", rest) not in samples:
            errors.append(f"{origin}: {family}{rest} has no _sum")


def check_shard_labels(samples, errors, origin):
    """Per-shard families must be distinguishable by a well-formed shard
    label; merge-level instruments (grasp_shard_merge_*) aggregate across
    shards and are exempt."""
    for name, labels in samples:
        if not name.startswith("grasp_shard_"):
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix):
                family = family[: -len(suffix)]
                break
        if family.startswith("grasp_shard_merge_"):
            continue
        label_map = dict(LABEL_RE.findall(labels[1:-1] if labels else ""))
        shard = label_map.get("shard")
        if shard is None:
            errors.append(f"{origin}: {name}{labels} lacks a shard label")
        elif not shard.isdigit():
            errors.append(
                f"{origin}: {name}{labels} shard label '{shard}' is not a "
                f"nonnegative integer"
            )


def check_monotone(base_types, base_samples, types, samples, errors):
    for (name, labels), base_value in base_samples.items():
        family, ftype = family_of(name, base_types)
        if ftype not in ("counter", "histogram") or name.endswith("_sum"):
            continue  # gauges move freely; float _sum can jitter vs scale
        if (name, labels) in samples:
            now = samples[(name, labels)]
            if now < base_value:
                errors.append(
                    f"monotonicity: {name}{labels} went backwards: "
                    f"{base_value} -> {now}"
                )
        elif not name.endswith("_bucket"):
            # Empty buckets are elided, so a bucket line may legitimately
            # appear only once; whole counters must never vanish.
            errors.append(f"monotonicity: {name}{labels} disappeared")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    with open(argv[1], encoding="utf-8") as f:
        types, samples = parse(f.read(), errors, argv[1])
    if not samples:
        errors.append(f"{argv[1]}: no samples at all")
    check_structure(types, samples, errors, argv[1])
    check_shard_labels(samples, errors, argv[1])
    if len(argv) == 3:
        with open(argv[2], encoding="utf-8") as f:
            base_types, base_samples = parse(f.read(), errors, argv[2])
        check_structure(base_types, base_samples, errors, argv[2])
        check_monotone(base_types, base_samples, types, samples, errors)
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        histograms = sum(1 for t in types.values() if t == "histogram")
        print(
            f"ok: {len(samples)} samples, {len(types)} families "
            f"({histograms} histograms)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
