#!/usr/bin/env python3
"""Merge google-benchmark JSON files into one.

    bench_merge.py BASE.json EXTRA.json [EXTRA2.json ...]

Appends every `benchmarks` entry from the EXTRA files to BASE's list and
rewrites BASE in place. Later files win on duplicate names (the earlier
entry is dropped), so re-running a harness and re-merging is idempotent.
Used in CI to fold grasp_loadgen's serving-latency/shed-rate entries into
BENCH_exploration.json so one artifact feeds the cross-PR trend check.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc or not isinstance(doc["benchmarks"], list):
        raise SystemExit(f"{path}: not a google-benchmark JSON file "
                         "(no 'benchmarks' list)")
    return doc


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("base")
    parser.add_argument("extras", nargs="+")
    args = parser.parse_args()

    base = load(args.base)
    merged = list(base["benchmarks"])
    for path in args.extras:
        extra = load(path)
        incoming = {b.get("name") for b in extra["benchmarks"]}
        merged = [b for b in merged if b.get("name") not in incoming]
        merged.extend(extra["benchmarks"])
        print(f"merged {len(extra['benchmarks'])} entries from {path}",
              file=sys.stderr)

    base["benchmarks"] = merged
    with open(args.base, "w") as f:
        json.dump(base, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
