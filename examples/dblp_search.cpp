// Bibliographic search over a DBLP-shaped dataset — the workload that
// motivates the paper's evaluation (Sec. VII).
//
// Generates a synthetic DBLP-like graph (see datagen/dblp_gen.h for how it
// mirrors the real dump's shape), then answers a handful of bibliographic
// keyword queries, showing for each the top-k interpretations, their costs
// under the three scoring functions of Sec. V, and the answers of the best
// interpretation.
//
// Usage:
//   ./build/examples/dblp_search                 # canned queries
//   ./build/examples/dblp_search cimiano 2006    # your own keywords

#include <cstdio>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace {

const char* CostModelName(grasp::core::CostModel model) {
  switch (model) {
    case grasp::core::CostModel::kPathLength:
      return "C1 path-length";
    case grasp::core::CostModel::kPopularity:
      return "C2 popularity";
    case grasp::core::CostModel::kMatching:
      return "C3 matching";
  }
  return "?";
}

void RunQuery(const grasp::core::KeywordSearchEngine& engine,
              const grasp::rdf::Dictionary& dictionary,
              const std::vector<std::string>& keywords) {
  std::printf("==============================================================\n");
  std::printf("keywords:");
  for (const auto& kw : keywords) std::printf(" %s", kw.c_str());
  std::printf("\n\n");

  // Top-5 interpretations under the full scoring function C3.
  auto result = engine.Search(keywords, /*k=*/5);
  if (result.queries.empty()) {
    std::printf("  no interpretation found\n");
    return;
  }
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    std::printf("  #%zu  cost=%.3f  %s\n", i + 1, result.queries[i].cost,
                result.queries[i].query.ToString(dictionary).c_str());
  }

  // How would the other cost models have ranked interpretations?
  for (grasp::core::CostModel model :
       {grasp::core::CostModel::kPathLength,
        grasp::core::CostModel::kPopularity}) {
    grasp::core::ExplorationOptions exploration =
        engine.options().exploration;
    exploration.cost_model = model;
    auto alt = engine.Search(keywords, /*k=*/1, exploration);
    if (!alt.queries.empty()) {
      std::printf("  [%s] best: %s\n", CostModelName(model),
                  alt.queries[0].query.ToString(dictionary).c_str());
    }
  }

  // Answers of the best interpretation ("query processing" in Fig. 5).
  auto answers = engine.Answers(result.queries[0].query, /*limit=*/5);
  if (answers.ok()) {
    std::printf("  answers (%zu%s):\n", answers->rows.size(),
                answers->truncated ? "+" : "");
    for (const auto& row : answers->rows) {
      std::printf("   ");
      for (grasp::rdf::TermId term : row) {
        std::printf(" %s", std::string(grasp::rdf::IriLocalName(
                               dictionary.text(term))).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("  search: %.2f ms total (exploration %.2f ms, %zu cursors)\n\n",
              result.total_millis, result.exploration_millis,
              result.exploration_stats.cursors_popped);
}

}  // namespace

int main(int argc, char** argv) {
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  grasp::datagen::DblpOptions options;
  options.num_authors = 2000;
  options.num_publications = 6000;
  std::printf("Generating DBLP-shaped dataset...\n");
  grasp::datagen::GenerateDblp(options, &dictionary, &store);
  store.Finalize();
  std::printf("  %zu triples\n\n", store.size());

  grasp::core::KeywordSearchEngine engine(store, dictionary);
  std::printf("Indexes built in %.1f ms (keyword index %.1f KB, summary "
              "graph %zu nodes / %zu edges)\n\n",
              engine.index_stats().build_millis,
              engine.index_stats().keyword_index_bytes / 1024.0,
              engine.index_stats().summary_nodes,
              engine.index_stats().summary_edges);

  if (argc > 1) {
    std::vector<std::string> keywords(argv + 1, argv + argc);
    RunQuery(engine, dictionary, keywords);
    return 0;
  }

  // Canned bibliographic information needs (in the spirit of the paper's
  // assessor queries: "All papers about algorithms published in 1999").
  RunQuery(engine, dictionary, {"cimiano", "2006"});
  RunQuery(engine, dictionary, {"publication", "year", "2001"});
  RunQuery(engine, dictionary, {"studer", "aifb"});
  RunQuery(engine, dictionary, {"semantic", "search"});
  RunQuery(engine, dictionary, {"cites", "knowledge"});
  return 0;
}
