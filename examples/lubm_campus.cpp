// University-campus search on a LUBM-shaped dataset, demonstrating the two
// capabilities that set the paper's algorithm apart from answer-tree systems
// (Sec. VI-A): keywords that match *edges* (predicates), and matching
// subgraphs that are general graphs — including cycles — rather than trees.
//
// Usage:
//   ./build/examples/lubm_campus

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/exploration.h"
#include "datagen/lubm_gen.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace {

void ShowTopQueries(const grasp::core::KeywordSearchEngine& engine,
                    const grasp::rdf::Dictionary& dictionary,
                    const std::vector<std::string>& keywords,
                    std::size_t k) {
  std::printf("keywords:");
  for (const auto& kw : keywords) std::printf(" %s", kw.c_str());
  std::printf("\n");
  auto result = engine.Search(keywords, k);
  if (result.queries.empty()) {
    std::printf("  (no interpretation)\n\n");
    return;
  }
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    const auto& rq = result.queries[i];
    std::printf("  #%zu cost=%.3f  [%zu nodes, %zu edges%s]  %s\n", i + 1,
                rq.cost, rq.subgraph.nodes.size(), rq.subgraph.edges.size(),
                rq.subgraph.edges.size() >= rq.subgraph.nodes.size()
                    ? ", cyclic"
                    : "",
                rq.query.ToString(dictionary).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  grasp::datagen::LubmOptions options;
  options.num_universities = 3;
  std::printf("Generating LUBM-shaped campus dataset...\n");
  grasp::datagen::GenerateLubm(options, &dictionary, &store);
  store.Finalize();
  std::printf("  %zu triples\n\n", store.size());

  grasp::core::KeywordSearchEngine engine(store, dictionary);
  std::printf("Summary graph: %zu class nodes, %zu relation edges\n\n",
              engine.index_stats().summary_nodes,
              engine.index_stats().summary_edges);

  // 1. Plain entity search: who is called "fullprofessor0"?
  std::printf("--- 1. class + value keywords ---------------------------\n");
  ShowTopQueries(engine, dictionary, {"professor", "course"}, 3);

  // 2. A keyword matching an *edge*: "advisor" names a relation, not an
  // entity. Tree-based systems cannot represent this interpretation.
  std::printf("--- 2. keyword on an edge (relation) --------------------\n");
  ShowTopQueries(engine, dictionary, {"advisor", "professor"}, 3);

  // 3. Two relation keywords between the same classes: the minimal
  // connecting structure is a cycle (teacherOf + takesCourse both link
  // faculty/students and courses).
  std::printf("--- 3. cyclic matching subgraph -------------------------\n");
  ShowTopQueries(engine, dictionary, {"teacherof", "takescourse"}, 3);

  // 4. The effect of d_max: a tight exploration radius prunes the farther
  // interpretations (Sec. VI-B, termination condition b).
  std::printf("--- 4. d_max sweep --------------------------------------\n");
  for (std::uint32_t dmax : {2u, 4u, 8u, 12u}) {
    grasp::core::ExplorationOptions exploration = engine.options().exploration;
    exploration.dmax = dmax;
    auto result =
        engine.Search({"publication", "university"}, 5, exploration);
    std::printf("  dmax=%2u -> %zu interpretations (%zu cursor pops)\n", dmax,
                result.queries.size(),
                result.exploration_stats.cursors_popped);
  }
  std::printf("\n");

  // 5. Answer a concrete need: publications of professors who teach.
  std::printf("--- 5. end-to-end ---------------------------------------\n");
  auto result =
      engine.Search({"publicationauthor", "fullprofessor", "course"}, 1);
  if (!result.queries.empty()) {
    std::printf("query: %s\n",
                result.queries[0].query.ToSparql(dictionary).c_str());
    auto answers = engine.Answers(result.queries[0].query, 5);
    if (answers.ok()) {
      std::printf("first %zu answers:\n", answers->rows.size());
      for (const auto& row : answers->rows) {
        std::printf(" ");
        for (grasp::rdf::TermId t : row) {
          std::printf(" %s", std::string(grasp::rdf::IriLocalName(
                                 dictionary.text(t))).c_str());
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
