// Interactive keyword-search REPL — the shape of the paper's SearchWebDB
// demo: type keywords, inspect the ranked conjunctive-query interpretations,
// pick one, and see its answers from the store.
//
// Usage:
//   ./build/examples/query_repl [file.nt]
//
// Without an argument a DBLP-shaped dataset is generated. With an N-Triples
// file the REPL runs over your own data.
//
// Commands at the prompt:
//   <keywords...>      compute top-k interpretations (each is also shown as
//                      a natural-language question, as in the paper's demo)
//   >2000 / <=1995     operator keywords become FILTER conditions
//   !<rank>            evaluate interpretation <rank> from the last search
//   :k <n>             set k                      (default 5)
//   :dmax <n>          set exploration radius     (default 12)
//   :model c1|c2|c3    set the scoring function   (default c3)
//   :save <path>       write the dataset as a binary snapshot (.grdf);
//                      pass that file instead of .nt to reload instantly
//   :quit              exit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "query/verbalizer.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot.h"
#include "rdf/triple_store.h"

namespace {

struct ReplState {
  std::size_t k = 5;
  grasp::core::ExplorationOptions exploration;
  std::vector<grasp::core::KeywordSearchEngine::RankedQuery> last;
};

void PrintResult(const grasp::core::KeywordSearchEngine::SearchResult& result,
                 const grasp::rdf::Dictionary& dictionary) {
  if (result.queries.empty()) {
    std::printf("no interpretation found (try different keywords)\n");
    return;
  }
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    std::printf("  #%zu  cost=%.3f  %s\n", i + 1, result.queries[i].cost,
                result.queries[i].query.ToString(dictionary).c_str());
    std::printf("       \"%s\"\n",
                grasp::query::Verbalize(result.queries[i].query, dictionary)
                    .c_str());
  }
  std::printf("  [%.1f ms, %zu cursor pops%s]\n", result.total_millis,
              result.exploration_stats.cursors_popped,
              result.exploration_stats.early_terminated ? ", early top-k exit"
                                                        : "");
}

void Evaluate(const grasp::core::KeywordSearchEngine& engine,
              const grasp::rdf::Dictionary& dictionary, const ReplState& state,
              std::size_t rank) {
  if (rank == 0 || rank > state.last.size()) {
    std::printf("no interpretation #%zu in the last result\n", rank);
    return;
  }
  const auto& chosen = state.last[rank - 1];
  std::printf("%s\n", chosen.query.ToSparql(dictionary).c_str());
  auto answers = engine.Answers(chosen.query, /*limit=*/20);
  if (!answers.ok()) {
    std::printf("evaluation error: %s\n",
                answers.status().ToString().c_str());
    return;
  }
  std::printf("%zu answer(s)%s:\n", answers->rows.size(),
              answers->truncated ? " (truncated)" : "");
  for (const auto& row : answers->rows) {
    std::printf(" ");
    for (grasp::rdf::TermId t : row) {
      std::printf(" %s",
                  std::string(grasp::rdf::IriLocalName(dictionary.text(t)))
                      .c_str());
    }
    std::printf("\n");
  }
}

std::optional<grasp::core::CostModel> ParseModel(const std::string& name) {
  if (name == "c1") return grasp::core::CostModel::kPathLength;
  if (name == "c2") return grasp::core::CostModel::kPopularity;
  if (name == "c3") return grasp::core::CostModel::kMatching;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  if (argc > 1) {
    const std::string path = argv[1];
    std::printf("Loading %s ...\n", path.c_str());
    const bool is_snapshot =
        path.size() > 5 && path.substr(path.size() - 5) == ".grdf";
    grasp::Status status =
        is_snapshot
            ? grasp::rdf::ReadSnapshotFile(path, &dictionary, &store)
            : grasp::rdf::ParseNTriplesFile(path, &dictionary, &store);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    std::printf("Generating DBLP-shaped dataset (pass an .nt file to use "
                "your own data)...\n");
    grasp::datagen::DblpOptions options;
    grasp::datagen::GenerateDblp(options, &dictionary, &store);
  }
  store.Finalize();
  std::printf("%zu triples loaded. Building indexes...\n", store.size());

  grasp::core::KeywordSearchEngine engine(store, dictionary);
  std::printf("Ready (%.1f ms). Type keywords, or :quit.\n\n",
              engine.index_stats().build_millis);

  ReplState state;
  state.exploration = engine.options().exploration;
  std::string line;
  while (true) {
    std::printf("grasp> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::vector<std::string> tokens;
    for (std::string tok; in >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;

    if (tokens[0] == ":quit" || tokens[0] == ":q") break;
    if (tokens[0] == ":k" && tokens.size() == 2) {
      state.k = static_cast<std::size_t>(std::atoi(tokens[1].c_str()));
      std::printf("k = %zu\n", state.k);
      continue;
    }
    if (tokens[0] == ":dmax" && tokens.size() == 2) {
      state.exploration.dmax =
          static_cast<std::uint32_t>(std::atoi(tokens[1].c_str()));
      std::printf("dmax = %u\n", state.exploration.dmax);
      continue;
    }
    if (tokens[0] == ":save" && tokens.size() == 2) {
      grasp::Status status =
          grasp::rdf::WriteSnapshotFile(store, dictionary, tokens[1]);
      std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
      continue;
    }
    if (tokens[0] == ":model" && tokens.size() == 2) {
      if (auto model = ParseModel(tokens[1])) {
        state.exploration.cost_model = *model;
        std::printf("model = %s\n", tokens[1].c_str());
      } else {
        std::printf("unknown model %s (use c1|c2|c3)\n", tokens[1].c_str());
      }
      continue;
    }
    if (tokens[0][0] == '!') {
      Evaluate(engine, dictionary, state,
               static_cast<std::size_t>(std::atoi(tokens[0].c_str() + 1)));
      continue;
    }

    auto result = engine.Search(tokens, state.k, state.exploration);
    PrintResult(result, dictionary);
    state.last = std::move(result.queries);
  }
  std::printf("bye\n");
  return 0;
}
