// Quickstart: the paper's running example end to end.
//
// Loads the RDF graph of Fig. 1a from inline N-Triples, builds the search
// engine (keyword index + summary graph), runs the keyword query
// "2006 cimiano aifb", prints the top-k conjunctive queries as SPARQL, and
// evaluates the best one against the store — the full pipeline of Fig. 2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/conjunctive_query.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

namespace {

// Fig. 1a of the paper: projects, publications, researchers, institutes.
constexpr char kFigure1Data[] = R"(
<http://ex.org/pro2>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Project> .
<http://ex.org/pro1>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Project> .
<http://ex.org/pro1>  <http://ex.org/name> "X-Media" .
<http://ex.org/pub1>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Publication> .
<http://ex.org/pub1>  <http://ex.org/author> <http://ex.org/re1> .
<http://ex.org/pub1>  <http://ex.org/author> <http://ex.org/re2> .
<http://ex.org/pub1>  <http://ex.org/year> "2006" .
<http://ex.org/pub1>  <http://ex.org/hasProject> <http://ex.org/pro1> .
<http://ex.org/pub2>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Publication> .
<http://ex.org/re1>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Researcher> .
<http://ex.org/re1>   <http://ex.org/name> "Thanh Tran" .
<http://ex.org/re1>   <http://ex.org/worksAt> <http://ex.org/inst1> .
<http://ex.org/re2>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Researcher> .
<http://ex.org/re2>   <http://ex.org/name> "P. Cimiano" .
<http://ex.org/re2>   <http://ex.org/worksAt> <http://ex.org/inst1> .
<http://ex.org/inst1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Institute> .
<http://ex.org/inst1> <http://ex.org/name> "AIFB" .
<http://ex.org/inst2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Institute> .
<http://ex.org/Institute>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/Agent> .
<http://ex.org/Researcher> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/Person> .
<http://ex.org/Person>     <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/Agent> .
)";

}  // namespace

int main() {
  // 1. Load the data graph.
  grasp::rdf::Dictionary dictionary;
  grasp::rdf::TripleStore store;
  grasp::Status status =
      grasp::rdf::ParseNTriplesString(kFigure1Data, &dictionary, &store);
  if (!status.ok()) {
    std::fprintf(stderr, "parse error: %s\n", status.ToString().c_str());
    return 1;
  }
  store.Finalize();
  std::printf("Loaded %zu triples.\n\n", store.size());

  // 2. Preprocess: keyword index + summary graph (Fig. 2, off-line part).
  grasp::core::KeywordSearchEngine engine(store, dictionary);
  const auto& index_stats = engine.index_stats();
  std::printf("Summary graph: %zu nodes, %zu edges (data graph had %zu triples)\n\n",
              index_stats.summary_nodes, index_stats.summary_edges,
              store.size());

  // 3. Keyword search: compute the top-3 conjunctive queries.
  const std::vector<std::string> keywords = {"2006", "cimiano", "aifb"};
  std::printf("Keyword query: \"2006 cimiano aifb\"\n\n");
  auto result = engine.Search(keywords, /*k=*/3);
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    const auto& ranked = result.queries[i];
    std::printf("--- rank %zu (cost %.3f) ---\n%s\n", i + 1, ranked.cost,
                ranked.query.ToSparql(dictionary).c_str());
  }
  if (result.queries.empty()) {
    std::printf("no interpretation found\n");
    return 1;
  }

  // 4. The user picks a query (here: rank 1); the database engine answers it.
  auto answers = engine.Answers(result.queries[0].query, /*limit=*/10);
  if (!answers.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }
  std::printf("Answers to the top query (%zu rows):\n", answers->rows.size());
  for (const auto& row : answers->rows) {
    std::printf(" ");
    for (grasp::rdf::TermId term : row) {
      std::printf(" %s", std::string(dictionary.text(term)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nSearch took %.2f ms (%.2f ms keyword mapping, %.2f ms "
              "exploration, %.2f ms query mapping)\n",
              result.total_millis, result.keyword_millis,
              result.exploration_millis, result.mapping_millis);
  return 0;
}
