// Build-and-save / load-and-query front-end for the index-snapshot
// subsystem: the operational face of the paper's "build once, amortize over
// every query" pitch. A cold process pays full preprocessing (parse,
// DataGraph, SummaryGraph, keyword index); a warm process mmaps a snapshot
// and serves its first query immediately.
//
//   grasp_snapshot build --dataset=lubm --out=idx.snap
//   grasp_snapshot build --nt=data.nt --out=idx.snap
//   grasp_snapshot query --snapshot=idx.snap --k=5 publication professor
//   grasp_snapshot query --dataset=lubm --cold --k=5 publication professor
//   grasp_snapshot info --snapshot=idx.snap
//
// The two query modes print identical output for the same data (the
// warm-start differential suite pins this; CI diffs them across processes).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "rdf/ntriples.h"
#include "serve/admission.h"
#include "serve/query_control.h"
#include "shard/shard_plan.h"
#include "shard/sharded_engine.h"

namespace {

using grasp::core::KeywordSearchEngine;
using grasp::shard::ShardedEngine;

struct Args {
  std::string command;
  std::string dataset;
  std::string nt_path;
  std::string snapshot_path;
  std::string out_path;
  bool cold = false;
  std::size_t k = 5;
  double deadline_ms = 0.0;  // <= 0: no deadline
  /// build: 0 writes no plan; N >= 1 partitions and embeds a plan.
  /// query: 0 serves unsharded; N >= 1 opens/builds a sharded engine.
  std::size_t shards = 0;
  std::vector<std::string> keywords;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--dataset=")) {
      args->dataset = v;
    } else if (const char* v = value("--nt=")) {
      args->nt_path = v;
    } else if (const char* v = value("--snapshot=")) {
      args->snapshot_path = v;
    } else if (const char* v = value("--out=")) {
      args->out_path = v;
    } else if (const char* v = value("--k=")) {
      args->k = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deadline-ms=")) {
      args->deadline_ms = std::atof(v);
    } else if (const char* v = value("--shards=")) {
      args->shards = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--cold") {
      args->cold = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->keywords.push_back(arg);
    }
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  grasp_snapshot build (--dataset=dblp|lubm|tap | --nt=FILE) "
      "--out=PATH [--shards=N]\n"
      "  grasp_snapshot query --snapshot=PATH [--k=N] [--deadline-ms=MS] "
      "[--shards=N] KEYWORD...\n"
      "  grasp_snapshot query (--dataset=... | --nt=FILE) --cold [--k=N] "
      "[--shards=N] KEYWORD...\n"
      "  grasp_snapshot info --snapshot=PATH\n"
      "\n--deadline-ms bounds the query: results may be a degraded (but "
      "verified)\nprefix of the full ranking; the stop reason goes to "
      "stderr.\n--shards=N builds a partition plan into the snapshot / "
      "serves the query\nthrough the sharded scatter-gather engine "
      "(results are identical to\nunsharded).\nGRASP_BENCH_SCALE scales "
      "the generated datasets (default 1.0).\n");
  return 2;
}

/// Builds the dataset named by --dataset/--nt. Exits on failure.
bool LoadDataset(const Args& args, grasp::bench::Dataset* dataset) {
  if (!args.nt_path.empty()) {
    dataset->name = args.nt_path;
    const grasp::Status status = grasp::rdf::ParseNTriplesFile(
        args.nt_path, &dataset->dictionary, &dataset->store);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s\n", args.nt_path.c_str(),
                   status.ToString().c_str());
      return false;
    }
    dataset->store.Finalize();
    return true;
  }
  if (args.dataset == "dblp") {
    *dataset = grasp::bench::MakeDblp();
  } else if (args.dataset == "lubm") {
    *dataset = grasp::bench::MakeLubm();
  } else if (args.dataset == "tap") {
    *dataset = grasp::bench::MakeTap();
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (dblp|lubm|tap)\n",
                 args.dataset.c_str());
    return false;
  }
  return true;
}

/// Deterministic query report, identical for cold and warm engines over the
/// same data: rank, cost, canonical conjunctive query.
void PrintResult(const KeywordSearchEngine::SearchResult& result) {
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    std::printf("%2zu %.6f %s\n", i + 1, result.queries[i].cost,
                result.queries[i].query.CanonicalString().c_str());
  }
}

int RunBuild(const Args& args) {
  if (args.out_path.empty()) return Usage();
  grasp::bench::Dataset dataset;
  if (!LoadDataset(args, &dataset)) return 1;
  grasp::WallTimer timer;
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  std::vector<std::uint32_t> plan_payload;
  if (args.shards >= 1) {
    const grasp::shard::ShardPlan plan = grasp::shard::ShardPlan::Build(
        engine.data_graph(), engine.summary_graph(), args.shards);
    plan_payload = plan.Serialize();
  }
  const double build_millis = timer.ElapsedMillis();
  const grasp::Status status = engine.SaveIndex(args.out_path, plan_payload);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto stats = engine.index_stats();
  std::fprintf(stderr,
               "built %s (%zu triples, %zu summary nodes) in %.1f ms; "
               "snapshot -> %s%s\n",
               dataset.name.c_str(), dataset.store.size(),
               stats.summary_nodes, build_millis, args.out_path.c_str(),
               plan_payload.empty() ? "" : " (with shard plan)");
  return 0;
}

int RunQuery(const Args& args) {
  if (args.keywords.empty()) return Usage();
  // Declared before the engines: a cold-built engine keeps raw pointers
  // into the dataset, which therefore must be destroyed after it.
  std::unique_ptr<grasp::bench::Dataset> dataset;
  std::unique_ptr<KeywordSearchEngine> warm;
  std::unique_ptr<ShardedEngine> sharded;
  std::unique_ptr<grasp::core::EngineBackend> single;
  const grasp::core::SearchBackend* backend = nullptr;
  grasp::WallTimer timer;
  if (!args.snapshot_path.empty()) {
    if (args.shards >= 1) {
      ShardedEngine::Options options;
      options.num_shards = args.shards;
      auto opened = ShardedEngine::Open(args.snapshot_path, options);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      sharded = std::move(opened).value();
      backend = sharded.get();
      std::fprintf(stderr, "warm open: %.1f ms (%zu shards, %zu mapped bytes "
                   "each)\n",
                   timer.ElapsedMillis(), sharded->num_shards(),
                   sharded->shard(0).index_stats().mapped_snapshot_bytes);
    } else {
      auto opened = KeywordSearchEngine::Open(args.snapshot_path);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      warm = std::move(opened).value();
      single = std::make_unique<grasp::core::EngineBackend>(*warm);
      backend = single.get();
      std::fprintf(stderr, "warm open: %.1f ms (%zu mapped bytes)\n",
                   timer.ElapsedMillis(),
                   warm->index_stats().mapped_snapshot_bytes);
    }
  } else if (args.cold) {
    dataset = std::make_unique<grasp::bench::Dataset>();
    if (!LoadDataset(args, dataset.get())) return 1;
    timer.Reset();  // time the engine build, not dataset generation/parsing
    if (args.shards >= 1) {
      ShardedEngine::Options options;
      options.num_shards = args.shards;
      sharded = std::make_unique<ShardedEngine>(dataset->store,
                                                dataset->dictionary, options);
      backend = sharded.get();
      std::fprintf(stderr, "cold build: %.1f ms (%zu shards)\n",
                   timer.ElapsedMillis(), sharded->num_shards());
    } else {
      warm = std::make_unique<KeywordSearchEngine>(dataset->store,
                                                   dataset->dictionary);
      single = std::make_unique<grasp::core::EngineBackend>(*warm);
      backend = single.get();
      std::fprintf(stderr, "cold build: %.1f ms\n", timer.ElapsedMillis());
    }
  } else {
    return Usage();
  }
  if (args.deadline_ms <= 0.0) {
    PrintResult(backend->Search(args.keywords, args.k,
                                backend->default_exploration(), {}));
    return 0;
  }

  // Deadline-aware single query: the serving layer's deadline→budget
  // calibration at its (conservative) defaults, plus the polled wall-clock
  // deadline as backstop. Degradation is reported, not hidden; a non-OK
  // status (cancellation cannot happen here, but the contract is shared)
  // exits nonzero with the status message.
  grasp::serve::QueryControl control;
  control.SetDeadlineAfterMillis(args.deadline_ms);
  grasp::serve::DeadlineCalibrator calibrator(0.2, 50.0);
  grasp::core::ExplorationOptions exploration = backend->default_exploration();
  exploration.control = &control;
  const std::size_t budget = calibrator.BudgetForDeadline(args.deadline_ms, 0.5);
  if (exploration.max_cursor_pops == 0 || budget < exploration.max_cursor_pops) {
    exploration.max_cursor_pops = budget;
  }
  const KeywordSearchEngine::SearchResult result =
      backend->Search(args.keywords, args.k, exploration, {});
  if (!result.status.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }
  if (result.degraded) {
    std::fprintf(stderr,
                 "degraded: stopped after %zu pops (%s); %zu verified "
                 "results in %.1f ms\n",
                 result.exploration_stats.cursors_popped,
                 result.exploration_stats.deadline_expired ? "deadline"
                                                           : "pop budget",
                 result.queries.size(), result.total_millis);
  }
  PrintResult(result);
  return 0;
}

int RunInfo(const Args& args) {
  if (args.snapshot_path.empty()) return Usage();
  grasp::WallTimer timer;
  auto opened = KeywordSearchEngine::Open(args.snapshot_path);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  const double open_millis = timer.ElapsedMillis();
  const auto& engine = **opened;
  const auto stats = engine.index_stats();
  std::printf("snapshot          %s\n", args.snapshot_path.c_str());
  std::printf("open time         %.1f ms\n", open_millis);
  std::printf("mapped bytes      %zu\n", stats.mapped_snapshot_bytes);
  const std::span<const std::uint32_t> plan = engine.loaded_shard_plan();
  if (!plan.empty()) {
    std::printf("shard plan        %u shards\n", plan[0]);
  }
  std::printf("terms             %zu\n", engine.dictionary().size());
  std::printf("data vertices     %zu\n", engine.data_graph().NumVertices());
  std::printf("data edges        %zu\n", engine.data_graph().NumEdges());
  std::printf("summary nodes     %zu\n", stats.summary_nodes);
  std::printf("summary edges     %zu\n", stats.summary_edges);
  std::printf("keyword elements  %zu\n", stats.keyword_elements);
  std::printf("kw-index bytes    %zu (owned)\n", stats.keyword_index_bytes);
  std::printf("graph-index bytes %zu (owned)\n", stats.summary_graph_bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "build") return RunBuild(args);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "info") return RunInfo(args);
  return Usage();
}
