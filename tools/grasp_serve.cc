// Standalone HTTP serving daemon: dataset -> engine -> QueryServer ->
// epoll front-end, plus the process-level plumbing a real deployment needs
// (SIGPIPE ignored, SIGTERM/SIGINT = graceful drain, second signal = abrupt
// stop). The network smoke job in CI runs this binary against grasp_loadgen
// in network mode and SIGTERMs it mid-traffic; the drain must answer every
// accepted in-flight request and the process must exit 0.
//
//   grasp_serve --dataset=dblp --port=8080 --default-deadline-ms=50
//   grasp_serve --nt=data.nt --port=0         # ephemeral; port on stdout
//
// Prints exactly one "listening on HOST:PORT" line to stdout once the
// socket is bound (scripts parse it), then serves until signalled.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "common/metrics.h"
#include "core/engine.h"
#include "net/http_server.h"
#include "net/socket.h"
#include "rdf/ntriples.h"
#include "serve/admission.h"
#include "shard/sharded_engine.h"

namespace {

using grasp::core::KeywordSearchEngine;
using grasp::net::HttpServer;
using grasp::serve::QueryServer;
using grasp::shard::ShardedEngine;

struct Args {
  std::string dataset = "dblp";
  std::string nt_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t shards = 0;  ///< 0/1 = single engine; N > 1 = scatter-gather
  std::size_t fast_workers = 2;
  std::size_t deep_workers = 2;
  std::size_t queue_capacity = 32;
  std::size_t max_connections = 1024;
  double read_timeout_ms = 10'000.0;
  double write_timeout_ms = 10'000.0;
  double idle_timeout_ms = 60'000.0;
  double drain_timeout_ms = 30'000.0;
  double default_deadline_ms = 0.0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--dataset=")) {
      args->dataset = v;
    } else if (const char* v = value("--nt=")) {
      args->nt_path = v;
    } else if (const char* v = value("--host=")) {
      args->host = v;
    } else if (const char* v = value("--port=")) {
      args->port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (const char* v = value("--shards=")) {
      args->shards = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--fast-workers=")) {
      args->fast_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deep-workers=")) {
      args->deep_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--queue-capacity=")) {
      args->queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--max-connections=")) {
      args->max_connections = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--read-timeout-ms=")) {
      args->read_timeout_ms = std::atof(v);
    } else if (const char* v = value("--write-timeout-ms=")) {
      args->write_timeout_ms = std::atof(v);
    } else if (const char* v = value("--idle-timeout-ms=")) {
      args->idle_timeout_ms = std::atof(v);
    } else if (const char* v = value("--drain-timeout-ms=")) {
      args->drain_timeout_ms = std::atof(v);
    } else if (const char* v = value("--default-deadline-ms=")) {
      args->default_deadline_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool LoadDataset(const Args& args, grasp::bench::Dataset* dataset) {
  if (!args.nt_path.empty()) {
    dataset->name = args.nt_path;
    const grasp::Status status = grasp::rdf::ParseNTriplesFile(
        args.nt_path, &dataset->dictionary, &dataset->store);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s\n", args.nt_path.c_str(),
                   status.ToString().c_str());
      return false;
    }
    dataset->store.Finalize();
    return true;
  }
  if (args.dataset == "dblp") {
    *dataset = grasp::bench::MakeDblp();
  } else if (args.dataset == "lubm") {
    *dataset = grasp::bench::MakeLubm();
  } else if (args.dataset == "tap") {
    *dataset = grasp::bench::MakeTap();
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (dblp|lubm|tap)\n",
                 args.dataset.c_str());
    return false;
  }
  return true;
}

void PrintStats(const HttpServer& server, const QueryServer& query_server) {
  const HttpServer::Stats http = server.stats();
  const QueryServer::Stats qs = query_server.stats();
  std::fprintf(stderr,
               "accepted=%llu requests=%llu 2xx=%llu 4xx=%llu 408=%llu "
               "429=%llu 5xx=%llu\n"
               "disconnect_cancels=%llu dropped_completions=%llu "
               "slow_reader_closes=%llu drain_force_closed=%llu\n"
               "serve: admitted=%llu shed=%llu completed=%llu degraded=%llu "
               "expired=%llu cancelled=%llu\n",
               static_cast<unsigned long long>(http.accepted),
               static_cast<unsigned long long>(http.requests),
               static_cast<unsigned long long>(http.responses_2xx),
               static_cast<unsigned long long>(http.responses_4xx),
               static_cast<unsigned long long>(http.responses_408),
               static_cast<unsigned long long>(http.responses_429),
               static_cast<unsigned long long>(http.responses_5xx),
               static_cast<unsigned long long>(http.disconnect_cancels),
               static_cast<unsigned long long>(http.dropped_completions),
               static_cast<unsigned long long>(http.slow_reader_closes),
               static_cast<unsigned long long>(http.drain_force_closed),
               static_cast<unsigned long long>(qs.admitted),
               static_cast<unsigned long long>(qs.shed),
               static_cast<unsigned long long>(qs.completed),
               static_cast<unsigned long long>(qs.degraded),
               static_cast<unsigned long long>(qs.expired_in_queue),
               static_cast<unsigned long long>(qs.cancelled));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: grasp_serve [--dataset=dblp|lubm|tap | --nt=FILE]\n"
        "    [--host=H] [--port=N] [--shards=N]\n"
        "    [--fast-workers=N] [--deep-workers=N]\n"
        "    [--queue-capacity=N] [--max-connections=N]\n"
        "    [--read-timeout-ms=MS] [--write-timeout-ms=MS]\n"
        "    [--idle-timeout-ms=MS] [--drain-timeout-ms=MS]\n"
        "    [--default-deadline-ms=MS]\n"
        "\nSIGTERM/SIGINT drain gracefully (finish in-flight, then exit 0); "
        "a\nsecond signal stops abruptly.\n");
    return 2;
  }

  // A client that disconnects between our poll and our write must produce
  // EPIPE on that one socket, not SIGPIPE for the whole process.
  grasp::net::IgnoreSigpipe();

  // Block the drain signals *before* any thread exists so every thread
  // inherits the mask; the signals are then consumed synchronously with
  // sigwait instead of interrupting arbitrary syscalls in arbitrary threads.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGTERM);
  sigaddset(&drain_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);

  grasp::bench::Dataset dataset;
  if (!LoadDataset(args, &dataset)) return 1;

  // One registry spans every tier, so /metrics and /statsz expose the
  // engine's per-stage histograms, the QueryServer's queue/service/slack
  // histograms, and the HTTP front-end's wire counters side by side.
  grasp::metrics::Registry registry;

  // Single engine or sharded scatter-gather backend, both behind the same
  // core::SearchBackend interface — the serving layers don't know which.
  std::unique_ptr<KeywordSearchEngine> engine;
  std::unique_ptr<ShardedEngine> sharded;
  if (args.shards > 1) {
    ShardedEngine::Options shard_options;
    shard_options.num_shards = args.shards;
    shard_options.metrics = &registry;
    sharded = std::make_unique<ShardedEngine>(dataset.store,
                                              dataset.dictionary,
                                              shard_options);
    std::fprintf(stderr, "sharded backend: %zu shards\n",
                 sharded->num_shards());
  } else {
    KeywordSearchEngine::Options engine_options;
    engine_options.metrics = &registry;
    engine = std::make_unique<KeywordSearchEngine>(dataset.store,
                                                   dataset.dictionary,
                                                   engine_options);
  }

  QueryServer::Options serve_options;
  serve_options.fast_workers = args.fast_workers;
  serve_options.deep_workers = args.deep_workers;
  serve_options.queue_capacity = args.queue_capacity;
  serve_options.metrics = &registry;
  std::unique_ptr<QueryServer> query_server =
      sharded ? std::make_unique<QueryServer>(*sharded, serve_options)
              : std::make_unique<QueryServer>(*engine, serve_options);

  HttpServer::Options http_options;
  http_options.metrics = &registry;
  http_options.host = args.host;
  http_options.port = args.port;
  http_options.max_connections = args.max_connections;
  http_options.read_timeout_millis = args.read_timeout_ms;
  http_options.write_timeout_millis = args.write_timeout_ms;
  http_options.idle_timeout_millis = args.idle_timeout_ms;
  http_options.drain_timeout_millis = args.drain_timeout_ms;
  http_options.default_deadline_millis = args.default_deadline_ms;
  HttpServer server(query_server.get(), http_options);

  const grasp::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", args.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts wait for this line before sending traffic

  // Signal waiter: first SIGTERM/SIGINT begins the drain, a second one
  // stops abruptly. Detached — if neither arrives again it just blocks in
  // sigwait until process exit.
  std::thread([&drain_signals, &server] {
    int sig = 0;
    sigwait(&drain_signals, &sig);
    std::fprintf(stderr, "signal %d: draining\n", sig);
    server.RequestDrain();
    sigwait(&drain_signals, &sig);
    std::fprintf(stderr, "signal %d: stopping now\n", sig);
    server.Stop();
  }).detach();

  server.Join();  // returns when the drain (or stop) completes
  PrintStats(server, *query_server);
  return 0;
}
