// Load generator for the serving stack, in two modes sharing one workload
// and one report format:
//
//  - In-process (default): replays the DBLP performance workload straight
//    into a QueryServer at a target QPS with open-loop arrivals (requests
//    fire on schedule whether or not earlier ones finished — the arrival
//    process does not secretly back off under overload, which is exactly
//    the regime admission control exists for).
//
//  - Network (--server=HOST:PORT): the same open-loop arrivals over real
//    TCP against a running grasp_serve, one connection per request
//    (connection churn is part of the test). Chaos flags turn it into a
//    hostile client: --chaos-disconnect kills connections mid-request or
//    between request and response, --chaos-slow-read drains responses a
//    few bytes at a time. A correct server sheds/cancels/disconnects
//    around all of it without crashing or leaking.
//
//   grasp_loadgen --qps=200 --requests=400 --deadline-ms=20
//   grasp_loadgen --server=127.0.0.1:8080 --qps=500 --requests=1000 \
//       --chaos-disconnect=0.2 --chaos-slow-read=0.1 --assert-shed-min=0.01
//   grasp_loadgen --server=... --ramp=100:2000:5 --requests=200
//
// Both modes report per-status counts (network: real HTTP codes;
// in-process: the HTTP-equivalent mapping 200/429/504/499) and p50/p95/p99
// end-to-end latency. "unanswered" counts requests that were fully sent,
// not chaos-killed, and got zero response bytes — after a graceful drain
// it must be zero, which the CI smoke job asserts. --json writes
// google-benchmark-shaped entries; the --assert-* flags turn the binary
// into a nonzero-exit smoke test.

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "net/socket.h"
#include "serve/admission.h"

namespace {

using grasp::core::KeywordSearchEngine;
using grasp::serve::QueryServer;

struct Args {
  double qps = 100.0;
  std::size_t requests = 200;
  double deadline_ms = 50.0;
  std::size_t k = 5;
  std::size_t fast_workers = 1;
  std::size_t deep_workers = 2;
  std::size_t queue_capacity = 32;
  std::string json_path;
  double assert_shed_min = -1.0;    // < 0: no assertion
  double assert_p99_max_ms = -1.0;  // < 0: no assertion
  bool assert_no_unanswered = false;
  /// Network mode: after the run, scrape the server's /metrics and require
  /// server-observed 2xx p99 <= FACTOR * client-observed p99. The server
  /// measures less than the client (no connect, no wire), so any generous
  /// factor catches a histogram wired to the wrong clock without flaking
  /// on scheduler noise. < 0: scrape still happens, no assertion.
  double assert_server_p99_factor = -1.0;

  // Network mode.
  std::string server;  // HOST:PORT; empty = in-process
  double chaos_disconnect = 0.0;  // P(kill the connection mid-exchange)
  double chaos_slow_read = 0.0;   // P(read the response a trickle at a time)
  double slow_read_delay_ms = 20.0;
  double ramp_start = 0.0, ramp_end = 0.0;  // --ramp=START:END:STEPS
  std::size_t ramp_steps = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--qps=")) {
      args->qps = std::atof(v);
    } else if (const char* v = value("--requests=")) {
      args->requests = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deadline-ms=")) {
      args->deadline_ms = std::atof(v);
    } else if (const char* v = value("--k=")) {
      args->k = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--fast-workers=")) {
      args->fast_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deep-workers=")) {
      args->deep_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--queue-capacity=")) {
      args->queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--json=")) {
      args->json_path = v;
    } else if (const char* v = value("--assert-shed-min=")) {
      args->assert_shed_min = std::atof(v);
    } else if (const char* v = value("--assert-p99-max-ms=")) {
      args->assert_p99_max_ms = std::atof(v);
    } else if (arg == "--assert-no-unanswered") {
      args->assert_no_unanswered = true;
    } else if (const char* v = value("--assert-server-p99-factor=")) {
      args->assert_server_p99_factor = std::atof(v);
    } else if (const char* v = value("--server=")) {
      args->server = v;
    } else if (const char* v = value("--chaos-disconnect=")) {
      args->chaos_disconnect = std::atof(v);
    } else if (const char* v = value("--chaos-slow-read=")) {
      args->chaos_slow_read = std::atof(v);
    } else if (const char* v = value("--slow-read-delay-ms=")) {
      args->slow_read_delay_ms = std::atof(v);
    } else if (const char* v = value("--ramp=")) {
      if (std::sscanf(v, "%lf:%lf:%zu", &args->ramp_start, &args->ramp_end,
                      &args->ramp_steps) != 3 ||
          args->ramp_start <= 0.0 || args->ramp_end <= 0.0 ||
          args->ramp_steps < 2) {
        std::fprintf(stderr, "bad --ramp (want START:END:STEPS, STEPS>=2)\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->ramp_steps > 0 && args->server.empty()) {
    std::fprintf(stderr, "--ramp requires --server\n");
    return false;
  }
  if (args->assert_server_p99_factor >= 0.0 && args->server.empty()) {
    std::fprintf(stderr, "--assert-server-p99-factor requires --server\n");
    return false;
  }
  return args->qps > 0.0 && args->requests > 0;
}

/// Nearest-rank percentile of a sorted sample (p in [0, 100]). The math
/// lives in metrics::PercentileOfSorted so the unit tests can pin the
/// p=0 / p=100 / single-sample edge cases once for every caller.
double Percentile(const std::vector<double>& sorted, double p) {
  return grasp::metrics::PercentileOfSorted(sorted, p);
}

/// One google-benchmark-shaped entry; `unit` is "ms" for latencies and "ns"
/// for dimensionless rates (the trend checker only needs consistency with
/// itself run-over-run).
void JsonEntry(std::FILE* f, const char* name, double value, const char* unit,
               bool last) {
  std::fprintf(f,
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"run_type\": \"iteration\",\n"
               "      \"iterations\": 1,\n"
               "      \"real_time\": %.6f,\n"
               "      \"cpu_time\": %.6f,\n"
               "      \"time_unit\": \"%s\"\n"
               "    }%s\n",
               name, value, value, unit, last ? "" : ",");
}

// -------------------------------------------------------------- results --

/// One request's outcome, identical across modes. In-process responses are
/// mapped to their HTTP equivalents (OK->200, kOverloaded->429,
/// kDeadlineExceeded->504, kCancelled->499 "client closed request") so the
/// two modes print comparable tables.
struct Outcome {
  enum class Kind {
    kAnswered,       // got an HTTP status line (any code)
    kConnectFailed,  // connect() refused/failed (server down or draining)
    kChaosKilled,    // this client killed the connection on purpose
    kUnanswered,     // full request sent, zero response bytes — the bad one
  };
  Kind kind = Kind::kUnanswered;
  int status = 0;        // HTTP code when kAnswered
  double latency_ms = 0.0;
  bool degraded = false;
  /// Retry hint on a 429, in milliseconds (X-Retry-After-Ms preferred,
  /// whole-second Retry-After otherwise; in-process: retry_after_millis).
  /// < 0 = absent or unparsable — a protocol bug under --assert-no-unanswered,
  /// since an open-loop client shed without a usable hint can only guess.
  double retry_hint_ms = -1.0;
};

struct Summary {
  std::vector<std::pair<int, std::size_t>> status_counts;  // sorted by code
  std::size_t answered = 0, connect_failed = 0, chaos_killed = 0,
              unanswered = 0, degraded = 0;
  /// 429 retry-hint coverage and distribution (hint values in ms).
  std::size_t hint_missing = 0;  // 429s without a parsable hint
  double hint_min = 0.0, hint_p50 = 0.0, hint_max = 0.0;
  std::size_t hint_count = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double rate(int status) const {
    for (const auto& [code, n] : status_counts) {
      if (code == status) {
        return answered > 0 ? static_cast<double>(n) /
                                  static_cast<double>(answered)
                            : 0.0;
      }
    }
    return 0.0;
  }
};

Summary Summarize(const std::vector<Outcome>& outcomes) {
  Summary s;
  std::vector<double> ok_latencies;
  std::vector<double> hints;
  for (const Outcome& o : outcomes) {
    switch (o.kind) {
      case Outcome::Kind::kAnswered: {
        ++s.answered;
        if (o.degraded) ++s.degraded;
        if (o.status == 429) {
          if (o.retry_hint_ms >= 0.0) {
            hints.push_back(o.retry_hint_ms);
          } else {
            ++s.hint_missing;
          }
        }
        auto it = std::find_if(
            s.status_counts.begin(), s.status_counts.end(),
            [&o](const auto& p) { return p.first == o.status; });
        if (it == s.status_counts.end()) {
          s.status_counts.emplace_back(o.status, 1);
        } else {
          ++it->second;
        }
        if (o.status >= 200 && o.status < 300) {
          ok_latencies.push_back(o.latency_ms);
        }
        break;
      }
      case Outcome::Kind::kConnectFailed: ++s.connect_failed; break;
      case Outcome::Kind::kChaosKilled: ++s.chaos_killed; break;
      case Outcome::Kind::kUnanswered: ++s.unanswered; break;
    }
  }
  std::sort(s.status_counts.begin(), s.status_counts.end());
  std::sort(ok_latencies.begin(), ok_latencies.end());
  s.p50 = Percentile(ok_latencies, 50.0);
  s.p95 = Percentile(ok_latencies, 95.0);
  s.p99 = Percentile(ok_latencies, 99.0);
  std::sort(hints.begin(), hints.end());
  s.hint_count = hints.size();
  if (!hints.empty()) {
    s.hint_min = hints.front();
    s.hint_p50 = Percentile(hints, 50.0);
    s.hint_max = hints.back();
  }
  return s;
}

void PrintSummary(const Summary& s) {
  std::printf("answered          %zu\n", s.answered);
  for (const auto& [code, n] : s.status_counts) {
    std::printf("  status %d      %zu (%.1f%%)\n", code, n,
                s.answered > 0
                    ? 100.0 * static_cast<double>(n) /
                          static_cast<double>(s.answered)
                    : 0.0);
  }
  std::printf("connect failed    %zu\n", s.connect_failed);
  std::printf("chaos killed      %zu\n", s.chaos_killed);
  std::printf("unanswered        %zu\n", s.unanswered);
  std::printf("degraded          %zu\n", s.degraded);
  if (s.hint_count > 0 || s.hint_missing > 0) {
    std::printf("429 retry hints   %zu parsed, %zu missing\n", s.hint_count,
                s.hint_missing);
    if (s.hint_count > 0) {
      std::printf("  hint ms min/p50/max  %.1f / %.1f / %.1f\n", s.hint_min,
                  s.hint_p50, s.hint_max);
    }
  }
  std::printf("latency(2xx) p50  %.2f ms\n", s.p50);
  std::printf("latency(2xx) p95  %.2f ms\n", s.p95);
  std::printf("latency(2xx) p99  %.2f ms\n", s.p99);
}

// --------------------------------------------------------- network mode --

bool SplitHostPort(const std::string& server, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = server.rfind(':');
  if (colon == std::string::npos || colon + 1 >= server.size()) return false;
  *host = server.substr(0, colon);
  *port = static_cast<std::uint16_t>(std::atoi(server.c_str() + colon + 1));
  return *port != 0;
}

/// Sends `len` bytes, looping over short writes. False on error (the chaos
/// target may have closed on us; that is its prerogative).
bool SendAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const std::ptrdiff_t n = grasp::net::WriteRetry(fd, data + off, len - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string BuildRequest(const Args& args,
                         const std::vector<std::string>& keywords) {
  std::string q;
  for (const std::string& kw : keywords) {
    if (!q.empty()) q += '+';
    q += kw;
  }
  std::string request = "GET /search?q=" + q +
                        "&k=" + std::to_string(args.k) + " HTTP/1.1\r\n";
  if (args.deadline_ms > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "X-Deadline-Ms: %.1f\r\n",
                  args.deadline_ms);
    request += buf;
  }
  request += "Connection: close\r\n\r\n";
  return request;
}

/// Parses the 429 retry hint from a response head: X-Retry-After-Ms
/// (fractional milliseconds) wins over the standard whole-second
/// Retry-After. Returns the hint in ms, or -1 when neither header parses —
/// an empty value, a non-numeric value, or a missing header all count as
/// "no hint".
double ParseRetryHintMs(const std::string& head) {
  std::string lower(head.size(), '\0');
  std::transform(head.begin(), head.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  auto header_value = [&](const char* name, double scale) -> double {
    const std::size_t len = std::strlen(name);
    std::size_t pos = 0;
    while ((pos = lower.find(name, pos)) != std::string::npos) {
      if (pos != 0 && lower[pos - 1] != '\n') {  // mid-line, e.g. body text
        pos += len;
        continue;
      }
      const char* start = head.c_str() + pos + len;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start || v < 0.0) return -1.0;  // present but unparsable
      return v * scale;
    }
    return -1.0;
  };
  const double ms = header_value("x-retry-after-ms:", 1.0);
  if (ms >= 0.0) return ms;
  return header_value("retry-after:", 1'000.0);
}

/// One request over one fresh connection; the worker thread's whole life.
Outcome RunNetRequest(const Args& args, const std::string& host,
                      std::uint16_t port, const std::string& request,
                      std::uint64_t seed) {
  Outcome outcome;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const auto start = std::chrono::steady_clock::now();
  auto fd_result = grasp::net::ConnectTcp(host, port);
  if (!fd_result.ok()) {
    outcome.kind = Outcome::Kind::kConnectFailed;
    return outcome;
  }
  grasp::net::OwnedFd fd = std::move(fd_result).value();

  // Chaos: mid-request disconnect (half the request, then gone) or
  // post-request disconnect (full request, never reads the answer — the
  // server must detect EPOLLRDHUP and cancel the in-flight query).
  const double roll = coin(rng);
  if (roll < args.chaos_disconnect) {
    const bool mid_request = roll < args.chaos_disconnect / 2.0;
    const std::size_t n = mid_request ? request.size() / 2 : request.size();
    SendAll(fd.get(), request.data(), n);
    outcome.kind = Outcome::Kind::kChaosKilled;
    return outcome;  // OwnedFd closes abruptly here
  }

  if (!SendAll(fd.get(), request.data(), request.size())) {
    outcome.kind = Outcome::Kind::kUnanswered;
    return outcome;
  }

  // Bound every read so a buggy server hangs the request, not the loadgen.
  timeval timeout{30, 0};
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  const bool slow_read = coin(rng) < args.chaos_slow_read;
  std::string response;
  char buf[4096];
  for (;;) {
    const std::size_t want = slow_read ? 16 : sizeof(buf);
    const std::ptrdiff_t n = grasp::net::ReadRetry(fd.get(), buf, want);
    if (n <= 0) break;  // EOF, reset, or receive timeout
    response.append(buf, static_cast<std::size_t>(n));
    if (slow_read) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          args.slow_read_delay_ms));
    }
  }
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) {
    outcome.kind = Outcome::Kind::kUnanswered;
    return outcome;
  }
  outcome.kind = Outcome::Kind::kAnswered;
  outcome.status = std::atoi(response.c_str() + 9);
  outcome.latency_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  outcome.degraded =
      response.find("\"degraded\":true") != std::string::npos;
  if (outcome.status == 429) {
    // Hint headers only; never scan the body (its retry_after_ms echo would
    // mask a server that forgot the real headers).
    const std::size_t blank = response.find("\r\n\r\n");
    outcome.retry_hint_ms = ParseRetryHintMs(
        blank == std::string::npos ? response : response.substr(0, blank));
  }
  return outcome;
}

std::vector<Outcome> RunNetworkWave(const Args& args, const std::string& host,
                                    std::uint16_t port, double qps,
                                    std::uint64_t seed_base) {
  const auto workload = grasp::datagen::DblpPerformanceWorkload();
  std::vector<Outcome> outcomes(args.requests);
  std::vector<std::thread> workers;
  workers.reserve(args.requests);
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(1.0 / qps);
  for (std::size_t i = 0; i < args.requests; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i)));
    workers.emplace_back([&args, &host, port, &outcomes, &workload, i,
                          seed_base] {
      const std::string request =
          BuildRequest(args, workload[i % workload.size()].keywords);
      outcomes[i] = RunNetRequest(args, host, port, request, seed_base + i);
    });
  }
  for (std::thread& t : workers) t.join();
  return outcomes;
}

// ----------------------------------------------------- /metrics scrape --

/// Fetches PATH over a fresh connection and returns the response body
/// (empty on any failure — the caller decides whether that is fatal).
std::string FetchBody(const std::string& host, std::uint16_t port,
                      const std::string& path) {
  auto fd_result = grasp::net::ConnectTcp(host, port);
  if (!fd_result.ok()) return "";
  grasp::net::OwnedFd fd = std::move(fd_result).value();
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd.get(), request.data(), request.size())) return "";
  timeval timeout{10, 0};
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string response;
  char buf[4096];
  for (;;) {
    const std::ptrdiff_t n = grasp::net::ReadRetry(fd.get(), buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t blank = response.find("\r\n\r\n");
  if (response.compare(0, 5, "HTTP/") != 0 || blank == std::string::npos) {
    return "";
  }
  return response.substr(blank + 4);
}

/// Nearest-rank percentile, in milliseconds, from a Prometheus cumulative
/// histogram in `body`: walks `NAME_bucket{...le="X"}  COUNT` lines for the
/// series whose label block contains `label_match`, in exposition order
/// (our renderer emits ascending `le`). Returns the upper edge of the rank
/// bucket; < 0 when the series is absent or empty.
double ServerPercentileMs(const std::string& body, const std::string& name,
                          const std::string& label_match, double p) {
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le_sec, cum)
  const std::string prefix = name + "_bucket{";
  std::size_t pos = 0;
  while ((pos = body.find(prefix, pos)) != std::string::npos) {
    if (pos != 0 && body[pos - 1] != '\n') {  // mid-line (e.g. HELP text)
      pos += prefix.size();
      continue;
    }
    const std::size_t eol = body.find('\n', pos);
    const std::string line =
        body.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos += prefix.size();
    if (label_match.empty() || line.find(label_match) != std::string::npos) {
      const std::size_t le = line.find("le=\"");
      const std::size_t brace = line.find('}');
      if (le == std::string::npos || brace == std::string::npos) continue;
      const std::string le_text = line.substr(le + 4);
      const double edge = le_text.compare(0, 4, "+Inf") == 0
                              ? std::numeric_limits<double>::infinity()
                              : std::atof(le_text.c_str());
      buckets.emplace_back(
          edge, static_cast<std::uint64_t>(std::atoll(
                    line.c_str() + brace + 1)));
    }
  }
  if (buckets.empty() || buckets.back().second == 0) return -1.0;
  const std::uint64_t count = buckets.back().second;
  const auto rank = static_cast<std::uint64_t>(std::min(
      static_cast<double>(count),
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count)))));
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].second >= rank) {
      // +Inf bucket: report the widest finite edge instead of infinity.
      if (std::isinf(buckets[i].first)) {
        return i > 0 ? buckets[i - 1].first * 1'000.0 : -1.0;
      }
      return buckets[i].first * 1'000.0;
    }
  }
  return -1.0;
}

// ------------------------------------------------------ in-process mode --

std::vector<Outcome> RunInProcess(const Args& args, QueryServer* server) {
  const auto workload = grasp::datagen::DblpPerformanceWorkload();
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(1.0 / args.qps);
  std::vector<std::future<QueryServer::Response>> futures;
  futures.reserve(args.requests);
  for (std::size_t i = 0; i < args.requests; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i)));
    QueryServer::Request request;
    request.query.keywords = workload[i % workload.size()].keywords;
    request.query.k = args.k;
    request.deadline_millis = args.deadline_ms;
    futures.push_back(server->Submit(std::move(request)));
  }

  std::vector<Outcome> outcomes;
  outcomes.reserve(futures.size());
  for (auto& f : futures) {
    const QueryServer::Response response = f.get();
    Outcome o;
    o.kind = Outcome::Kind::kAnswered;
    o.latency_ms = response.total_millis;
    o.degraded = response.degraded;
    switch (response.status.code()) {
      case grasp::StatusCode::kOk: o.status = 200; break;
      case grasp::StatusCode::kOverloaded:
        o.status = 429;
        // The in-process equivalent of the Retry-After headers; 0 marks a
        // terminal (draining) shed, which the HTTP layer would map to 503.
        if (response.retry_after_millis > 0.0) {
          o.retry_hint_ms = response.retry_after_millis;
        }
        break;
      case grasp::StatusCode::kDeadlineExceeded: o.status = 504; break;
      case grasp::StatusCode::kCancelled: o.status = 499; break;
      default: o.status = 500; break;
    }
    outcomes.push_back(o);
  }
  return outcomes;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: grasp_loadgen [--qps=N] [--requests=N] [--deadline-ms=MS]\n"
        "    [--k=N] [--fast-workers=N] [--deep-workers=N] "
        "[--queue-capacity=N]\n"
        "    [--json=PATH] [--assert-shed-min=RATE] "
        "[--assert-p99-max-ms=MS]\n"
        "    [--assert-no-unanswered] [--assert-server-p99-factor=F]\n"
        "  network mode:\n"
        "    --server=HOST:PORT [--chaos-disconnect=P] "
        "[--chaos-slow-read=P]\n"
        "    [--slow-read-delay-ms=MS] [--ramp=START_QPS:END_QPS:STEPS]\n");
    return 2;
  }

  // A chaos-killed connection means the server may close first; the
  // resulting EPIPE must stay an errno, not a process-killing signal.
  grasp::net::IgnoreSigpipe();

  std::vector<Outcome> outcomes;
  double shed_rate = 0.0;  // 429-equivalent rate over answered requests
  double deadline_hit_rate = 0.0, degraded_rate = 0.0;
  double server_p99_ms = -1.0;  // from /metrics; network mode only

  if (!args.server.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!SplitHostPort(args.server, &host, &port)) {
      std::fprintf(stderr, "bad --server (want HOST:PORT)\n");
      return 2;
    }
    if (args.ramp_steps > 0) {
      // QPS sweep: where does shedding start, and does p99 stay bounded
      // past that point? One wave per step, one summary line per wave.
      std::printf("%10s %8s %8s %8s %8s %10s %10s\n", "qps", "answered",
                  "s200", "s429", "unansw", "p50_ms", "p99_ms");
      for (std::size_t step = 0; step < args.ramp_steps; ++step) {
        const double qps =
            args.ramp_start + (args.ramp_end - args.ramp_start) *
                                  static_cast<double>(step) /
                                  static_cast<double>(args.ramp_steps - 1);
        std::vector<Outcome> wave =
            RunNetworkWave(args, host, port, qps, step * 1'000'000);
        const Summary s = Summarize(wave);
        std::printf("%10.0f %8zu %8zu %8zu %8zu %10.2f %10.2f\n", qps,
                    s.answered,
                    static_cast<std::size_t>(s.rate(200) *
                                             static_cast<double>(s.answered)),
                    static_cast<std::size_t>(s.rate(429) *
                                             static_cast<double>(s.answered)),
                    s.unanswered, s.p50, s.p99);
        outcomes.insert(outcomes.end(), wave.begin(), wave.end());
      }
    } else {
      outcomes = RunNetworkWave(args, host, port, args.qps, 1);
    }
    const Summary s = Summarize(outcomes);
    if (args.ramp_steps == 0) PrintSummary(s);
    shed_rate = s.rate(429);
    degraded_rate =
        s.answered > 0 ? static_cast<double>(s.degraded) /
                             static_cast<double>(s.answered)
                       : 0.0;

    // Scrape the server's own view of the run. The histogram reports the
    // upper edge of the rank bucket (<= 25% wide), so the comparison below
    // is conservative in the server's favor.
    const std::string metrics_body = FetchBody(host, port, "/metrics");
    if (metrics_body.empty()) {
      std::fprintf(stderr, "note: /metrics scrape failed\n");
    } else {
      server_p99_ms =
          ServerPercentileMs(metrics_body, "grasp_http_request_duration_seconds",
                             "class=\"2xx\"", 99.0);
      if (server_p99_ms >= 0.0) {
        std::printf("server   2xx p99  %.2f ms (from /metrics)\n",
                    server_p99_ms);
      }
    }
  } else {
    grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
    KeywordSearchEngine engine(dblp.store, dblp.dictionary);
    QueryServer::Options server_options;
    server_options.fast_workers = args.fast_workers;
    server_options.deep_workers = args.deep_workers;
    server_options.queue_capacity = args.queue_capacity;
    QueryServer server(engine, server_options);
    outcomes = RunInProcess(args, &server);
    server.Shutdown();

    const Summary s = Summarize(outcomes);
    PrintSummary(s);
    const QueryServer::Stats stats = server.stats();
    shed_rate = stats.submitted > 0
                    ? static_cast<double>(stats.shed) /
                          static_cast<double>(stats.submitted)
                    : 0.0;
    deadline_hit_rate =
        stats.completed > 0 ? static_cast<double>(stats.deadline_hit) /
                                  static_cast<double>(stats.completed)
                            : 0.0;
    degraded_rate =
        stats.completed > 0 ? static_cast<double>(stats.degraded) /
                                  static_cast<double>(stats.completed)
                            : 0.0;
    std::printf("deadline-hit rate %.1f%%\n", deadline_hit_rate * 100.0);
    std::printf("pops/ms estimate  %.1f\n", server.calibrator().pops_per_ms());
  }

  const Summary summary = Summarize(outcomes);
  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"executable\": \"grasp_loadgen\",\n"
                 "    \"mode\": \"%s\",\n"
                 "    \"qps\": %.1f,\n"
                 "    \"requests\": %zu,\n"
                 "    \"deadline_ms\": %.1f\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 args.server.empty() ? "inprocess" : "network", args.qps,
                 args.requests, args.deadline_ms);
    JsonEntry(f, "LG_ServeLatency/p50", summary.p50, "ms", false);
    JsonEntry(f, "LG_ServeLatency/p95", summary.p95, "ms", false);
    JsonEntry(f, "LG_ServeLatency/p99", summary.p99, "ms", false);
    JsonEntry(f, "LG_ShedRate", shed_rate, "ns", false);
    JsonEntry(f, "LG_DeadlineHitRate", deadline_hit_rate, "ns", false);
    JsonEntry(f, "LG_DegradedRate", degraded_rate, "ns", false);
    JsonEntry(f, "LG_ServerP99", std::max(server_p99_ms, 0.0), "ms", true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  // Smoke assertions: under deliberate overload the server must shed (not
  // collapse), completed latency must stay bounded, and — the drain
  // invariant — every fully-sent request must get an answer.
  int rc = 0;
  if (args.assert_shed_min >= 0.0 && shed_rate < args.assert_shed_min) {
    std::fprintf(stderr, "ASSERT FAILED: shed rate %.4f < %.4f\n", shed_rate,
                 args.assert_shed_min);
    rc = 1;
  }
  if (args.assert_p99_max_ms >= 0.0 && summary.p99 > args.assert_p99_max_ms) {
    std::fprintf(stderr, "ASSERT FAILED: p99 %.2f ms > %.2f ms\n", summary.p99,
                 args.assert_p99_max_ms);
    rc = 1;
  }
  if (args.assert_no_unanswered && summary.unanswered > 0) {
    std::fprintf(stderr, "ASSERT FAILED: %zu unanswered requests\n",
                 summary.unanswered);
    rc = 1;
  }
  // A 429 without a parsable retry hint is a protocol bug under the same
  // flag: the whole point of shedding is telling the client when to come
  // back. (Draining sheds are 503s, so they never trip this.)
  if (args.assert_no_unanswered && summary.hint_missing > 0) {
    std::fprintf(stderr,
                 "ASSERT FAILED: %zu 429 responses without a parsable "
                 "Retry-After/X-Retry-After-Ms hint\n",
                 summary.hint_missing);
    rc = 1;
  }
  if (args.assert_server_p99_factor >= 0.0) {
    if (server_p99_ms < 0.0) {
      if (summary.rate(200) > 0.0) {
        std::fprintf(stderr,
                     "ASSERT FAILED: no server-side 2xx latency histogram "
                     "despite 2xx responses\n");
        rc = 1;
      }
    } else {
      // The 1 ms floor keeps sub-millisecond runs (where one histogram
      // bucket dwarfs the client-side spread) from flaking the check.
      const double bound =
          args.assert_server_p99_factor * std::max(summary.p99, 1.0);
      if (server_p99_ms > bound) {
        std::fprintf(stderr,
                     "ASSERT FAILED: server p99 %.2f ms > %.2f (= %.1f x "
                     "client p99 %.2f ms)\n",
                     server_p99_ms, bound, args.assert_server_p99_factor,
                     summary.p99);
        rc = 1;
      }
    }
  }
  return rc;
}
