// Closed-form load generator for the deadline-aware serving layer: replays
// the DBLP performance workload against a QueryServer at a target QPS with
// open-loop arrivals (requests fire on schedule whether or not earlier ones
// finished — the arrival process does not secretly back off under overload,
// which is exactly the regime admission control exists for).
//
//   grasp_loadgen --qps=200 --requests=400 --deadline-ms=20
//   grasp_loadgen --qps=5000 --queue-capacity=8 --deep-workers=1 \
//       --assert-shed-min=0.01 --assert-p99-max-ms=500 --json=loadgen.json
//
// Reports p50/p95/p99 end-to-end latency, shed rate, deadline-hit rate and
// degraded rate; --json writes them as google-benchmark-shaped entries so
// scripts/bench_merge.py can fold them into BENCH_exploration.json and the
// trend checker tracks them like any other benchmark. The --assert-* flags
// turn the binary into a CI overload smoke test: nonzero exit when the
// server collapses (p99 blows up) instead of shedding.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "serve/admission.h"

namespace {

using grasp::core::KeywordSearchEngine;
using grasp::serve::QueryServer;

struct Args {
  double qps = 100.0;
  std::size_t requests = 200;
  double deadline_ms = 50.0;
  std::size_t k = 5;
  std::size_t fast_workers = 1;
  std::size_t deep_workers = 2;
  std::size_t queue_capacity = 32;
  std::string json_path;
  double assert_shed_min = -1.0;    // < 0: no assertion
  double assert_p99_max_ms = -1.0;  // < 0: no assertion
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--qps=")) {
      args->qps = std::atof(v);
    } else if (const char* v = value("--requests=")) {
      args->requests = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deadline-ms=")) {
      args->deadline_ms = std::atof(v);
    } else if (const char* v = value("--k=")) {
      args->k = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--fast-workers=")) {
      args->fast_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--deep-workers=")) {
      args->deep_workers = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--queue-capacity=")) {
      args->queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--json=")) {
      args->json_path = v;
    } else if (const char* v = value("--assert-shed-min=")) {
      args->assert_shed_min = std::atof(v);
    } else if (const char* v = value("--assert-p99-max-ms=")) {
      args->assert_p99_max_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return args->qps > 0.0 && args->requests > 0;
}

/// Nearest-rank percentile of a sorted sample (p in [0, 100]).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(1.0, rank)) - 1);
  return sorted[idx];
}

/// One google-benchmark-shaped entry; `unit` is "ms" for latencies and "ns"
/// for dimensionless rates (the trend checker only needs consistency with
/// itself run-over-run).
void JsonEntry(std::FILE* f, const char* name, double value, const char* unit,
               bool last) {
  std::fprintf(f,
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"run_type\": \"iteration\",\n"
               "      \"iterations\": 1,\n"
               "      \"real_time\": %.6f,\n"
               "      \"cpu_time\": %.6f,\n"
               "      \"time_unit\": \"%s\"\n"
               "    }%s\n",
               name, value, value, unit, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: grasp_loadgen [--qps=N] [--requests=N] [--deadline-ms=MS]\n"
        "    [--k=N] [--fast-workers=N] [--deep-workers=N] "
        "[--queue-capacity=N]\n"
        "    [--json=PATH] [--assert-shed-min=RATE] "
        "[--assert-p99-max-ms=MS]\n");
    return 2;
  }

  grasp::bench::Dataset dblp = grasp::bench::MakeDblp();
  KeywordSearchEngine engine(dblp.store, dblp.dictionary);
  const auto workload = grasp::datagen::DblpPerformanceWorkload();
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  QueryServer::Options server_options;
  server_options.fast_workers = args.fast_workers;
  server_options.deep_workers = args.deep_workers;
  server_options.queue_capacity = args.queue_capacity;
  QueryServer server(engine, server_options);

  // Open-loop arrivals: request i is due at start + i/qps, regardless of
  // how the previous ones fared. The submitting loop itself must never be
  // the bottleneck, so responses are only collected afterwards.
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(1.0 / args.qps);
  std::vector<std::future<QueryServer::Response>> futures;
  futures.reserve(args.requests);
  for (std::size_t i = 0; i < args.requests; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i)));
    QueryServer::Request request;
    request.query.keywords = workload[i % workload.size()].keywords;
    request.query.k = args.k;
    request.deadline_millis = args.deadline_ms;
    futures.push_back(server.Submit(std::move(request)));
  }

  std::vector<double> latencies;  // completed requests, end-to-end ms
  latencies.reserve(futures.size());
  std::size_t empty_degraded = 0;
  for (auto& f : futures) {
    const QueryServer::Response response = f.get();
    if (response.status.ok()) {
      latencies.push_back(response.total_millis);
      if (response.degraded && response.result.queries.empty()) {
        ++empty_degraded;
      }
    }
  }
  server.Shutdown();

  const QueryServer::Stats stats = server.stats();
  const double submitted = static_cast<double>(stats.submitted);
  const double shed_rate =
      submitted > 0 ? static_cast<double>(stats.shed) / submitted : 0.0;
  const double deadline_hit_rate =
      stats.completed > 0
          ? static_cast<double>(stats.deadline_hit) /
                static_cast<double>(stats.completed)
          : 0.0;
  const double degraded_rate =
      stats.completed > 0 ? static_cast<double>(stats.degraded) /
                                static_cast<double>(stats.completed)
                          : 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 50.0);
  const double p95 = Percentile(latencies, 95.0);
  const double p99 = Percentile(latencies, 99.0);

  std::printf("requests          %llu\n",
              static_cast<unsigned long long>(stats.submitted));
  std::printf("admitted          %llu\n",
              static_cast<unsigned long long>(stats.admitted));
  std::printf("shed              %llu (%.1f%%)\n",
              static_cast<unsigned long long>(stats.shed), shed_rate * 100.0);
  std::printf("completed         %llu\n",
              static_cast<unsigned long long>(stats.completed));
  std::printf("degraded          %llu (%.1f%% of completed)\n",
              static_cast<unsigned long long>(stats.degraded),
              degraded_rate * 100.0);
  std::printf("empty degraded    %zu\n", empty_degraded);
  std::printf("expired in queue  %llu\n",
              static_cast<unsigned long long>(stats.expired_in_queue));
  std::printf("deadline-hit rate %.1f%%\n", deadline_hit_rate * 100.0);
  std::printf("latency p50       %.2f ms\n", p50);
  std::printf("latency p95       %.2f ms\n", p95);
  std::printf("latency p99       %.2f ms\n", p99);
  std::printf("pops/ms estimate  %.1f\n", server.calibrator().pops_per_ms());

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"executable\": \"grasp_loadgen\",\n"
                 "    \"qps\": %.1f,\n"
                 "    \"requests\": %zu,\n"
                 "    \"deadline_ms\": %.1f\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 args.qps, args.requests, args.deadline_ms);
    JsonEntry(f, "LG_ServeLatency/p50", p50, "ms", false);
    JsonEntry(f, "LG_ServeLatency/p95", p95, "ms", false);
    JsonEntry(f, "LG_ServeLatency/p99", p99, "ms", false);
    JsonEntry(f, "LG_ShedRate", shed_rate, "ns", false);
    JsonEntry(f, "LG_DeadlineHitRate", deadline_hit_rate, "ns", false);
    JsonEntry(f, "LG_DegradedRate", degraded_rate, "ns", true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  // Overload smoke assertions: under deliberate overload the server must
  // shed (not collapse) and completed requests must stay bounded.
  int rc = 0;
  if (args.assert_shed_min >= 0.0 && shed_rate < args.assert_shed_min) {
    std::fprintf(stderr, "ASSERT FAILED: shed rate %.4f < %.4f\n", shed_rate,
                 args.assert_shed_min);
    rc = 1;
  }
  if (args.assert_p99_max_ms >= 0.0 && p99 > args.assert_p99_max_ms) {
    std::fprintf(stderr, "ASSERT FAILED: p99 %.2f ms > %.2f ms\n", p99,
                 args.assert_p99_max_ms);
    rc = 1;
  }
  return rc;
}
