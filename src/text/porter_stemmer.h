#ifndef GRASP_TEXT_PORTER_STEMMER_H_
#define GRASP_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace grasp::text {

/// Stems an English word with the classic Porter (1980) algorithm, the same
/// stemmer standard IR engines (Lucene) ship. Input must be lower-case ASCII;
/// words shorter than 3 characters are returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace grasp::text

#endif  // GRASP_TEXT_PORTER_STEMMER_H_
