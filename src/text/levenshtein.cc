#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace grasp::text {

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  return BoundedLevenshtein(a, b, std::max(a.size(), b.size()));
}

std::size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                               std::size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t m = a.size(), n = b.size();
  if (n - m > limit) return limit + 1;
  if (m == 0) return n;

  // One-row DP with a band of width 2*limit+1.
  std::vector<std::size_t> row(m + 1);
  for (std::size_t i = 0; i <= m; ++i) row[i] = i;
  for (std::size_t j = 1; j <= n; ++j) {
    std::size_t prev_diag = row[0];  // dp[j-1][0]
    row[0] = j;
    std::size_t row_min = row[0];
    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t up = row[i];  // dp[j-1][i]
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i - 1] + 1, up + 1, prev_diag + cost});
      prev_diag = up;
      row_min = std::min(row_min, row[i]);
    }
    if (row_min > limit) return limit + 1;
  }
  return row[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const std::size_t dist = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace grasp::text
