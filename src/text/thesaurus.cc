#include "text/thesaurus.h"

#include "common/string_util.h"
#include "text/porter_stemmer.h"

namespace grasp::text {

std::string Thesaurus::Normalize(std::string_view term) {
  return PorterStem(ToLower(term));
}

void Thesaurus::AddDirected(std::string normalized_from,
                            std::string normalized_to, Relation relation,
                            double weight) {
  if (normalized_from == normalized_to) return;
  auto& entries = related_[std::move(normalized_from)];
  for (Entry& e : entries) {
    if (e.term == normalized_to) {
      if (weight > e.weight) {
        e.weight = weight;
        e.relation = relation;
      }
      return;
    }
  }
  entries.push_back(Entry{std::move(normalized_to), relation, weight});
}

void Thesaurus::AddSynonym(std::string_view a, std::string_view b,
                           double weight) {
  std::string na = Normalize(a), nb = Normalize(b);
  AddDirected(na, nb, Relation::kSynonym, weight);
  AddDirected(std::move(nb), std::move(na), Relation::kSynonym, weight);
}

void Thesaurus::AddHypernym(std::string_view narrow, std::string_view broad,
                            double weight) {
  std::string nn = Normalize(narrow), nb = Normalize(broad);
  AddDirected(nn, nb, Relation::kHypernym, weight);
  AddDirected(std::move(nb), std::move(nn), Relation::kHyponym, weight);
}

std::vector<Thesaurus::Entry> Thesaurus::Lookup(std::string_view term) const {
  auto it = related_.find(Normalize(term));
  if (it == related_.end()) return {};
  return it->second;
}

Thesaurus Thesaurus::BuiltIn() {
  Thesaurus t;
  // Bibliographic domain (DBLP-like). Mirrors WordNet's *direct* (one-hop)
  // relations only; multi-hop connections go through the intermediate term,
  // as in the real lexicon. Notably, neither "article" nor "journal" has a
  // direct WordNet edge to "publication" — adding one lets a single popular
  // class node absorb whole keyword queries and drown the exact
  // interpretations.
  t.AddSynonym("publication", "paper");
  t.AddSynonym("paper", "article");
  t.AddSynonym("author", "writer");
  t.AddSynonym("author", "creator");
  t.AddSynonym("researcher", "scientist");
  t.AddSynonym("institute", "institution");
  t.AddSynonym("institute", "organization");
  t.AddSynonym("organization", "organisation");
  t.AddSynonym("conference", "venue");
  t.AddSynonym("conference", "proceedings");
  t.AddSynonym("journal", "periodical");
  t.AddSynonym("year", "date");
  t.AddSynonym("cite", "reference");
  t.AddSynonym("advisor", "supervisor");
  t.AddHypernym("periodical", "publication");
  t.AddHypernym("researcher", "person");
  t.AddHypernym("author", "person");
  t.AddHypernym("institute", "agent");
  t.AddHypernym("person", "agent");

  // University domain (LUBM-like).
  t.AddSynonym("university", "college");
  t.AddSynonym("professor", "prof");
  t.AddSynonym("professor", "faculty");
  t.AddSynonym("student", "pupil");
  t.AddSynonym("course", "lecture");
  t.AddSynonym("department", "dept");
  t.AddSynonym("work", "employment");
  t.AddSynonym("teach", "instruct");
  t.AddHypernym("professor", "person");
  t.AddHypernym("student", "person");
  t.AddHypernym("university", "organization");
  t.AddHypernym("department", "organization");

  // Encyclopedic domain (TAP-like).
  t.AddSynonym("player", "athlete");
  t.AddSynonym("team", "club");
  t.AddSynonym("song", "track");
  t.AddSynonym("album", "record");
  t.AddSynonym("film", "movie");
  t.AddSynonym("city", "town");
  t.AddSynonym("country", "nation");
  t.AddSynonym("place", "location");
  t.AddSynonym("sport", "game");
  t.AddSynonym("musician", "artist");
  t.AddHypernym("city", "place");
  t.AddHypernym("country", "place");
  t.AddHypernym("musician", "person");
  t.AddHypernym("athlete", "person");
  return t;
}

}  // namespace grasp::text
