#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "text/levenshtein.h"

namespace grasp::text {

InvertedIndex::TermIdx InvertedIndex::InternTerm(const std::string& term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  const TermIdx idx = static_cast<TermIdx>(building_terms_.size());
  term_ids_.emplace(term, idx);
  building_terms_.push_back(term);
  building_postings_.emplace_back();
  return idx;
}

InvertedIndex::DocId InvertedIndex::AddDocument(std::string_view label) {
  GRASP_CHECK(!finalized_) << "AddDocument after Finalize";
  const DocId doc = static_cast<DocId>(building_doc_term_counts_.size());
  std::vector<std::string> terms = Analyze(label, analyzer_options_);
  // The label length used by the coverage factor excludes the synthetic
  // compound term, which exists only as an extra way to hit the label.
  AnalyzerOptions without_compound = analyzer_options_;
  without_compound.emit_compound = false;
  building_doc_term_counts_.push_back(static_cast<std::uint32_t>(
      Analyze(label, without_compound).size()));
  // Aggregate term frequencies within the label.
  std::sort(terms.begin(), terms.end());
  for (std::size_t i = 0; i < terms.size();) {
    std::size_t j = i;
    while (j < terms.size() && terms[j] == terms[i]) ++j;
    const TermIdx idx = InternTerm(terms[i]);
    building_postings_[idx].push_back(
        Posting{doc, static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return doc;
}

InvertedIndex InvertedIndex::FromSnapshotParts(
    AnalyzerOptions analyzer_options, FlatStorage<std::uint32_t> term_offsets,
    FlatStorage<char> term_blob, FlatStorage<std::uint32_t> sorted_terms,
    FlatStorage<std::uint32_t> posting_offsets, FlatStorage<Posting> postings,
    FlatStorage<std::uint32_t> doc_term_counts) {
  GRASP_CHECK_EQ(term_offsets.size(), posting_offsets.size());
  GRASP_CHECK_EQ(sorted_terms.size() + 1, term_offsets.size());
  InvertedIndex index(analyzer_options);
  index.term_offsets_ = std::move(term_offsets);
  index.term_blob_ = std::move(term_blob);
  index.sorted_terms_ = std::move(sorted_terms);
  index.posting_offsets_ = std::move(posting_offsets);
  index.postings_ = std::move(postings);
  index.doc_term_counts_ = std::move(doc_term_counts);
  index.finalized_ = true;
  index.BuildLengthBuckets();
  return index;
}

void InvertedIndex::BuildLengthBuckets() {
  const std::size_t vocab = vocabulary_size();
  std::size_t max_len = 0;
  for (TermIdx t = 0; t < vocab; ++t) {
    max_len = std::max(max_len, TermText(t).size());
  }
  length_buckets_.assign(max_len + 1, {});
  for (TermIdx t = 0; t < vocab; ++t) {
    length_buckets_[TermText(t).size()].push_back(t);
  }
}

void InvertedIndex::Finalize() {
  if (finalized_) return;
  // Flatten the vocabulary into blob + offsets + sorted permutation, and
  // the per-term postings into one CSR array. Lookups then binary-search /
  // scan contiguous memory, and a snapshot can serialize (and mmap back)
  // every array without per-term indirection.
  const std::size_t vocab = building_terms_.size();
  std::vector<std::uint32_t> term_offsets(vocab + 1, 0);
  std::size_t blob_bytes = 0;
  for (const std::string& t : building_terms_) blob_bytes += t.size();
  GRASP_CHECK_LE(blob_bytes, static_cast<std::size_t>(UINT32_MAX));
  std::vector<char> blob;
  blob.reserve(blob_bytes);
  for (TermIdx t = 0; t < vocab; ++t) {
    term_offsets[t] = static_cast<std::uint32_t>(blob.size());
    blob.insert(blob.end(), building_terms_[t].begin(),
                building_terms_[t].end());
  }
  term_offsets[vocab] = static_cast<std::uint32_t>(blob.size());

  std::vector<std::uint32_t> sorted(vocab);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::sort(sorted.begin(), sorted.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return building_terms_[a] < building_terms_[b];
            });

  std::vector<std::uint32_t> posting_offsets(vocab + 1, 0);
  std::size_t total = 0;
  for (const auto& plist : building_postings_) total += plist.size();
  GRASP_CHECK_LE(total, static_cast<std::size_t>(UINT32_MAX));
  std::vector<Posting> flat;
  flat.reserve(total);
  for (TermIdx t = 0; t < building_postings_.size(); ++t) {
    posting_offsets[t] = static_cast<std::uint32_t>(flat.size());
    flat.insert(flat.end(), building_postings_[t].begin(),
                building_postings_[t].end());
  }
  posting_offsets[vocab] = static_cast<std::uint32_t>(flat.size());

  term_offsets_ = FlatStorage<std::uint32_t>(std::move(term_offsets));
  term_blob_ = FlatStorage<char>(std::move(blob));
  sorted_terms_ = FlatStorage<std::uint32_t>(std::move(sorted));
  posting_offsets_ = FlatStorage<std::uint32_t>(std::move(posting_offsets));
  postings_ = FlatStorage<Posting>(std::move(flat));
  doc_term_counts_ =
      FlatStorage<std::uint32_t>(std::move(building_doc_term_counts_));
  term_ids_.clear();
  building_terms_.clear();
  building_terms_.shrink_to_fit();
  building_postings_.clear();
  building_postings_.shrink_to_fit();
  building_doc_term_counts_.clear();
  building_doc_term_counts_.shrink_to_fit();
  finalized_ = true;
  BuildLengthBuckets();
}

InvertedIndex::TermIdx InvertedIndex::ExactTerm(std::string_view token) const {
  const auto begin = sorted_terms_.begin();
  const auto end = sorted_terms_.end();
  auto it = std::lower_bound(begin, end, token,
                             [this](TermIdx term, std::string_view t) {
                               return TermText(term) < t;
                             });
  if (it != end && TermText(*it) == token) return *it;
  return static_cast<TermIdx>(vocabulary_size());
}

double InvertedIndex::TermWeight(TermIdx term,
                                 const SearchOptions& options) const {
  if (!options.use_idf) return 1.0;
  const double n = static_cast<double>(std::max<std::size_t>(1, num_documents()));
  const double df = static_cast<double>(PostingsOf(term).size());
  // Mild IDF in (0.5, 1]: discriminative terms score higher without letting
  // frequency dominate the syntactic/semantic similarity.
  const double idf = std::log(1.0 + n / df) / std::log(1.0 + n);
  return 0.5 + 0.5 * idf;
}

void InvertedIndex::CollectCandidates(const std::string& token,
                                      const SearchOptions& options,
                                      std::vector<Candidate>* candidates) const {
  const TermIdx absent = static_cast<TermIdx>(vocabulary_size());
  auto add = [&](TermIdx term, double similarity) {
    if (similarity < options.min_similarity) return;
    for (Candidate& c : *candidates) {
      if (c.term == term) {
        c.similarity = std::max(c.similarity, similarity);
        return;
      }
    }
    candidates->push_back(Candidate{term, similarity});
  };

  // 1) Exact vocabulary match.
  const TermIdx exact = ExactTerm(token);
  if (exact != absent) add(exact, 1.0);

  // 2) Semantic expansion via the thesaurus (WordNet stand-in).
  if (options.thesaurus != nullptr) {
    for (const Thesaurus::Entry& entry : options.thesaurus->Lookup(token)) {
      const TermIdx term = ExactTerm(entry.term);
      if (term != absent) add(term, entry.weight);
    }
  }

  // 3) Syntactic (fuzzy) matching over the vocabulary, banded by length.
  if (options.fuzzy && !token.empty()) {
    const std::size_t len = token.size();
    const std::size_t max_dist =
        std::min(options.max_edit_distance, len / 3);
    if (max_dist > 0) {
      const std::size_t lo = len > max_dist ? len - max_dist : 1;
      const std::size_t hi =
          std::min(length_buckets_.empty() ? 0 : length_buckets_.size() - 1,
                   len + max_dist);
      for (std::size_t l = lo; l <= hi; ++l) {
        for (TermIdx term : length_buckets_[l]) {
          const std::size_t dist =
              BoundedLevenshtein(token, TermText(term), max_dist);
          if (dist == 0 || dist > max_dist) continue;
          const double sim =
              1.0 - static_cast<double>(dist) /
                        static_cast<double>(std::max(len, l));
          add(term, sim);
        }
      }
    }
  }
}

std::vector<InvertedIndex::Hit> InvertedIndex::Search(
    std::string_view keyword, const SearchOptions& options) const {
  GRASP_CHECK(finalized_) << "Search before Finalize";
  // Queries never emit the synthetic compound term: it would dilute the
  // per-token average for multi-word keywords. Compounds exist on the
  // document side only, where single-word queries can still hit them.
  AnalyzerOptions query_options = analyzer_options_;
  query_options.emit_compound = false;
  const std::vector<std::string> tokens = Analyze(keyword, query_options);
  if (tokens.empty()) return {};

  // doc -> (summed best-per-token score, number of matched tokens).
  struct DocScore {
    double sum = 0.0;
    std::uint32_t matched = 0;
  };
  std::unordered_map<DocId, DocScore> scores;
  std::vector<Candidate> candidates;
  std::unordered_map<DocId, double> token_best;
  for (const std::string& token : tokens) {
    candidates.clear();
    CollectCandidates(token, options, &candidates);
    token_best.clear();
    for (const Candidate& c : candidates) {
      const double weight = c.similarity * TermWeight(c.term, options);
      for (const Posting& p : PostingsOf(c.term)) {
        double& best = token_best[p.doc];
        best = std::max(best, weight);
      }
    }
    for (const auto& [doc, best] : token_best) {
      DocScore& ds = scores[doc];
      ds.sum += best;
      ++ds.matched;
    }
  }

  std::vector<Hit> hits;
  hits.reserve(scores.size());
  const double denom = static_cast<double>(tokens.size());
  for (const auto& [doc, ds] : scores) {
    // The relevance filter uses the raw per-token average; the coverage
    // factor then discounts hits that touch only a fraction of a long label
    // so that e.g. a three-word title outranks a six-word one for the same
    // single-keyword hit.
    const double raw = ds.sum / denom;
    if (raw >= options.min_similarity || (tokens.size() > 1 && raw > 0.0)) {
      double score = raw;
      if (options.length_normalize) {
        const double label_len = static_cast<double>(
            std::max<std::uint32_t>(1, doc_term_counts_[doc]));
        score *= std::min(
            1.0, std::sqrt(static_cast<double>(ds.matched) / label_len));
      }
      hits.push_back(Hit{doc, std::min(1.0, score)});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (options.max_results > 0 && hits.size() > options.max_results) {
    hits.resize(options.max_results);
  }
  return hits;
}

std::size_t InvertedIndex::MemoryUsageBytes() const {
  std::size_t bytes = 0;
  for (const std::string& t : building_terms_) {
    bytes += sizeof(std::string) + t.capacity();
  }
  bytes += term_ids_.size() * (sizeof(TermIdx) + 2 * sizeof(void*) + 16);
  for (const auto& plist : building_postings_) {
    bytes += sizeof(plist) + plist.capacity() * sizeof(Posting);
  }
  bytes += building_doc_term_counts_.capacity() * sizeof(std::uint32_t);
  bytes += term_offsets_.OwnedBytes() + term_blob_.OwnedBytes() +
           sorted_terms_.OwnedBytes() + posting_offsets_.OwnedBytes() +
           postings_.OwnedBytes() + doc_term_counts_.OwnedBytes();
  for (const auto& bucket : length_buckets_) {
    bytes += sizeof(bucket) + bucket.capacity() * sizeof(TermIdx);
  }
  return bytes;
}

}  // namespace grasp::text
