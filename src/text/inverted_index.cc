#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "common/logging.h"
#include "simd/kernels.h"
#include "text/levenshtein.h"

namespace grasp::text {
namespace {

// The postings kernel reads Posting runs as interleaved (doc, tf) uint32
// records; pin the layout it assumes.
static_assert(sizeof(InvertedIndex::Posting) == 2 * sizeof(std::uint32_t));
static_assert(offsetof(InvertedIndex::Posting, doc) == 0);
static_assert(offsetof(InvertedIndex::Posting, tf) == sizeof(std::uint32_t));

// 32-bit character-presence signature for the fuzzy prefilter: bit
// 1u << (c & 31) per byte. Folding distinct characters into one class only
// weakens the derived edit-distance lower bound, never strengthens it.
std::uint32_t CharSignature(std::string_view text) {
  std::uint32_t sig = 0;
  for (const char c : text) {
    sig |= 1u << (static_cast<unsigned char>(c) & 31);
  }
  return sig;
}

}  // namespace

InvertedIndex::TermIdx InvertedIndex::InternTerm(const std::string& term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  const TermIdx idx = static_cast<TermIdx>(building_terms_.size());
  term_ids_.emplace(term, idx);
  building_terms_.push_back(term);
  building_postings_.emplace_back();
  return idx;
}

InvertedIndex::DocId InvertedIndex::AddDocument(std::string_view label) {
  GRASP_CHECK(!finalized_) << "AddDocument after Finalize";
  const DocId doc = static_cast<DocId>(building_doc_term_counts_.size());
  std::vector<std::string> terms = Analyze(label, analyzer_options_);
  // The label length used by the coverage factor excludes the synthetic
  // compound term, which exists only as an extra way to hit the label.
  AnalyzerOptions without_compound = analyzer_options_;
  without_compound.emit_compound = false;
  building_doc_term_counts_.push_back(static_cast<std::uint32_t>(
      Analyze(label, without_compound).size()));
  // Aggregate term frequencies within the label.
  std::sort(terms.begin(), terms.end());
  for (std::size_t i = 0; i < terms.size();) {
    std::size_t j = i;
    while (j < terms.size() && terms[j] == terms[i]) ++j;
    const TermIdx idx = InternTerm(terms[i]);
    building_postings_[idx].push_back(
        Posting{doc, static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return doc;
}

InvertedIndex InvertedIndex::FromSnapshotParts(
    AnalyzerOptions analyzer_options, FlatStorage<std::uint32_t> term_offsets,
    FlatStorage<char> term_blob, FlatStorage<std::uint32_t> sorted_terms,
    FlatStorage<std::uint32_t> posting_offsets, FlatStorage<Posting> postings,
    FlatStorage<std::uint32_t> doc_term_counts,
    FlatStorage<std::uint32_t> bucket_offsets,
    FlatStorage<std::uint32_t> bucket_terms) {
  GRASP_CHECK_EQ(term_offsets.size(), posting_offsets.size());
  GRASP_CHECK_EQ(sorted_terms.size() + 1, term_offsets.size());
  GRASP_CHECK_EQ(bucket_terms.size() + 1, term_offsets.size());
  InvertedIndex index(analyzer_options);
  index.term_offsets_ = std::move(term_offsets);
  index.term_blob_ = std::move(term_blob);
  index.sorted_terms_ = std::move(sorted_terms);
  index.posting_offsets_ = std::move(posting_offsets);
  index.postings_ = std::move(postings);
  index.doc_term_counts_ = std::move(doc_term_counts);
  index.bucket_offsets_ = std::move(bucket_offsets);
  index.bucket_terms_ = std::move(bucket_terms);
  index.finalized_ = true;
  index.BuildBucketPrefilter();
  return index;
}

void InvertedIndex::BuildLengthBuckets() {
  // Counting sort of term indexes by term length into CSR form; iterating
  // term indexes in ascending order keeps each bucket's terms ascending.
  const std::size_t vocab = vocabulary_size();
  std::size_t max_len = 0;
  for (TermIdx t = 0; t < vocab; ++t) {
    max_len = std::max(max_len, TermText(t).size());
  }
  AlignedVector<std::uint32_t> offsets(max_len + 2, 0);
  for (TermIdx t = 0; t < vocab; ++t) {
    ++offsets[TermText(t).size() + 1];
  }
  for (std::size_t l = 0; l + 1 < offsets.size(); ++l) {
    offsets[l + 1] += offsets[l];
  }
  AlignedVector<std::uint32_t> terms(vocab);
  std::vector<std::uint32_t> fill(offsets.begin(), offsets.end() - 1);
  for (TermIdx t = 0; t < vocab; ++t) {
    terms[fill[TermText(t).size()]++] = t;
  }
  bucket_offsets_ = FlatStorage<std::uint32_t>(std::move(offsets));
  bucket_terms_ = FlatStorage<std::uint32_t>(std::move(terms));
  BuildBucketPrefilter();
}

void InvertedIndex::BuildBucketPrefilter() {
  // Per-term boundary bytes and character signatures, in bucket_terms_
  // order so the fuzzy sweep reads all three arrays contiguously. Cheap to
  // derive, so snapshots store only the CSR buckets.
  const std::size_t vocab = bucket_terms_.size();
  bucket_first_.assign(vocab, 0);
  bucket_last_.assign(vocab, 0);
  bucket_sigs_.assign(vocab, 0);
  for (std::size_t i = 0; i < vocab; ++i) {
    const std::string_view text = TermText(bucket_terms_[i]);
    if (text.empty()) continue;
    bucket_first_[i] = static_cast<unsigned char>(text.front());
    bucket_last_[i] = static_cast<unsigned char>(text.back());
    bucket_sigs_[i] = CharSignature(text);
  }
}

void InvertedIndex::Finalize() {
  if (finalized_) return;
  // Flatten the vocabulary into blob + offsets + sorted permutation, and
  // the per-term postings into one CSR array. Lookups then binary-search /
  // scan contiguous memory, and a snapshot can serialize (and mmap back)
  // every array without per-term indirection.
  const std::size_t vocab = building_terms_.size();
  AlignedVector<std::uint32_t> term_offsets(vocab + 1, 0);
  std::size_t blob_bytes = 0;
  for (const std::string& t : building_terms_) blob_bytes += t.size();
  GRASP_CHECK_LE(blob_bytes, static_cast<std::size_t>(UINT32_MAX));
  AlignedVector<char> blob;
  blob.reserve(blob_bytes);
  for (TermIdx t = 0; t < vocab; ++t) {
    term_offsets[t] = static_cast<std::uint32_t>(blob.size());
    blob.insert(blob.end(), building_terms_[t].begin(),
                building_terms_[t].end());
  }
  term_offsets[vocab] = static_cast<std::uint32_t>(blob.size());

  AlignedVector<std::uint32_t> sorted(vocab);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::sort(sorted.begin(), sorted.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return building_terms_[a] < building_terms_[b];
            });

  AlignedVector<std::uint32_t> posting_offsets(vocab + 1, 0);
  std::size_t total = 0;
  for (const auto& plist : building_postings_) total += plist.size();
  GRASP_CHECK_LE(total, static_cast<std::size_t>(UINT32_MAX));
  AlignedVector<Posting> flat;
  flat.reserve(total);
  for (TermIdx t = 0; t < building_postings_.size(); ++t) {
    posting_offsets[t] = static_cast<std::uint32_t>(flat.size());
    flat.insert(flat.end(), building_postings_[t].begin(),
                building_postings_[t].end());
  }
  posting_offsets[vocab] = static_cast<std::uint32_t>(flat.size());

  term_offsets_ = FlatStorage<std::uint32_t>(std::move(term_offsets));
  term_blob_ = FlatStorage<char>(std::move(blob));
  sorted_terms_ = FlatStorage<std::uint32_t>(std::move(sorted));
  posting_offsets_ = FlatStorage<std::uint32_t>(std::move(posting_offsets));
  postings_ = FlatStorage<Posting>(std::move(flat));
  doc_term_counts_ =
      FlatStorage<std::uint32_t>(std::move(building_doc_term_counts_));
  term_ids_.clear();
  building_terms_.clear();
  building_terms_.shrink_to_fit();
  building_postings_.clear();
  building_postings_.shrink_to_fit();
  building_doc_term_counts_.clear();
  building_doc_term_counts_.shrink_to_fit();
  finalized_ = true;
  BuildLengthBuckets();
}

InvertedIndex::TermIdx InvertedIndex::ExactTerm(std::string_view token) const {
  const auto begin = sorted_terms_.begin();
  const auto end = sorted_terms_.end();
  auto it = std::lower_bound(begin, end, token,
                             [this](TermIdx term, std::string_view t) {
                               return TermText(term) < t;
                             });
  if (it != end && TermText(*it) == token) return *it;
  return static_cast<TermIdx>(vocabulary_size());
}

double InvertedIndex::TermWeight(TermIdx term,
                                 const SearchOptions& options) const {
  if (!options.use_idf) return 1.0;
  const double n = static_cast<double>(std::max<std::size_t>(1, num_documents()));
  const double df = static_cast<double>(PostingsOf(term).size());
  // Mild IDF in (0.5, 1]: discriminative terms score higher without letting
  // frequency dominate the syntactic/semantic similarity.
  const double idf = std::log(1.0 + n / df) / std::log(1.0 + n);
  return 0.5 + 0.5 * idf;
}

void InvertedIndex::CollectCandidates(const std::string& token,
                                      const SearchOptions& options,
                                      SearchScratch* scratch) const {
  std::vector<Candidate>* candidates = &scratch->candidates;
  const TermIdx absent = static_cast<TermIdx>(vocabulary_size());
  auto add = [&](TermIdx term, double similarity) {
    if (similarity < options.min_similarity) return;
    for (Candidate& c : *candidates) {
      if (c.term == term) {
        c.similarity = std::max(c.similarity, similarity);
        return;
      }
    }
    candidates->push_back(Candidate{term, similarity});
  };

  // 1) Exact vocabulary match.
  const TermIdx exact = ExactTerm(token);
  if (exact != absent) add(exact, 1.0);

  // 2) Semantic expansion via the thesaurus (WordNet stand-in).
  if (options.thesaurus != nullptr) {
    for (const Thesaurus::Entry& entry : options.thesaurus->Lookup(token)) {
      const TermIdx term = ExactTerm(entry.term);
      if (term != absent) add(term, entry.weight);
    }
  }

  // 3) Syntactic (fuzzy) matching over the vocabulary, banded by length.
  // The length band [lo, hi] is one contiguous run of the CSR bucket array,
  // so one kernel sweep over the per-term prefilter arrays rejects the bulk
  // of the band on conservative edit-distance lower bounds, and only the
  // survivors pay for banded-Levenshtein DP. The prefilter never drops a
  // true candidate (every bound is exact-conservative), so the resulting
  // candidate set — and with it every query result — is identical to the
  // full scan's, on every kernel tier.
  if (options.fuzzy && !token.empty()) {
    const std::size_t len = token.size();
    const std::size_t max_dist =
        std::min(options.max_edit_distance, len / 3);
    const std::size_t max_bucket =
        bucket_offsets_.size() > 1 ? bucket_offsets_.size() - 2 : 0;
    if (max_dist > 0 && bucket_offsets_.size() > 1) {
      // max_dist > 0 implies len >= 3, so lo >= len - len/3 >= 2: both the
      // query token and every banded term are at least two characters, as
      // the kernel's first/last-character bound requires.
      const std::size_t lo = len > max_dist ? len - max_dist : 1;
      const std::size_t hi = std::min(max_bucket, len + max_dist);
      if (lo <= hi) {
        const std::uint32_t begin = bucket_offsets_[lo];
        const std::uint32_t end = bucket_offsets_[hi + 1];
        const std::size_t n = end - begin;
        scratch->prefilter_out.resize(n);
        const std::size_t kept = simd::ActiveKernels().fuzzy_prefilter(
            bucket_first_.data() + begin, bucket_last_.data() + begin,
            bucket_sigs_.data() + begin, n,
            static_cast<unsigned char>(token.front()),
            static_cast<unsigned char>(token.back()), CharSignature(token),
            static_cast<std::uint32_t>(max_dist),
            scratch->prefilter_out.data());
        for (std::size_t k = 0; k < kept; ++k) {
          const TermIdx term =
              bucket_terms_[begin + scratch->prefilter_out[k]];
          const std::string_view text = TermText(term);
          const std::size_t dist =
              BoundedLevenshtein(token, text, max_dist);
          if (dist == 0 || dist > max_dist) continue;
          const double sim =
              1.0 - static_cast<double>(dist) /
                        static_cast<double>(std::max(len, text.size()));
          add(term, sim);
        }
      }
    }
  }
}

std::vector<InvertedIndex::Hit> InvertedIndex::Search(
    std::string_view keyword, const SearchOptions& options) const {
  GRASP_CHECK(finalized_) << "Search before Finalize";
  // Queries never emit the synthetic compound term: it would dilute the
  // per-token average for multi-word keywords. Compounds exist on the
  // document side only, where single-word queries can still hit them.
  AnalyzerOptions query_options = analyzer_options_;
  query_options.emit_compound = false;
  const std::vector<std::string> tokens = Analyze(keyword, query_options);
  if (tokens.empty()) return {};

  // Pooled dense scoring state: `best` holds each document's best weight
  // for the current token (-1.0 = untouched), `sum`/`matched` accumulate
  // across tokens. All three rest at their sentinel values between queries
  // and are restored via the touched lists before release, so steady-state
  // queries allocate nothing and touch O(matched docs) memory.
  const std::size_t num_docs = num_documents();
  auto lease = scratch_pool_->Acquire(
      [] { return std::make_unique<SearchScratch>(); });
  SearchScratch& s = *lease.object;
  if (s.best.size() < num_docs) {
    s.best.resize(num_docs, -1.0);
    s.sum.resize(num_docs, 0.0);
    s.matched.resize(num_docs, 0);
  }

  const auto postings_update = simd::ActiveKernels().postings_best_update;
  for (const std::string& token : tokens) {
    s.candidates.clear();
    CollectCandidates(token, options, &s);
    s.token_touched.clear();
    for (const Candidate& c : s.candidates) {
      const double weight = c.similarity * TermWeight(c.term, options);
      const std::span<const Posting> run = PostingsOf(c.term);
      const std::size_t before = s.token_touched.size();
      s.token_touched.resize(before + run.size());
      const std::size_t appended = postings_update(
          reinterpret_cast<const std::uint32_t*>(run.data()), run.size(),
          weight, s.best.data(), s.token_touched.data() + before);
      s.token_touched.resize(before + appended);
    }
    for (const std::uint32_t doc : s.token_touched) {
      if (s.matched[doc] == 0) s.all_touched.push_back(doc);
      s.sum[doc] += s.best[doc];
      ++s.matched[doc];
      s.best[doc] = -1.0;  // restore the sentinel for the next token
    }
  }

  std::vector<Hit> hits;
  hits.reserve(s.all_touched.size());
  const double denom = static_cast<double>(tokens.size());
  for (const std::uint32_t doc : s.all_touched) {
    // The relevance filter uses the raw per-token average; the coverage
    // factor then discounts hits that touch only a fraction of a long label
    // so that e.g. a three-word title outranks a six-word one for the same
    // single-keyword hit.
    const double raw = s.sum[doc] / denom;
    if (raw >= options.min_similarity || (tokens.size() > 1 && raw > 0.0)) {
      double score = raw;
      if (options.length_normalize) {
        const double label_len = static_cast<double>(
            std::max<std::uint32_t>(1, doc_term_counts_[doc]));
        score *= std::min(
            1.0,
            std::sqrt(static_cast<double>(s.matched[doc]) / label_len));
      }
      hits.push_back(Hit{doc, std::min(1.0, score)});
    }
    s.sum[doc] = 0.0;  // restore resting state for the next query
    s.matched[doc] = 0;
  }
  s.all_touched.clear();
  scratch_pool_->Release(lease, s.OwnedBytes());

  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (options.max_results > 0 && hits.size() > options.max_results) {
    hits.resize(options.max_results);
  }
  return hits;
}

std::size_t InvertedIndex::MemoryUsageBytes() const {
  std::size_t bytes = 0;
  for (const std::string& t : building_terms_) {
    bytes += sizeof(std::string) + t.capacity();
  }
  bytes += term_ids_.size() * (sizeof(TermIdx) + 2 * sizeof(void*) + 16);
  for (const auto& plist : building_postings_) {
    bytes += sizeof(plist) + plist.capacity() * sizeof(Posting);
  }
  bytes += building_doc_term_counts_.capacity() * sizeof(std::uint32_t);
  bytes += term_offsets_.OwnedBytes() + term_blob_.OwnedBytes() +
           sorted_terms_.OwnedBytes() + posting_offsets_.OwnedBytes() +
           postings_.OwnedBytes() + doc_term_counts_.OwnedBytes();
  bytes += bucket_offsets_.OwnedBytes() + bucket_terms_.OwnedBytes();
  bytes += bucket_first_.capacity() + bucket_last_.capacity() +
           bucket_sigs_.capacity() * sizeof(std::uint32_t);
  bytes += scratch_pool_->PooledBytes();
  return bytes;
}

}  // namespace grasp::text
