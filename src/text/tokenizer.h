#ifndef GRASP_TEXT_TOKENIZER_H_
#define GRASP_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace grasp::text {

/// Options for the lexical analysis performed on element labels and keywords
/// (Sec. IV-A: "a lexical analysis (stemming, removal of stopwords) as
/// supported by standard IR engines").
struct AnalyzerOptions {
  bool lowercase = true;
  bool split_camel_case = true;   ///< "worksAt" -> {"works", "at"}
  bool drop_stopwords = true;
  bool stem = true;               ///< Porter stemming
  std::size_t min_token_length = 1;
  /// Additionally emit the concatenation of short multi-token labels as one
  /// term ("worksAt" -> "worksat"), so that users who type a predicate name
  /// as a single word still hit it. Applied to labels of 2-4 tokens whose
  /// concatenation is at most 24 characters.
  bool emit_compound = true;
};

/// Splits `label` into raw tokens on non-alphanumeric characters; optionally
/// also at lower-to-upper camelCase boundaries. No normalization beyond the
/// split.
std::vector<std::string> Tokenize(std::string_view label,
                                  bool split_camel_case);

/// Full analysis: tokenize, lowercase, drop stopwords, stem. The resulting
/// terms are what the inverted index stores and matches against.
std::vector<std::string> Analyze(std::string_view label,
                                 const AnalyzerOptions& options = {});

}  // namespace grasp::text

#endif  // GRASP_TEXT_TOKENIZER_H_
