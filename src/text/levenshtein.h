#ifndef GRASP_TEXT_LEVENSHTEIN_H_
#define GRASP_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace grasp::text {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Banded variant: returns the distance if it is <= `limit`, otherwise any
/// value > `limit` (early exit). Used for fuzzy vocabulary scans where only
/// small distances matter.
std::size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                               std::size_t limit);

/// Similarity in [0, 1]: 1 - distance / max(|a|, |b|); 1.0 for two empty
/// strings. This is the syntactic component of the paper's matching score
/// sm(n).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace grasp::text

#endif  // GRASP_TEXT_LEVENSHTEIN_H_
