#ifndef GRASP_TEXT_INVERTED_INDEX_H_
#define GRASP_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/aligned.h"
#include "common/flat_storage.h"
#include "common/free_list_pool.h"
#include "text/thesaurus.h"
#include "text/tokenizer.h"

namespace grasp::text {

/// A small IR engine over short labels: the functional replacement for the
/// paper's use of Lucene (Sec. IV-A). Documents are element labels; search
/// combines exact term matching, thesaurus expansion (semantic similarity)
/// and Levenshtein-based fuzzy matching (syntactic similarity) into one
/// score per document in (0, 1].
///
/// After Finalize the whole index is flat: the vocabulary is one text blob
/// with offsets plus a lexicographically sorted permutation (exact lookups
/// binary-search it — no string hash to rebuild), and postings are one CSR
/// array. Every one of these arrays can be serialized as-is and mapped back
/// zero-copy from an index snapshot.
class InvertedIndex {
 public:
  using DocId = std::uint32_t;

  explicit InvertedIndex(AnalyzerOptions options = {})
      : analyzer_options_(options),
        scratch_pool_(std::make_unique<FreeListPool<SearchScratch>>()) {}

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Adds a label; returns its document id (dense, starting at 0). Must not
  /// be called after Finalize().
  DocId AddDocument(std::string_view label);

  /// Freezes the index: flattens the vocabulary and postings into their
  /// snapshot-ready form and builds the fuzzy-scan length buckets.
  /// Idempotent.
  void Finalize();

  struct SearchOptions {
    /// Enables the Levenshtein vocabulary scan.
    bool fuzzy = true;
    /// Hard cap on edit distance; the effective cap also shrinks for short
    /// tokens (min(max_edit_distance, token_len / 3)).
    std::size_t max_edit_distance = 2;
    /// Candidate terms below this similarity are dropped.
    double min_similarity = 0.55;
    /// Optional semantic expansion table; nullptr disables it.
    const Thesaurus* thesaurus = nullptr;
    /// Weighs rarer terms higher (the paper's suggested TF/IDF adoption).
    bool use_idf = true;
    /// Discounts long labels: a single-token hit on a three-word title
    /// scores higher than the same hit on a six-word title (the coverage
    /// factor sqrt(matched tokens / label length), capped at 1).
    bool length_normalize = true;
    /// 0 = unlimited.
    std::size_t max_results = 0;
  };

  struct Hit {
    DocId doc;
    double score;  ///< in (0, 1]
  };

  /// One postings entry: the document and the term's frequency within it.
  struct Posting {
    DocId doc;
    std::uint32_t tf;
  };

  /// Rebuilds a finalized index from snapshot parts, all typically borrowed
  /// straight from the mapping: the vocabulary blob/offsets, its sorted
  /// permutation, the flat postings CSR, the per-document token counts and
  /// the fuzzy-scan length buckets (CSR over term indexes, bucket = term
  /// length). Only the small per-term prefilter arrays are re-derived (one
  /// linear sweep); no tokenization, hashing, stemming or sorting happens.
  static InvertedIndex FromSnapshotParts(
      AnalyzerOptions analyzer_options,
      FlatStorage<std::uint32_t> term_offsets, FlatStorage<char> term_blob,
      FlatStorage<std::uint32_t> sorted_terms,
      FlatStorage<std::uint32_t> posting_offsets, FlatStorage<Posting> postings,
      FlatStorage<std::uint32_t> doc_term_counts,
      FlatStorage<std::uint32_t> bucket_offsets,
      FlatStorage<std::uint32_t> bucket_terms);

  /// Scores documents against a (possibly multi-token) keyword. A document's
  /// score averages its per-token best similarity; tokens without any match
  /// contribute 0, so partial matches are penalized proportionally. Results
  /// are sorted by descending score. Requires Finalize().
  std::vector<Hit> Search(std::string_view keyword,
                          const SearchOptions& options) const;
  std::vector<Hit> Search(std::string_view keyword) const {
    return Search(keyword, SearchOptions{});
  }

  std::size_t num_documents() const {
    return finalized_ ? doc_term_counts_.size()
                      : building_doc_term_counts_.size();
  }
  std::size_t vocabulary_size() const {
    return finalized_ ? term_offsets_.size() - 1 : building_terms_.size();
  }
  const AnalyzerOptions& analyzer_options() const { return analyzer_options_; }

  /// Raw finalized contents, for snapshot serialization.
  std::span<const std::uint32_t> term_offsets() const {
    return term_offsets_.view();
  }
  std::span<const char> term_blob() const { return term_blob_.view(); }
  std::span<const std::uint32_t> sorted_terms() const {
    return sorted_terms_.view();
  }
  std::span<const std::uint32_t> posting_offsets() const {
    return posting_offsets_.view();
  }
  std::span<const Posting> postings() const { return postings_.view(); }
  std::span<const std::uint32_t> doc_term_counts() const {
    return doc_term_counts_.view();
  }
  std::span<const std::uint32_t> bucket_offsets() const {
    return bucket_offsets_.view();
  }
  std::span<const std::uint32_t> bucket_terms() const {
    return bucket_terms_.view();
  }

  /// Approximate owned heap footprint in bytes (Fig. 6b keyword-index
  /// size); mmap-backed snapshot storage counts zero here.
  std::size_t MemoryUsageBytes() const;

 private:
  using TermIdx = std::uint32_t;

  /// Candidate vocabulary term matched by one query token.
  struct Candidate {
    TermIdx term;
    double similarity;
  };

  /// Pooled per-query state. The dense per-document arrays use sentinel /
  /// zero resting values (`best` all -1.0, `sum` all 0.0, `matched` all 0)
  /// that each query restores via its touched lists before releasing the
  /// scratch, so a query costs O(docs touched), not O(num_documents), after
  /// the first acquisition sized the arrays.
  struct SearchScratch {
    AlignedVector<double> best;            ///< per-doc best this token; -1 = untouched
    AlignedVector<double> sum;             ///< per-doc summed best over tokens
    AlignedVector<std::uint32_t> matched;  ///< per-doc count of matched tokens
    AlignedVector<std::uint32_t> token_touched;  ///< docs touched by this token
    AlignedVector<std::uint32_t> all_touched;    ///< docs touched by any token
    AlignedVector<std::uint32_t> prefilter_out;  ///< fuzzy-prefilter survivors
    std::vector<Candidate> candidates;

    std::size_t OwnedBytes() const {
      return best.capacity() * sizeof(double) + sum.capacity() * sizeof(double) +
             (matched.capacity() + token_touched.capacity() +
              all_touched.capacity() + prefilter_out.capacity()) *
                 sizeof(std::uint32_t) +
             candidates.capacity() * sizeof(Candidate);
    }
  };

  TermIdx InternTerm(const std::string& term);
  void BuildLengthBuckets();
  void BuildBucketPrefilter();
  std::string_view TermText(TermIdx term) const {
    return {term_blob_.data() + term_offsets_[term],
            static_cast<std::size_t>(term_offsets_[term + 1] -
                                     term_offsets_[term])};
  }
  /// Binary search over the sorted vocabulary permutation; returns
  /// vocabulary_size() when absent. Requires Finalize().
  TermIdx ExactTerm(std::string_view token) const;
  std::span<const Posting> PostingsOf(TermIdx term) const {
    return postings_.view().subspan(
        posting_offsets_[term],
        posting_offsets_[term + 1] - posting_offsets_[term]);
  }
  void CollectCandidates(const std::string& token,
                         const SearchOptions& options,
                         SearchScratch* scratch) const;
  double TermWeight(TermIdx term, const SearchOptions& options) const;

  AnalyzerOptions analyzer_options_;
  /// Build-time state, cleared by Finalize (the flat arrays replace it).
  std::unordered_map<std::string, TermIdx> term_ids_;
  std::vector<std::string> building_terms_;
  std::vector<std::vector<Posting>> building_postings_;
  AlignedVector<std::uint32_t> building_doc_term_counts_;
  /// Finalized vocabulary: blob + offsets (vocabulary_size() + 1 entries)
  /// + lexicographically sorted term permutation.
  FlatStorage<std::uint32_t> term_offsets_;
  FlatStorage<char> term_blob_;
  FlatStorage<std::uint32_t> sorted_terms_;
  /// Flat postings CSR (offsets has vocabulary_size() + 1 entries).
  FlatStorage<std::uint32_t> posting_offsets_;
  FlatStorage<Posting> postings_;
  FlatStorage<std::uint32_t> doc_term_counts_;
  /// Term indexes bucketed by term length in CSR form (bucket_offsets_ has
  /// max_term_len + 2 entries; bucket_terms_ lists every term index once,
  /// ascending within each bucket), snapshot-serialized as-is. The parallel
  /// per-term prefilter arrays — first byte, last byte, character-presence
  /// signature, in bucket_terms_ order — are derived locally on (re)build
  /// and feed the vectorized fuzzy-reject sweep.
  FlatStorage<std::uint32_t> bucket_offsets_;
  FlatStorage<std::uint32_t> bucket_terms_;
  AlignedVector<unsigned char> bucket_first_;
  AlignedVector<unsigned char> bucket_last_;
  AlignedVector<std::uint32_t> bucket_sigs_;
  /// Reusable per-query scratch; a unique_ptr because the pool itself is
  /// neither copyable nor movable while InvertedIndex must stay movable.
  mutable std::unique_ptr<FreeListPool<SearchScratch>> scratch_pool_;
  bool finalized_ = false;
};

}  // namespace grasp::text

#endif  // GRASP_TEXT_INVERTED_INDEX_H_
