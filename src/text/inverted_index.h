#ifndef GRASP_TEXT_INVERTED_INDEX_H_
#define GRASP_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/thesaurus.h"
#include "text/tokenizer.h"

namespace grasp::text {

/// A small IR engine over short labels: the functional replacement for the
/// paper's use of Lucene (Sec. IV-A). Documents are element labels; search
/// combines exact term matching, thesaurus expansion (semantic similarity)
/// and Levenshtein-based fuzzy matching (syntactic similarity) into one
/// score per document in (0, 1].
class InvertedIndex {
 public:
  using DocId = std::uint32_t;

  explicit InvertedIndex(AnalyzerOptions options = {})
      : analyzer_options_(options) {}

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Adds a label; returns its document id (dense, starting at 0). Must not
  /// be called after Finalize().
  DocId AddDocument(std::string_view label);

  /// Freezes the index: sorts postings and builds the fuzzy-scan length
  /// buckets. Idempotent.
  void Finalize();

  struct SearchOptions {
    /// Enables the Levenshtein vocabulary scan.
    bool fuzzy = true;
    /// Hard cap on edit distance; the effective cap also shrinks for short
    /// tokens (min(max_edit_distance, token_len / 3)).
    std::size_t max_edit_distance = 2;
    /// Candidate terms below this similarity are dropped.
    double min_similarity = 0.55;
    /// Optional semantic expansion table; nullptr disables it.
    const Thesaurus* thesaurus = nullptr;
    /// Weighs rarer terms higher (the paper's suggested TF/IDF adoption).
    bool use_idf = true;
    /// Discounts long labels: a single-token hit on a three-word title
    /// scores higher than the same hit on a six-word title (the coverage
    /// factor sqrt(matched tokens / label length), capped at 1).
    bool length_normalize = true;
    /// 0 = unlimited.
    std::size_t max_results = 0;
  };

  struct Hit {
    DocId doc;
    double score;  ///< in (0, 1]
  };

  /// Scores documents against a (possibly multi-token) keyword. A document's
  /// score averages its per-token best similarity; tokens without any match
  /// contribute 0, so partial matches are penalized proportionally. Results
  /// are sorted by descending score. Requires Finalize().
  std::vector<Hit> Search(std::string_view keyword,
                          const SearchOptions& options) const;
  std::vector<Hit> Search(std::string_view keyword) const {
    return Search(keyword, SearchOptions{});
  }

  std::size_t num_documents() const { return doc_term_counts_.size(); }
  std::size_t vocabulary_size() const { return term_texts_.size(); }
  const AnalyzerOptions& analyzer_options() const { return analyzer_options_; }

  /// Approximate heap footprint in bytes (Fig. 6b keyword-index size).
  std::size_t MemoryUsageBytes() const;

 private:
  using TermIdx = std::uint32_t;

  struct Posting {
    DocId doc;
    std::uint32_t tf;
  };

  /// Candidate vocabulary term matched by one query token.
  struct Candidate {
    TermIdx term;
    double similarity;
  };

  TermIdx InternTerm(const std::string& term);
  void CollectCandidates(const std::string& token,
                         const SearchOptions& options,
                         std::vector<Candidate>* candidates) const;
  double TermWeight(TermIdx term, const SearchOptions& options) const;

  AnalyzerOptions analyzer_options_;
  std::unordered_map<std::string, TermIdx> term_ids_;
  std::vector<std::string> term_texts_;
  std::vector<std::vector<Posting>> postings_;
  std::vector<std::uint32_t> doc_term_counts_;
  /// term indexes bucketed by term length, for the banded fuzzy scan.
  std::vector<std::vector<TermIdx>> length_buckets_;
  bool finalized_ = false;
};

}  // namespace grasp::text

#endif  // GRASP_TEXT_INVERTED_INDEX_H_
