#ifndef GRASP_TEXT_THESAURUS_H_
#define GRASP_TEXT_THESAURUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace grasp::text {

/// Semantic relatedness table standing in for WordNet (see DESIGN.md §5).
/// The engine only needs `related(term) -> {term, weight}` where the weight
/// discounts the matching score sm(n); this class provides exactly that,
/// pre-populated with a curated table for the bibliographic / university /
/// encyclopedic domains of the evaluation datasets, and extensible at
/// runtime.
///
/// All terms are normalized (lower-cased, Porter-stemmed) on insertion and
/// lookup so entries align with the inverted index vocabulary.
class Thesaurus {
 public:
  enum class Relation { kSynonym, kHypernym, kHyponym };

  struct Entry {
    std::string term;    ///< normalized related term
    Relation relation;
    double weight;       ///< semantic similarity in (0, 1)
  };

  Thesaurus() = default;

  /// Registers a symmetric synonym pair.
  void AddSynonym(std::string_view a, std::string_view b,
                  double weight = kSynonymWeight);

  /// Registers `broad` as a hypernym of `narrow` (and the hyponym edge back).
  void AddHypernym(std::string_view narrow, std::string_view broad,
                   double weight = kTaxonomyWeight);

  /// Related entries for a (raw, un-normalized) term. Deduplicated, best
  /// weight wins; never contains the term itself.
  std::vector<Entry> Lookup(std::string_view term) const;

  std::size_t size() const { return related_.size(); }

  /// The curated built-in table used by the evaluation.
  static Thesaurus BuiltIn();

  static constexpr double kSynonymWeight = 0.9;
  static constexpr double kTaxonomyWeight = 0.7;

 private:
  void AddDirected(std::string normalized_from, std::string normalized_to,
                   Relation relation, double weight);
  static std::string Normalize(std::string_view term);

  std::unordered_map<std::string, std::vector<Entry>> related_;
};

}  // namespace grasp::text

#endif  // GRASP_TEXT_THESAURUS_H_
