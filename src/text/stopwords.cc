#include "text/stopwords.h"

#include <algorithm>
#include <array>

namespace grasp::text {
namespace {

// Sorted so std::binary_search applies. Kept deliberately small: over-eager
// stopword removal hurts keyword search (queries are 1-4 words long).
constexpr std::array<std::string_view, 44> kStopwords = {
    "a",    "about", "after", "all",  "an",   "and",  "any",  "are",
    "as",   "at",    "be",    "but",  "by",   "for",  "from", "had",
    "has",  "have",  "he",    "her",  "his",  "if",   "in",   "into",
    "is",   "it",    "its",   "no",   "not",  "of",   "on",   "or",
    "such", "that",  "the",   "their", "then", "there", "these", "they",
    "this", "to",    "was",   "with",
};

static_assert(std::is_sorted(kStopwords.begin(), kStopwords.end()));

}  // namespace

bool IsStopword(std::string_view word) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), word);
}

}  // namespace grasp::text
