#ifndef GRASP_TEXT_STOPWORDS_H_
#define GRASP_TEXT_STOPWORDS_H_

#include <string_view>

namespace grasp::text {

/// True for common English function words that the analyzer drops before
/// indexing (the paper's "removal of stopwords" preprocessing step). The
/// check expects lower-cased input.
bool IsStopword(std::string_view word);

}  // namespace grasp::text

#endif  // GRASP_TEXT_STOPWORDS_H_
