#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace grasp::text {

std::vector<std::string> Tokenize(std::string_view label,
                                  bool split_camel_case) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  char prev = '\0';
  for (char c : label) {
    const bool alnum = std::isalnum(static_cast<unsigned char>(c)) != 0;
    if (!alnum) {
      flush();
      prev = c;
      continue;
    }
    if (split_camel_case && std::isupper(static_cast<unsigned char>(c)) &&
        std::islower(static_cast<unsigned char>(prev))) {
      flush();
    }
    // Also split at letter/digit boundaries ("lubm50" -> "lubm", "50").
    const bool c_digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool p_digit = std::isdigit(static_cast<unsigned char>(prev)) != 0;
    const bool p_alpha = std::isalpha(static_cast<unsigned char>(prev)) != 0;
    if (!current.empty() && ((c_digit && p_alpha) || (!c_digit && p_digit))) {
      flush();
    }
    current.push_back(c);
    prev = c;
  }
  flush();
  return tokens;
}

std::vector<std::string> Analyze(std::string_view label,
                                 const AnalyzerOptions& options) {
  std::vector<std::string> raw = Tokenize(label, options.split_camel_case);
  std::vector<std::string> terms;
  for (std::string& token : raw) {
    std::string term = options.lowercase ? ToLower(token) : token;
    if (term.size() < options.min_token_length) continue;
    if (options.drop_stopwords && IsStopword(term)) continue;
    if (options.stem) term = PorterStem(term);
    if (term.empty()) continue;
    terms.push_back(std::move(term));
  }
  if (options.emit_compound && raw.size() >= 2 && raw.size() <= 4) {
    std::string compound;
    for (const std::string& token : raw) {
      compound += options.lowercase ? ToLower(token) : token;
    }
    if (compound.size() <= 24) terms.push_back(std::move(compound));
  }
  return terms;
}

}  // namespace grasp::text
