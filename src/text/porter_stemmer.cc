#include "text/porter_stemmer.h"

namespace grasp::text {
namespace {

// Direct adaptation of Porter's reference algorithm (1980). `w` holds the
// word; `k` is the index of its current last character; `j` marks the stem
// end set by Ends().
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : w_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string Run() {
    if (k_ <= 1) return w_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return w_.substr(0, static_cast<std::size_t>(k_ + 1));
  }

 private:
  bool IsConsonant(int i) const {
    switch (w_[static_cast<std::size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Number of consonant-vowel sequences in w[0..j].
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (w_[static_cast<std::size_t>(i)] != w_[static_cast<std::size_t>(i - 1)]) return false;
    return IsConsonant(i);
  }

  // consonant - vowel - consonant, where the final consonant is not w, x, y.
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    const char c = w_[static_cast<std::size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool Ends(std::string_view suffix) {
    const int len = static_cast<int>(suffix.size());
    if (len > k_ + 1) return false;
    if (w_.compare(static_cast<std::size_t>(k_ - len + 1), static_cast<std::size_t>(len),
                   suffix) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(std::string_view replacement) {
    w_.replace(static_cast<std::size_t>(j_ + 1), static_cast<std::size_t>(k_ - j_),
               replacement);
    k_ = j_ + static_cast<int>(replacement.size());
  }

  void ReplaceIfStem(std::string_view replacement) {
    if (Measure() > 0) SetTo(replacement);
  }

  void Step1ab() {
    if (w_[static_cast<std::size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && w_[static_cast<std::size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        --k_;
        const char c = w_[static_cast<std::size_t>(k_)];
        if (c == 'l' || c == 's' || c == 'z') ++k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) w_[static_cast<std::size_t>(k_)] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (w_[static_cast<std::size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfStem("ate"); break; }
        if (Ends("tional")) { ReplaceIfStem("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfStem("ence"); break; }
        if (Ends("anci")) { ReplaceIfStem("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfStem("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfStem("ble"); break; }
        if (Ends("alli")) { ReplaceIfStem("al"); break; }
        if (Ends("entli")) { ReplaceIfStem("ent"); break; }
        if (Ends("eli")) { ReplaceIfStem("e"); break; }
        if (Ends("ousli")) { ReplaceIfStem("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfStem("ize"); break; }
        if (Ends("ation")) { ReplaceIfStem("ate"); break; }
        if (Ends("ator")) { ReplaceIfStem("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfStem("al"); break; }
        if (Ends("iveness")) { ReplaceIfStem("ive"); break; }
        if (Ends("fulness")) { ReplaceIfStem("ful"); break; }
        if (Ends("ousness")) { ReplaceIfStem("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfStem("al"); break; }
        if (Ends("iviti")) { ReplaceIfStem("ive"); break; }
        if (Ends("biliti")) { ReplaceIfStem("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfStem("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (w_[static_cast<std::size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfStem("ic"); break; }
        if (Ends("ative")) { ReplaceIfStem(""); break; }
        if (Ends("alize")) { ReplaceIfStem("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfStem("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfStem("ic"); break; }
        if (Ends("ful")) { ReplaceIfStem(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfStem(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (w_[static_cast<std::size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (w_[static_cast<std::size_t>(j_)] == 's' ||
             w_[static_cast<std::size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (w_[static_cast<std::size_t>(k_)] == 'e') {
      const int a = Measure();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (w_[static_cast<std::size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure() > 1) {
      --k_;
    }
  }

  std::string w_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(word).Run();
}

}  // namespace grasp::text
