#ifndef GRASP_KEYWORD_KEYWORD_INDEX_H_
#define GRASP_KEYWORD_KEYWORD_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/filter_op.h"
#include "common/flat_storage.h"
#include "rdf/data_graph.h"
#include "text/inverted_index.h"

namespace grasp::keyword {

/// Neighborhood context attached to V-vertex and A-edge matches: the paper's
/// data structures `[V-vertex, A-edge, (C-vertex_1..n)]` and
/// `[A-edge, (C-vertex_1..n)]` (Sec. IV-A). `classes` holds the class terms
/// of the subjects reachable through `attribute`; untyped subjects appear as
/// rdf::kThingTerm.
struct AttrContext {
  rdf::TermId attribute = rdf::kInvalidTermId;
  std::vector<rdf::TermId> classes;
  /// Parallel to `classes`: the number of data-graph A-edges the context
  /// aggregates per class — for a kValue match, the edges carrying exactly
  /// this value; for a kAttributeLabel match, all edges with this label.
  /// Feeds |e_agg| of the augmented edges (popularity cost C2).
  std::vector<std::uint64_t> counts;
};

/// One graph element a keyword maps to, with its matching score sm(n).
struct KeywordMatch {
  enum class Kind : std::uint8_t {
    kClass,           ///< C-vertex (matched by class-name terms)
    kValue,           ///< V-vertex (matched by literal text)
    kRelationLabel,   ///< R-edge label (predicate between entities)
    kAttributeLabel,  ///< A-edge label (predicate from entity to value)
  };

  Kind kind;
  /// Class IRI, literal value, or predicate IRI, respectively. Invalid for
  /// filter matches, which stand for a set of values rather than one.
  rdf::TermId term = rdf::kInvalidTermId;
  /// Matching score in (0, 1], combining syntactic and semantic similarity.
  double score = 1.0;
  /// For kValue: one entry per A-edge label under which the value occurs.
  /// For kAttributeLabel: a single entry (attribute == term).
  /// Empty for kClass and kRelationLabel.
  std::vector<AttrContext> contexts;
  /// Filter-operator extension (Sec. IX): true when this match stands for
  /// the set of numeric values satisfying `filter` (e.g. keyword ">2000").
  /// The query mapping then emits a free variable plus a FILTER condition
  /// instead of a constant.
  bool is_filter = false;
  FilterSpec filter{FilterOp::kGreater, 0.0};
};

/// The keyword index of Sec. IV-A: an IR engine over the labels of
/// C-vertices, V-vertices and edge labels (E-vertices are deliberately not
/// indexed — users refer to entities via attribute values, not URIs).
///
/// The element/context tables are flat POD arrays (CSR-style ranges instead
/// of nested vectors), so the whole index can be serialized as-is into an
/// index snapshot and mapped back zero-copy on warm start. These records
/// are part of the snapshot format — never reorder their fields.
class KeywordIndex {
 public:
  /// One indexed element, parallel to InvertedIndex document ids;
  /// [ctx_begin, ctx_end) indexes the context table.
  struct ElementRecord {
    std::uint32_t kind;  ///< KeywordMatch::Kind
    rdf::TermId term;
    std::uint32_t ctx_begin;
    std::uint32_t ctx_end;
  };
  static_assert(sizeof(ElementRecord) == 16);

  /// One attribute context; [entry_begin, entry_end) indexes the parallel
  /// class/count arrays.
  struct ContextRecord {
    rdf::TermId attribute;
    std::uint32_t entry_begin;
    std::uint32_t entry_end;
    std::uint32_t pad;
  };
  static_assert(sizeof(ContextRecord) == 16);

  /// One numeric V-vertex value, sorted by (value, element): the range-scan
  /// table behind the filter-operator extension.
  struct NumericValueRecord {
    double value;
    std::uint32_t element;
    std::uint32_t pad;
  };
  static_assert(sizeof(NumericValueRecord) == 16);

  /// Builds the index over a data graph. The graph must outlive the index.
  static KeywordIndex Build(const rdf::DataGraph& graph,
                            text::AnalyzerOptions analyzer_options = {});

  /// Rebuilds an index from snapshot parts (the flat tables are typically
  /// borrowed straight from the mapping; see InvertedIndex
  /// ::FromSnapshotParts for the IR-engine half).
  static KeywordIndex FromSnapshotParts(
      text::InvertedIndex index, FlatStorage<ElementRecord> elements,
      FlatStorage<ContextRecord> contexts,
      FlatStorage<rdf::TermId> context_classes,
      FlatStorage<std::uint64_t> context_counts,
      FlatStorage<NumericValueRecord> numeric_values);

  KeywordIndex(const KeywordIndex&) = delete;
  KeywordIndex& operator=(const KeywordIndex&) = delete;
  KeywordIndex(KeywordIndex&&) = default;
  KeywordIndex& operator=(KeywordIndex&&) = default;

  /// Evaluates the keyword-to-element function f: keyword -> 2^(V_C u V_V u E)
  /// with imprecise matching. Results are sorted by descending score.
  std::vector<KeywordMatch> Lookup(
      std::string_view keyword,
      const text::InvertedIndex::SearchOptions& options) const;

  /// Filter-operator extension (Sec. IX): resolves an operator keyword such
  /// as ">2000" to a single filter match whose contexts merge every numeric
  /// V-vertex satisfying the comparison (counts summed per attribute and
  /// class). Returns nullopt when no indexed value satisfies the filter.
  std::optional<KeywordMatch> LookupFilter(const FilterSpec& filter) const;

  std::size_t num_elements() const { return elements_.size(); }
  std::size_t vocabulary_size() const { return index_.vocabulary_size(); }

  /// Raw index contents, for snapshot serialization.
  const text::InvertedIndex& inverted_index() const { return index_; }
  std::span<const ElementRecord> elements() const { return elements_.view(); }
  std::span<const ContextRecord> contexts() const { return contexts_.view(); }
  std::span<const rdf::TermId> context_classes() const {
    return context_classes_.view();
  }
  std::span<const std::uint64_t> context_counts() const {
    return context_counts_.view();
  }
  std::span<const NumericValueRecord> numeric_values() const {
    return numeric_values_.view();
  }

  /// Approximate owned heap footprint in bytes (Fig. 6b keyword-index
  /// size); mmap-backed snapshot storage counts zero here.
  std::size_t MemoryUsageBytes() const;

 private:
  KeywordIndex() : index_(text::AnalyzerOptions{}) {}

  /// Materializes the AttrContext list of one element from the flat tables
  /// (the per-match copy Lookup always made; the flat layout just changes
  /// where the data is copied from).
  std::vector<AttrContext> ContextsOf(const ElementRecord& element) const;

  text::InvertedIndex index_;
  FlatStorage<ElementRecord> elements_;
  FlatStorage<ContextRecord> contexts_;
  FlatStorage<rdf::TermId> context_classes_;
  FlatStorage<std::uint64_t> context_counts_;
  FlatStorage<NumericValueRecord> numeric_values_;
};

}  // namespace grasp::keyword

#endif  // GRASP_KEYWORD_KEYWORD_INDEX_H_
