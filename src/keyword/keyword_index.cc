#include "keyword/keyword_index.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "rdf/term.h"

namespace grasp::keyword {
namespace {

using rdf::TermId;

/// Classes a subject vertex contributes to an attribute context: its `type`
/// targets, `Thing` when untyped, or the class itself for schema-level
/// attribute assertions (e.g. a label on a class).
std::vector<TermId> SubjectClasses(const rdf::DataGraph& graph,
                                   rdf::VertexId subject) {
  const rdf::Vertex& v = graph.vertex(subject);
  if (v.kind == rdf::VertexKind::kClass) return {v.term};
  std::vector<TermId> classes;
  for (rdf::VertexId c : graph.ClassesOf(subject)) {
    classes.push_back(graph.vertex(c).term);
  }
  if (classes.empty()) classes.push_back(rdf::kThingTerm);
  return classes;
}

}  // namespace

KeywordIndex KeywordIndex::Build(const rdf::DataGraph& graph,
                                 text::AnalyzerOptions analyzer_options) {
  KeywordIndex ki;
  ki.index_ = text::InvertedIndex(analyzer_options);
  const rdf::Dictionary& dict = graph.dictionary();

  // Gather contexts in ordered maps so index construction is deterministic.
  // The per-class values count how many data A-edges each context
  // aggregates; they become |e_agg| of the augmented edges.
  std::map<TermId, std::set<TermId>> relation_labels;  // label -> (unused)
  std::map<TermId, std::map<TermId, std::uint64_t>>
      attribute_classes;  // label -> class -> edge count
  // value vertex -> attribute label -> class -> edge count
  std::map<rdf::VertexId, std::map<TermId, std::map<TermId, std::uint64_t>>>
      value_contexts;

  for (const rdf::Edge& e : graph.edges()) {
    switch (e.kind) {
      case rdf::EdgeKind::kRelation: {
        relation_labels[e.label];
        break;
      }
      case rdf::EdgeKind::kAttribute: {
        std::vector<TermId> classes = SubjectClasses(graph, e.from);
        auto& label_counts = attribute_classes[e.label];
        auto& value_counts = value_contexts[e.to][e.label];
        for (TermId cls : classes) {
          ++label_counts[cls];
          ++value_counts[cls];
        }
        break;
      }
      case rdf::EdgeKind::kType:
      case rdf::EdgeKind::kSubclass:
        break;  // structural; classes are indexed from the vertex list
    }
  }

  auto add = [&ki](std::string_view label, Element element) {
    const auto doc = ki.index_.AddDocument(label);
    GRASP_CHECK_EQ(static_cast<std::size_t>(doc), ki.elements_.size());
    ki.elements_.push_back(std::move(element));
  };

  // C-vertices, indexed by the local name of their IRI.
  for (const rdf::Vertex& v : graph.vertices()) {
    if (v.kind != rdf::VertexKind::kClass) continue;
    add(rdf::IriLocalName(dict.text(v.term)),
        Element{KeywordMatch::Kind::kClass, v.term, {}});
  }

  // R-edge labels.
  for (const auto& [label, unused] : relation_labels) {
    (void)unused;
    add(rdf::IriLocalName(dict.text(label)),
        Element{KeywordMatch::Kind::kRelationLabel, label, {}});
  }

  auto make_context = [](TermId attribute,
                         const std::map<TermId, std::uint64_t>& class_counts) {
    AttrContext ctx;
    ctx.attribute = attribute;
    ctx.classes.reserve(class_counts.size());
    ctx.counts.reserve(class_counts.size());
    for (const auto& [cls, count] : class_counts) {
      ctx.classes.push_back(cls);
      ctx.counts.push_back(count);
    }
    return ctx;
  };

  // A-edge labels, with the classes of their subjects attached
  // ([A-edge, (C-vertex_1..n)]).
  for (const auto& [label, class_counts] : attribute_classes) {
    add(rdf::IriLocalName(dict.text(label)),
        Element{KeywordMatch::Kind::kAttributeLabel, label,
                {make_context(label, class_counts)}});
  }

  // V-vertices, indexed by literal text, with their
  // [V-vertex, A-edge, (C-vertex_1..n)] contexts. Numeric values also enter
  // the sorted range index behind the filter-operator extension.
  for (const auto& [value_vertex, per_attr] : value_contexts) {
    std::vector<AttrContext> contexts;
    contexts.reserve(per_attr.size());
    for (const auto& [attr, class_counts] : per_attr) {
      contexts.push_back(make_context(attr, class_counts));
    }
    const TermId value_term = graph.vertex(value_vertex).term;
    const std::uint32_t element_index =
        static_cast<std::uint32_t>(ki.elements_.size());
    add(dict.text(value_term), Element{KeywordMatch::Kind::kValue, value_term,
                                       std::move(contexts)});
    if (const auto numeric = ParseNumericLiteral(dict.text(value_term))) {
      ki.numeric_values_.emplace_back(*numeric, element_index);
    }
  }
  std::sort(ki.numeric_values_.begin(), ki.numeric_values_.end());

  ki.index_.Finalize();
  return ki;
}

std::optional<KeywordMatch> KeywordIndex::LookupFilter(
    const FilterSpec& filter) const {
  // Merge the contexts of every satisfying numeric value: count per
  // (attribute, class) pair.
  std::map<TermId, std::map<TermId, std::uint64_t>> merged;
  bool any = false;
  for (const auto& [value, element_index] : numeric_values_) {
    if (!EvalFilterOp(filter.op, value, filter.value)) continue;
    any = true;
    const Element& element = elements_[element_index];
    for (const AttrContext& ctx : element.contexts) {
      auto& class_counts = merged[ctx.attribute];
      for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
        class_counts[ctx.classes[i]] +=
            i < ctx.counts.size() ? ctx.counts[i] : 1;
      }
    }
  }
  if (!any) return std::nullopt;

  KeywordMatch match;
  match.kind = KeywordMatch::Kind::kValue;
  match.term = rdf::kInvalidTermId;
  match.score = 1.0;  // the operator is an exact, unambiguous specification
  match.is_filter = true;
  match.filter = filter;
  for (const auto& [attr, class_counts] : merged) {
    AttrContext ctx;
    ctx.attribute = attr;
    for (const auto& [cls, count] : class_counts) {
      ctx.classes.push_back(cls);
      ctx.counts.push_back(count);
    }
    match.contexts.push_back(std::move(ctx));
  }
  return match;
}

std::vector<KeywordMatch> KeywordIndex::Lookup(
    std::string_view keyword,
    const text::InvertedIndex::SearchOptions& options) const {
  std::vector<KeywordMatch> matches;
  for (const text::InvertedIndex::Hit& hit : index_.Search(keyword, options)) {
    const Element& element = elements_[hit.doc];
    KeywordMatch match;
    match.kind = element.kind;
    match.term = element.term;
    match.score = hit.score;
    match.contexts = element.contexts;
    matches.push_back(std::move(match));
  }
  return matches;
}

std::size_t KeywordIndex::MemoryUsageBytes() const {
  std::size_t bytes = index_.MemoryUsageBytes();
  for (const Element& e : elements_) {
    bytes += sizeof(Element);
    for (const AttrContext& ctx : e.contexts) {
      bytes += sizeof(AttrContext) + ctx.classes.capacity() * sizeof(TermId);
    }
  }
  return bytes;
}

}  // namespace grasp::keyword
