#include "keyword/keyword_index.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/aligned.h"
#include "common/logging.h"
#include "rdf/term.h"

namespace grasp::keyword {
namespace {

using rdf::TermId;

/// Classes a subject vertex contributes to an attribute context: its `type`
/// targets, `Thing` when untyped, or the class itself for schema-level
/// attribute assertions (e.g. a label on a class).
std::vector<TermId> SubjectClasses(const rdf::DataGraph& graph,
                                   rdf::VertexId subject) {
  const rdf::Vertex& v = graph.vertex(subject);
  if (v.kind == rdf::VertexKind::kClass) return {v.term};
  std::vector<TermId> classes;
  for (rdf::VertexId c : graph.ClassesOf(subject)) {
    classes.push_back(graph.vertex(c).term);
  }
  if (classes.empty()) classes.push_back(rdf::kThingTerm);
  return classes;
}

}  // namespace

KeywordIndex KeywordIndex::Build(const rdf::DataGraph& graph,
                                 text::AnalyzerOptions analyzer_options) {
  KeywordIndex ki;
  ki.index_ = text::InvertedIndex(analyzer_options);
  const rdf::Dictionary& dict = graph.dictionary();

  // Gather contexts in ordered maps so index construction is deterministic.
  // The per-class values count how many data A-edges each context
  // aggregates; they become |e_agg| of the augmented edges.
  std::map<TermId, std::set<TermId>> relation_labels;  // label -> (unused)
  std::map<TermId, std::map<TermId, std::uint64_t>>
      attribute_classes;  // label -> class -> edge count
  // value vertex -> attribute label -> class -> edge count
  std::map<rdf::VertexId, std::map<TermId, std::map<TermId, std::uint64_t>>>
      value_contexts;

  for (const rdf::Edge& e : graph.edges()) {
    switch (e.kind) {
      case rdf::EdgeKind::kRelation: {
        relation_labels[e.label];
        break;
      }
      case rdf::EdgeKind::kAttribute: {
        std::vector<TermId> classes = SubjectClasses(graph, e.from);
        auto& label_counts = attribute_classes[e.label];
        auto& value_counts = value_contexts[e.to][e.label];
        for (TermId cls : classes) {
          ++label_counts[cls];
          ++value_counts[cls];
        }
        break;
      }
      case rdf::EdgeKind::kType:
      case rdf::EdgeKind::kSubclass:
        break;  // structural; classes are indexed from the vertex list
    }
  }

  // The flat element/context tables, built in document-id order.
  AlignedVector<ElementRecord> elements;
  AlignedVector<ContextRecord> contexts;
  AlignedVector<TermId> ctx_classes;
  AlignedVector<std::uint64_t> ctx_counts;
  AlignedVector<NumericValueRecord> numerics;

  auto add = [&](std::string_view label, KeywordMatch::Kind kind,
                 TermId term) {
    const auto doc = ki.index_.AddDocument(label);
    GRASP_CHECK_EQ(static_cast<std::size_t>(doc), elements.size());
    const std::uint32_t at = static_cast<std::uint32_t>(contexts.size());
    elements.push_back(
        ElementRecord{static_cast<std::uint32_t>(kind), term, at, at});
  };
  auto append_context =
      [&](TermId attribute,
          const std::map<TermId, std::uint64_t>& class_counts) {
        ContextRecord ctx{attribute,
                          static_cast<std::uint32_t>(ctx_classes.size()), 0,
                          0};
        for (const auto& [cls, count] : class_counts) {
          ctx_classes.push_back(cls);
          ctx_counts.push_back(count);
        }
        ctx.entry_end = static_cast<std::uint32_t>(ctx_classes.size());
        contexts.push_back(ctx);
        elements.back().ctx_end = static_cast<std::uint32_t>(contexts.size());
      };

  // C-vertices, indexed by the local name of their IRI.
  for (const rdf::Vertex& v : graph.vertices()) {
    if (v.kind != rdf::VertexKind::kClass) continue;
    add(rdf::IriLocalName(dict.text(v.term)), KeywordMatch::Kind::kClass,
        v.term);
  }

  // R-edge labels.
  for (const auto& [label, unused] : relation_labels) {
    (void)unused;
    add(rdf::IriLocalName(dict.text(label)),
        KeywordMatch::Kind::kRelationLabel, label);
  }

  // A-edge labels, with the classes of their subjects attached
  // ([A-edge, (C-vertex_1..n)]).
  for (const auto& [label, class_counts] : attribute_classes) {
    add(rdf::IriLocalName(dict.text(label)),
        KeywordMatch::Kind::kAttributeLabel, label);
    append_context(label, class_counts);
  }

  // V-vertices, indexed by literal text, with their
  // [V-vertex, A-edge, (C-vertex_1..n)] contexts. Numeric values also enter
  // the sorted range index behind the filter-operator extension.
  for (const auto& [value_vertex, per_attr] : value_contexts) {
    const TermId value_term = graph.vertex(value_vertex).term;
    const std::uint32_t element_index =
        static_cast<std::uint32_t>(elements.size());
    add(dict.text(value_term), KeywordMatch::Kind::kValue, value_term);
    for (const auto& [attr, class_counts] : per_attr) {
      append_context(attr, class_counts);
    }
    if (const auto numeric = ParseNumericLiteral(dict.text(value_term))) {
      numerics.push_back(NumericValueRecord{*numeric, element_index, 0});
    }
  }
  std::sort(numerics.begin(), numerics.end(),
            [](const NumericValueRecord& a, const NumericValueRecord& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.element < b.element;
            });

  ki.elements_ = FlatStorage<ElementRecord>(std::move(elements));
  ki.contexts_ = FlatStorage<ContextRecord>(std::move(contexts));
  ki.context_classes_ = FlatStorage<TermId>(std::move(ctx_classes));
  ki.context_counts_ = FlatStorage<std::uint64_t>(std::move(ctx_counts));
  ki.numeric_values_ = FlatStorage<NumericValueRecord>(std::move(numerics));
  ki.index_.Finalize();
  return ki;
}

KeywordIndex KeywordIndex::FromSnapshotParts(
    text::InvertedIndex index, FlatStorage<ElementRecord> elements,
    FlatStorage<ContextRecord> contexts, FlatStorage<TermId> context_classes,
    FlatStorage<std::uint64_t> context_counts,
    FlatStorage<NumericValueRecord> numeric_values) {
  GRASP_CHECK_EQ(index.num_documents(), elements.size());
  KeywordIndex ki;
  ki.index_ = std::move(index);
  ki.elements_ = std::move(elements);
  ki.contexts_ = std::move(contexts);
  ki.context_classes_ = std::move(context_classes);
  ki.context_counts_ = std::move(context_counts);
  ki.numeric_values_ = std::move(numeric_values);
  return ki;
}

std::vector<AttrContext> KeywordIndex::ContextsOf(
    const ElementRecord& element) const {
  std::vector<AttrContext> result;
  result.reserve(element.ctx_end - element.ctx_begin);
  for (std::uint32_t c = element.ctx_begin; c < element.ctx_end; ++c) {
    const ContextRecord& rec = contexts_[c];
    AttrContext ctx;
    ctx.attribute = rec.attribute;
    ctx.classes.assign(context_classes_.begin() + rec.entry_begin,
                       context_classes_.begin() + rec.entry_end);
    ctx.counts.assign(context_counts_.begin() + rec.entry_begin,
                      context_counts_.begin() + rec.entry_end);
    result.push_back(std::move(ctx));
  }
  return result;
}

std::optional<KeywordMatch> KeywordIndex::LookupFilter(
    const FilterSpec& filter) const {
  // Merge the contexts of every satisfying numeric value: count per
  // (attribute, class) pair.
  std::map<TermId, std::map<TermId, std::uint64_t>> merged;
  bool any = false;
  for (const NumericValueRecord& numeric : numeric_values_) {
    if (!EvalFilterOp(filter.op, numeric.value, filter.value)) continue;
    any = true;
    const ElementRecord& element = elements_[numeric.element];
    for (std::uint32_t c = element.ctx_begin; c < element.ctx_end; ++c) {
      const ContextRecord& rec = contexts_[c];
      auto& class_counts = merged[rec.attribute];
      for (std::uint32_t i = rec.entry_begin; i < rec.entry_end; ++i) {
        class_counts[context_classes_[i]] += context_counts_[i];
      }
    }
  }
  if (!any) return std::nullopt;

  KeywordMatch match;
  match.kind = KeywordMatch::Kind::kValue;
  match.term = rdf::kInvalidTermId;
  match.score = 1.0;  // the operator is an exact, unambiguous specification
  match.is_filter = true;
  match.filter = filter;
  for (const auto& [attr, class_counts] : merged) {
    AttrContext ctx;
    ctx.attribute = attr;
    for (const auto& [cls, count] : class_counts) {
      ctx.classes.push_back(cls);
      ctx.counts.push_back(count);
    }
    match.contexts.push_back(std::move(ctx));
  }
  return match;
}

std::vector<KeywordMatch> KeywordIndex::Lookup(
    std::string_view keyword,
    const text::InvertedIndex::SearchOptions& options) const {
  std::vector<KeywordMatch> matches;
  for (const text::InvertedIndex::Hit& hit : index_.Search(keyword, options)) {
    const ElementRecord& element = elements_[hit.doc];
    KeywordMatch match;
    match.kind = static_cast<KeywordMatch::Kind>(element.kind);
    match.term = element.term;
    match.score = hit.score;
    match.contexts = ContextsOf(element);
    matches.push_back(std::move(match));
  }
  return matches;
}

std::size_t KeywordIndex::MemoryUsageBytes() const {
  return index_.MemoryUsageBytes() + elements_.OwnedBytes() +
         contexts_.OwnedBytes() + context_classes_.OwnedBytes() +
         context_counts_.OwnedBytes() + numeric_values_.OwnedBytes();
}

}  // namespace grasp::keyword
