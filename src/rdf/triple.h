#ifndef GRASP_RDF_TRIPLE_H_
#define GRASP_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/term.h"

namespace grasp::rdf {

/// One RDF statement as interned ids. Subject and predicate are always IRIs;
/// the object may be an IRI or a literal (its kind lives in the Dictionary).
struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
  friend auto operator<=>(const Triple& a, const Triple& b) {
    return std::tie(a.subject, a.predicate, a.object) <=>
           std::tie(b.subject, b.predicate, b.object);
  }
};

}  // namespace grasp::rdf

#endif  // GRASP_RDF_TRIPLE_H_
