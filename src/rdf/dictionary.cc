#include "rdf/dictionary.h"

#include <utility>

#include "common/logging.h"

namespace grasp::rdf {

Dictionary Dictionary::FromSnapshotParts(FlatStorage<std::uint8_t> kinds,
                                         FlatStorage<std::uint64_t> offsets,
                                         FlatStorage<char> text) {
  Dictionary d;
  d.borrowed_ = true;
  d.bor_kinds_ = std::move(kinds);
  d.bor_offsets_ = std::move(offsets);
  d.bor_text_ = std::move(text);
  return d;
}

TermId Dictionary::Intern(TermKind kind, std::string_view text) {
  GRASP_CHECK(!borrowed_) << "Intern into a snapshot-backed dictionary";
  Key key{kind, std::string(text)};
  auto it = ids_->map.find(key);
  if (it != ids_->map.end()) return it->second;
  // Keep both sentinels (kInvalidTermId and the Thing pseudo-term right
  // below it) unreachable as real ids.
  GRASP_CHECK_LT(own_kinds_.size(),
                 static_cast<std::size_t>(kInvalidTermId) - 1);
  const TermId id = static_cast<TermId>(own_kinds_.size());
  own_kinds_.push_back(static_cast<std::uint8_t>(kind));
  own_text_.insert(own_text_.end(), text.begin(), text.end());
  own_offsets_.push_back(own_text_.size());
  ids_->map.emplace(std::move(key), id);
  return id;
}

void Dictionary::BuildIdsFromStorage() const {
  ids_->map.reserve(size());
  for (TermId id = 0; id < size(); ++id) {
    ids_->map.emplace(Key{kind(id), std::string(text(id))}, id);
  }
}

TermId Dictionary::Find(TermKind kind, std::string_view text) const {
  // Interning maintains the map eagerly (it needs it for deduplication); a
  // snapshot-backed dictionary materializes it here, once, on the first
  // lookup-by-text — warm start itself never pays for it.
  std::call_once(ids_->once, [this] {
    if (borrowed_) BuildIdsFromStorage();
  });
  auto it = ids_->map.find(Key{kind, std::string(text)});
  return it == ids_->map.end() ? kInvalidTermId : it->second;
}

std::size_t Dictionary::MemoryUsageBytes() const {
  std::size_t bytes = own_kinds_.capacity() +
                      own_offsets_.capacity() * sizeof(std::uint64_t) +
                      own_text_.capacity();
  // Each map entry stores the key string plus bucket overhead.
  bytes += ids_->map.size() * (sizeof(Key) + sizeof(TermId) + 2 * sizeof(void*));
  for (const auto& [key, id] : ids_->map) bytes += key.text.capacity();
  return bytes;
}

}  // namespace grasp::rdf
