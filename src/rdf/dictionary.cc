#include "rdf/dictionary.h"

#include "common/logging.h"

namespace grasp::rdf {

TermId Dictionary::Intern(TermKind kind, std::string_view text) {
  Key key{kind, std::string(text)};
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  GRASP_CHECK_LT(terms_.size(), static_cast<std::size_t>(kInvalidTermId));
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Term{kind, key.text});
  ids_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Find(TermKind kind, std::string_view text) const {
  auto it = ids_.find(Key{kind, std::string(text)});
  return it == ids_.end() ? kInvalidTermId : it->second;
}

std::size_t Dictionary::MemoryUsageBytes() const {
  std::size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) bytes += t.text.capacity();
  // Each map entry stores the key string again plus bucket overhead.
  bytes += ids_.size() * (sizeof(Key) + sizeof(TermId) + 2 * sizeof(void*));
  for (const auto& [key, id] : ids_) bytes += key.text.capacity();
  return bytes;
}

}  // namespace grasp::rdf
