#include "rdf/snapshot.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace grasp::rdf {
namespace {

constexpr char kMagic[4] = {'G', 'R', 'S', 'P'};
constexpr std::uint8_t kVersion = 1;

void WriteVarint(std::ostream* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->put(static_cast<char>(value));
}

/// Reads one LEB128 varint; false on EOF or overlong encoding.
bool ReadVarint(std::istream* in, std::uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (shift < 64) {
    const int c = in->get();
    if (c == std::char_traits<char>::eof()) return false;
    *value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
    shift += 7;
  }
  return false;  // more than 10 bytes: corrupt
}

}  // namespace

Status WriteSnapshot(const TripleStore& store, const Dictionary& dictionary,
                     std::ostream* out) {
  if (!store.finalized()) {
    return Status::InvalidArgument("snapshot requires a finalized store");
  }
  out->write(kMagic, sizeof(kMagic));
  out->put(static_cast<char>(kVersion));

  WriteVarint(out, dictionary.size());
  for (TermId id = 0; id < dictionary.size(); ++id) {
    const std::string_view text = dictionary.text(id);
    out->put(static_cast<char>(dictionary.kind(id)));
    WriteVarint(out, text.size());
    out->write(text.data(), static_cast<std::streamsize>(text.size()));
  }

  WriteVarint(out, store.size());
  // Triples are sorted (s, p, o) after Finalize: delta-code the subject and
  // restart p/o deltas whenever the previous component changed.
  Triple prev{0, 0, 0};
  bool first = true;
  for (const Triple& t : store.triples()) {
    if (first) {
      WriteVarint(out, t.subject);
      WriteVarint(out, t.predicate);
      WriteVarint(out, t.object);
      first = false;
    } else {
      WriteVarint(out, t.subject - prev.subject);
      if (t.subject != prev.subject) {
        WriteVarint(out, t.predicate);
        WriteVarint(out, t.object);
      } else {
        WriteVarint(out, t.predicate - prev.predicate);
        WriteVarint(out, t.predicate != prev.predicate
                             ? t.object
                             : t.object - prev.object);
      }
    }
    prev = t;
  }
  if (!out->good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Status WriteSnapshotFile(const TripleStore& store,
                         const Dictionary& dictionary,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  return WriteSnapshot(store, dictionary, &out);
}

Status ReadSnapshot(std::istream* in, Dictionary* dictionary,
                    TripleStore* store) {
  if (dictionary->size() != 0 || store->size() != 0) {
    return Status::InvalidArgument(
        "snapshot must be read into an empty dictionary and store");
  }
  char magic[4] = {};
  in->read(magic, sizeof(magic));
  if (in->gcount() != sizeof(magic) ||
      !std::equal(magic, magic + 4, kMagic)) {
    return Status::InvalidArgument("not a grasp snapshot (bad magic)");
  }
  const int version = in->get();
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported snapshot version %d", version));
  }

  std::uint64_t num_terms = 0;
  if (!ReadVarint(in, &num_terms)) {
    return Status::InvalidArgument("truncated snapshot (term count)");
  }
  std::string text;
  for (std::uint64_t i = 0; i < num_terms; ++i) {
    const int kind_byte = in->get();
    std::uint64_t length = 0;
    if (kind_byte == std::char_traits<char>::eof() ||
        !ReadVarint(in, &length)) {
      return Status::InvalidArgument("truncated snapshot (term header)");
    }
    if (kind_byte != static_cast<int>(TermKind::kIri) &&
        kind_byte != static_cast<int>(TermKind::kLiteral)) {
      return Status::InvalidArgument(
          StrFormat("corrupt snapshot: unknown term kind %d", kind_byte));
    }
    text.resize(length);
    in->read(text.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::uint64_t>(in->gcount()) != length) {
      return Status::InvalidArgument("truncated snapshot (term text)");
    }
    const TermId id =
        dictionary->Intern(static_cast<TermKind>(kind_byte), text);
    if (id != i) {
      return Status::InvalidArgument(
          "corrupt snapshot: duplicate dictionary entry");
    }
  }

  std::uint64_t num_triples = 0;
  if (!ReadVarint(in, &num_triples)) {
    return Status::InvalidArgument("truncated snapshot (triple count)");
  }
  Triple prev{0, 0, 0};
  for (std::uint64_t i = 0; i < num_triples; ++i) {
    std::uint64_t ds = 0, a = 0, b = 0;
    if (!ReadVarint(in, &ds) || !ReadVarint(in, &a) || !ReadVarint(in, &b)) {
      return Status::InvalidArgument("truncated snapshot (triples)");
    }
    Triple t;
    if (i == 0) {
      t = Triple{static_cast<TermId>(ds), static_cast<TermId>(a),
                 static_cast<TermId>(b)};
    } else {
      t.subject = prev.subject + static_cast<TermId>(ds);
      if (ds != 0) {
        t.predicate = static_cast<TermId>(a);
        t.object = static_cast<TermId>(b);
      } else {
        t.predicate = prev.predicate + static_cast<TermId>(a);
        t.object = a != 0 ? static_cast<TermId>(b)
                          : prev.object + static_cast<TermId>(b);
      }
    }
    if (t.subject >= dictionary->size() || t.predicate >= dictionary->size() ||
        t.object >= dictionary->size()) {
      return Status::InvalidArgument(
          "corrupt snapshot: triple references unknown term");
    }
    store->Add(t);
    prev = t;
  }
  store->Finalize();
  return Status::Ok();
}

Status ReadSnapshotFile(const std::string& path, Dictionary* dictionary,
                        TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  return ReadSnapshot(&in, dictionary, store);
}

}  // namespace grasp::rdf
