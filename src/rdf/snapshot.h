#ifndef GRASP_RDF_SNAPSHOT_H_
#define GRASP_RDF_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::rdf {

/// Binary snapshot of a dataset (dictionary + triples): the offline-indexing
/// artifact of Fig. 2 made durable. Loading a snapshot is much cheaper than
/// re-parsing N-Triples — terms are stored once in a length-prefixed string
/// table and triples as varint-delta-coded id streams.
///
/// Format (little-endian, varint = LEB128):
///   magic "GRSP"  u8 version  varint num_terms
///   per term: u8 kind, varint length, bytes
///   varint num_triples
///   per triple (sorted SPO): varint delta-coded s, p, o
/// The store is written in finalized order; ReadSnapshot() finalizes the
/// output store, so it is ready for use.

/// Serializes `store` (must be finalized) and `dictionary` to `out`.
Status WriteSnapshot(const TripleStore& store, const Dictionary& dictionary,
                     std::ostream* out);
Status WriteSnapshotFile(const TripleStore& store,
                         const Dictionary& dictionary,
                         const std::string& path);

/// Deserializes into empty `dictionary` / `store`; finalizes the store.
/// Returns InvalidArgument on malformed or truncated input.
Status ReadSnapshot(std::istream* in, Dictionary* dictionary,
                    TripleStore* store);
Status ReadSnapshotFile(const std::string& path, Dictionary* dictionary,
                        TripleStore* store);

}  // namespace grasp::rdf

#endif  // GRASP_RDF_SNAPSHOT_H_
