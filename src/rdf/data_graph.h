#ifndef GRASP_RDF_DATA_GRAPH_H_
#define GRASP_RDF_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_storage.h"
#include "graph/csr.h"
#include "graph/csr_graph.h"
#include "graph/edge_filter.h"
#include "graph/filtered_graph.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::rdf {

/// Well-known predicate IRIs that give triples their special interpretation
/// (Definition 1: `type` and `subclass` edges).
struct Vocabulary {
  std::string type_iri = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  std::string subclass_iri = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
};

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr VertexId kInvalidVertexId = 0xffffffffu;

/// Pseudo term denoting the `Thing` class that aggregates all untyped
/// entities (Definition 4). Never a real Dictionary id.
inline constexpr TermId kThingTerm = 0xfffffffeu;

/// Vertex partition of Definition 1: E-vertices (entities), C-vertices
/// (classes) and V-vertices (data values).
enum class VertexKind : std::uint8_t { kEntity = 0, kClass = 1, kValue = 2 };

/// Edge partition of Definition 1: R-edges (entity-entity relations), A-edges
/// (entity-attribute assignments), plus the two predefined edge types.
enum class EdgeKind : std::uint8_t {
  kRelation = 0,
  kAttribute = 1,
  kType = 2,
  kSubclass = 3,
};

struct Vertex {
  TermId term = kInvalidTermId;
  VertexKind kind = VertexKind::kEntity;
};

struct Edge {
  TermId label = kInvalidTermId;
  VertexId from = kInvalidVertexId;
  VertexId to = kInvalidVertexId;
  EdgeKind kind = EdgeKind::kRelation;
};

/// Bit of an EdgeKind in a kind mask (KindFilter).
inline constexpr unsigned EdgeKindBit(EdgeKind kind) {
  return 1u << static_cast<unsigned>(kind);
}

/// The data graph G of Definition 1, derived from a finalized TripleStore by
/// classifying vertices and edges:
///
///  - a term is a C-vertex if it occurs as the object of a `type` triple or on
///    either side of a `subclass` triple;
///  - literal objects are V-vertices (one vertex per distinct literal value);
///  - every other IRI subject/object is an E-vertex;
///  - a triple becomes a `type`/`subclass`/A-/R-edge accordingly (a `type` or
///    `subclass` triple with a literal object degrades to an A-edge).
///
/// The graph borrows the Dictionary and must not outlive it.
class DataGraph {
 public:
  /// Builds the graph. `store` must be finalized.
  static DataGraph Build(const TripleStore& store, const Dictionary& dictionary,
                         const Vocabulary& vocabulary = Vocabulary());

  /// Counts of the vertex partition, serialized alongside the topology in
  /// index snapshots (recomputing them would need a full vertex sweep).
  struct SnapshotScalars {
    std::size_t num_entities = 0;
    std::size_t num_classes = 0;
    std::size_t num_values = 0;
    TermId type_term = kInvalidTermId;
    TermId subclass_term = kInvalidTermId;
  };

  /// Adopts a prebuilt topology from an index snapshot: the CSR core, the
  /// entity->class array and the term->vertex table all point (zero-copy)
  /// into the mapping — nothing is rebuilt. Produces a graph
  /// indistinguishable from Build() on the same data.
  static DataGraph FromSnapshotParts(const Dictionary& dictionary,
                                     graph::CsrGraph<Vertex, Edge> csr,
                                     graph::CsrArray classes,
                                     FlatStorage<VertexId> vertex_of_term,
                                     const SnapshotScalars& scalars);

  /// The scalar fields an index snapshot must persist.
  SnapshotScalars snapshot_scalars() const {
    return SnapshotScalars{num_entities_, num_classes_, num_values_,
                           type_term_, subclass_term_};
  }

  /// Entity -> class-vertex CSR array, for snapshot serialization.
  const graph::CsrArray& classes_csr() const { return classes_; }

  DataGraph(const DataGraph&) = delete;
  DataGraph& operator=(const DataGraph&) = delete;
  DataGraph(DataGraph&&) = default;
  DataGraph& operator=(DataGraph&&) = default;

  std::span<const Vertex> vertices() const { return csr_.nodes(); }
  std::span<const Edge> edges() const { return csr_.edges(); }
  const Dictionary& dictionary() const { return *dictionary_; }

  const Vertex& vertex(VertexId v) const { return csr_.node(v); }
  const Edge& edge(EdgeId e) const { return csr_.edge(e); }

  /// The shared immutable topology core (out/in adjacency).
  const graph::CsrGraph<Vertex, Edge>& csr() const { return csr_; }

  /// Vertex for a term, or kInvalidVertexId if the term does not occur as a
  /// subject or object. O(1): term ids are dense, so the table is a direct-
  /// address array (which also makes it snapshot-mappable as-is).
  VertexId VertexOf(TermId term) const {
    return term < vertex_of_term_.size() ? vertex_of_term_[term]
                                         : kInvalidVertexId;
  }

  /// The term->vertex table, for snapshot serialization (one entry per
  /// dictionary term; kInvalidVertexId for terms without a vertex).
  std::span<const VertexId> vertex_of_term() const {
    return vertex_of_term_.view();
  }

  /// Edges leaving / entering a vertex.
  std::span<const EdgeId> OutEdges(VertexId v) const { return csr_.OutEdges(v); }
  std::span<const EdgeId> InEdges(VertexId v) const { return csr_.InEdges(v); }

  /// Edge mask admitting the kinds whose EdgeKindBit is set in `kind_mask`
  /// — e.g. EdgeKindBit(EdgeKind::kRelation) restricts traversal to the
  /// R-edge partition of Definition 1. One linear sweep over the edge
  /// records; share the result across queries and threads.
  graph::EdgeFilter KindFilter(unsigned kind_mask) const;

  /// Edge mask admitting edges whose label is in `sorted_predicates`
  /// (ascending TermIds). Kinds in `extra_kind_mask` are admitted
  /// regardless of label (pass EdgeKindBit(EdgeKind::kType) etc. to keep
  /// structural edges traversable under a predicate scope).
  graph::EdgeFilter PredicateFilter(std::span<const TermId> sorted_predicates,
                                    unsigned extra_kind_mask = 0) const;

  /// Copy-free restricted adjacency view over this graph's CSR core. The
  /// filter must outlive the view (and this graph must outlive both).
  graph::FilteredGraph<Vertex, Edge> Filtered(
      const graph::EdgeFilter& filter) const {
    return graph::FilteredGraph<Vertex, Edge>(csr_, filter);
  }

  /// Class vertices an entity is typed with (targets of its `type` edges).
  /// Empty for untyped entities (they aggregate into `Thing` in the summary).
  std::span<const VertexId> ClassesOf(VertexId v) const { return classes_[v]; }

  /// Label text helpers.
  std::string_view VertexText(VertexId v) const {
    return dictionary_->text(csr_.node(v).term);
  }
  std::string_view EdgeLabelText(EdgeId e) const {
    return dictionary_->text(csr_.edge(e).label);
  }

  std::size_t NumVertices() const { return csr_.NumNodes(); }
  std::size_t NumEdges() const { return csr_.NumEdges(); }
  std::size_t NumEntities() const { return num_entities_; }
  std::size_t NumClasses() const { return num_classes_; }
  std::size_t NumValues() const { return num_values_; }

  TermId type_term() const { return type_term_; }
  TermId subclass_term() const { return subclass_term_; }

  /// Approximate heap footprint in bytes (graph structures only, excluding
  /// the shared Dictionary).
  std::size_t MemoryUsageBytes() const;

 private:
  explicit DataGraph(const Dictionary& dictionary)
      : dictionary_(&dictionary) {}

  const Dictionary* dictionary_;
  /// Shared immutable topology core: vertex/edge records + out/in CSR.
  graph::CsrGraph<Vertex, Edge> csr_;
  /// Dense term -> vertex table (see VertexOf).
  FlatStorage<VertexId> vertex_of_term_;
  /// Entity -> class vertices (targets of `type` edges).
  graph::CsrArray classes_;

  std::size_t num_entities_ = 0, num_classes_ = 0, num_values_ = 0;
  TermId type_term_ = kInvalidTermId;
  TermId subclass_term_ = kInvalidTermId;
};

}  // namespace grasp::rdf

#endif  // GRASP_RDF_DATA_GRAPH_H_
