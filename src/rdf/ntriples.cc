#include "rdf/ntriples.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace grasp::rdf {
namespace {

/// Cursor over one physical line.
struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;
  int line_number = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("line %d, column %zu: %s", line_number,
                                        pos + 1, what.c_str()));
  }
};

Status ParseIri(LineCursor* cur, std::string* out) {
  if (cur->AtEnd() || cur->Peek() != '<') return cur->Error("expected '<'");
  ++cur->pos;
  out->clear();
  while (!cur->AtEnd() && cur->Peek() != '>') {
    out->push_back(cur->Peek());
    ++cur->pos;
  }
  if (cur->AtEnd()) return cur->Error("unterminated IRI");
  ++cur->pos;  // consume '>'
  if (out->empty()) return cur->Error("empty IRI");
  return Status::Ok();
}

Status ParseBlankNode(LineCursor* cur, std::string* out) {
  // Precondition: cursor at '_'.
  out->clear();
  out->push_back('_');
  ++cur->pos;
  if (cur->AtEnd() || cur->Peek() != ':') return cur->Error("expected ':'");
  out->push_back(':');
  ++cur->pos;
  while (!cur->AtEnd() && (std::isalnum(static_cast<unsigned char>(cur->Peek())) ||
                           cur->Peek() == '_' || cur->Peek() == '-' ||
                           cur->Peek() == '.')) {
    out->push_back(cur->Peek());
    ++cur->pos;
  }
  if (out->size() == 2) return cur->Error("empty blank node label");
  return Status::Ok();
}

Status ParseLiteral(LineCursor* cur, std::string* out) {
  // Precondition: cursor at '"'.
  ++cur->pos;
  out->clear();
  while (true) {
    if (cur->AtEnd()) return cur->Error("unterminated literal");
    char c = cur->Peek();
    ++cur->pos;
    if (c == '"') break;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (cur->AtEnd()) return cur->Error("dangling escape");
    char esc = cur->Peek();
    ++cur->pos;
    switch (esc) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 'u': {
        if (cur->pos + 4 > cur->text.size()) {
          return cur->Error("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = cur->text[cur->pos + static_cast<std::size_t>(i)];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return cur->Error("bad hex digit in \\u escape");
          }
        }
        cur->pos += 4;
        // UTF-8 encode (BMP only).
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xc0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          out->push_back(static_cast<char>(0xe0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        break;
      }
      default:
        return cur->Error("unknown escape");
    }
  }
  // Optional language tag or datatype; both are parsed and dropped.
  if (!cur->AtEnd() && cur->Peek() == '@') {
    ++cur->pos;
    while (!cur->AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(cur->Peek())) ||
            cur->Peek() == '-')) {
      ++cur->pos;
    }
  } else if (cur->pos + 1 < cur->text.size() && cur->Peek() == '^' &&
             cur->text[cur->pos + 1] == '^') {
    cur->pos += 2;
    std::string datatype;
    GRASP_RETURN_IF_ERROR(ParseIri(cur, &datatype));
  }
  return Status::Ok();
}

Status ParseLine(LineCursor* cur, Dictionary* dictionary, TripleStore* store) {
  cur->SkipSpace();
  if (cur->AtEnd() || cur->Peek() == '#') return Status::Ok();

  std::string text;
  // Subject: IRI or blank node.
  if (cur->Peek() == '_') {
    GRASP_RETURN_IF_ERROR(ParseBlankNode(cur, &text));
  } else {
    GRASP_RETURN_IF_ERROR(ParseIri(cur, &text));
  }
  const TermId subject = dictionary->InternIri(text);

  cur->SkipSpace();
  GRASP_RETURN_IF_ERROR(ParseIri(cur, &text));
  const TermId predicate = dictionary->InternIri(text);

  cur->SkipSpace();
  if (cur->AtEnd()) return cur->Error("missing object");
  TermId object;
  if (cur->Peek() == '"') {
    GRASP_RETURN_IF_ERROR(ParseLiteral(cur, &text));
    object = dictionary->InternLiteral(text);
  } else if (cur->Peek() == '_') {
    GRASP_RETURN_IF_ERROR(ParseBlankNode(cur, &text));
    object = dictionary->InternIri(text);
  } else {
    GRASP_RETURN_IF_ERROR(ParseIri(cur, &text));
    object = dictionary->InternIri(text);
  }

  cur->SkipSpace();
  if (cur->AtEnd() || cur->Peek() != '.') return cur->Error("expected '.'");
  ++cur->pos;
  cur->SkipSpace();
  if (!cur->AtEnd() && cur->Peek() != '#') {
    return cur->Error("trailing content after '.'");
  }

  store->Add(subject, predicate, object);
  return Status::Ok();
}

}  // namespace

Status ParseNTriplesString(std::string_view text, Dictionary* dictionary,
                           TripleStore* store) {
  int line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    ++line_number;
    std::string_view line = text.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    LineCursor cur{line, 0, line_number};
    GRASP_RETURN_IF_ERROR(ParseLine(&cur, dictionary, store));
    if (end == text.size()) break;
    begin = end + 1;
  }
  return Status::Ok();
}

Status ParseNTriplesFile(const std::string& path, Dictionary* dictionary,
                         TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNTriplesString(buffer.str(), dictionary, store);
}

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void WriteNTriples(const TripleStore& store, const Dictionary& dictionary,
                   std::ostream* out) {
  auto write_resource = [&](TermId id) {
    const std::string_view text = dictionary.text(id);
    if (StartsWith(text, "_:")) {
      *out << text;
    } else {
      *out << '<' << text << '>';
    }
  };
  for (const Triple& t : store.triples()) {
    write_resource(t.subject);
    *out << ' ';
    write_resource(t.predicate);
    *out << ' ';
    if (dictionary.kind(t.object) == TermKind::kLiteral) {
      *out << '"' << EscapeLiteral(dictionary.text(t.object)) << '"';
    } else {
      write_resource(t.object);
    }
    *out << " .\n";
  }
}

}  // namespace grasp::rdf
