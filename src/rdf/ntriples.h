#ifndef GRASP_RDF_NTRIPLES_H_
#define GRASP_RDF_NTRIPLES_H_

#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::rdf {

/// Parses N-Triples text into `store`, interning terms into `dictionary`.
///
/// Supported grammar (a pragmatic N-Triples subset):
///  - `<iri> <iri> <iri> .` and `<iri> <iri> "literal" .`
///  - blank-node labels `_:name` in subject/object position (interned as IRIs
///    with their `_:` spelling preserved),
///  - literal escapes \" \\ \n \t \r and \uXXXX (BMP only),
///  - language tags (`@en`) and datatype suffixes (`^^<iri>`), parsed and
///    dropped — the engine treats every literal as its plain text,
///  - `#` comments and blank lines.
///
/// The caller is responsible for calling store->Finalize() afterwards.
Status ParseNTriplesString(std::string_view text, Dictionary* dictionary,
                           TripleStore* store);

/// Reads `path` and parses it with ParseNTriplesString.
Status ParseNTriplesFile(const std::string& path, Dictionary* dictionary,
                         TripleStore* store);

/// Serializes every triple in `store` as N-Triples lines. Literal values are
/// re-escaped; the output round-trips through ParseNTriplesString.
void WriteNTriples(const TripleStore& store, const Dictionary& dictionary,
                   std::ostream* out);

/// Escapes a literal value for embedding between double quotes.
std::string EscapeLiteral(std::string_view value);

}  // namespace grasp::rdf

#endif  // GRASP_RDF_NTRIPLES_H_
