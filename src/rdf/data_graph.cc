#include "rdf/data_graph.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/aligned.h"
#include "common/logging.h"

namespace grasp::rdf {

DataGraph DataGraph::Build(const TripleStore& store,
                           const Dictionary& dictionary,
                           const Vocabulary& vocabulary) {
  GRASP_CHECK(store.finalized());
  DataGraph g(dictionary);
  g.type_term_ = dictionary.Find(TermKind::kIri, vocabulary.type_iri);
  g.subclass_term_ = dictionary.Find(TermKind::kIri, vocabulary.subclass_iri);

  // Pass 1: find class terms (objects of `type`, endpoints of `subclass`).
  std::unordered_set<TermId> class_terms;
  for (const Triple& t : store.triples()) {
    const bool object_is_iri = dictionary.kind(t.object) == TermKind::kIri;
    if (t.predicate == g.type_term_ && object_is_iri) {
      class_terms.insert(t.object);
    } else if (t.predicate == g.subclass_term_ && object_is_iri) {
      class_terms.insert(t.subject);
      class_terms.insert(t.object);
    }
  }

  // Pass 2: create vertices and edges. The term->vertex table is a dense
  // direct-address array (term ids are contiguous), doubling as the
  // snapshot-mappable lookup structure.
  AlignedVector<Vertex> vertices;
  AlignedVector<Edge> edges;
  AlignedVector<VertexId> vertex_of_term(dictionary.size(), kInvalidVertexId);
  auto vertex_for = [&](TermId term) -> VertexId {
    VertexId& slot = vertex_of_term[term];
    if (slot != kInvalidVertexId) return slot;
    VertexKind kind;
    if (dictionary.kind(term) == TermKind::kLiteral) {
      kind = VertexKind::kValue;
      ++g.num_values_;
    } else if (class_terms.count(term) > 0) {
      kind = VertexKind::kClass;
      ++g.num_classes_;
    } else {
      kind = VertexKind::kEntity;
      ++g.num_entities_;
    }
    slot = static_cast<VertexId>(vertices.size());
    vertices.push_back(Vertex{term, kind});
    return slot;
  };

  for (const Triple& t : store.triples()) {
    const VertexId from = vertex_for(t.subject);
    const VertexId to = vertex_for(t.object);
    EdgeKind kind;
    if (vertices[to].kind == VertexKind::kValue) {
      // A `type`/`subclass` assertion about a literal degrades to an A-edge.
      kind = EdgeKind::kAttribute;
    } else if (t.predicate == g.type_term_) {
      kind = EdgeKind::kType;
    } else if (t.predicate == g.subclass_term_) {
      kind = EdgeKind::kSubclass;
    } else {
      kind = EdgeKind::kRelation;
    }
    edges.push_back(Edge{t.predicate, from, to, kind});
  }

  const std::uint32_t num_vertices = static_cast<std::uint32_t>(vertices.size());
  g.vertex_of_term_ = FlatStorage<VertexId>(std::move(vertex_of_term));
  g.csr_ = graph::CsrGraph<Vertex, Edge>::Build(
      std::move(vertices), std::move(edges),
      graph::kOutAdjacency | graph::kInAdjacency);
  // Entity -> classes, from `type` edges.
  g.classes_ = graph::CsrArray::Build(num_vertices, [&g](auto&& sink) {
    for (const Edge& e : g.csr_.edges()) {
      if (e.kind == EdgeKind::kType) sink(e.from, e.to);
    }
  });
  return g;
}

DataGraph DataGraph::FromSnapshotParts(const Dictionary& dictionary,
                                       graph::CsrGraph<Vertex, Edge> csr,
                                       graph::CsrArray classes,
                                       FlatStorage<VertexId> vertex_of_term,
                                       const SnapshotScalars& scalars) {
  DataGraph g(dictionary);
  g.csr_ = std::move(csr);
  g.classes_ = std::move(classes);
  g.vertex_of_term_ = std::move(vertex_of_term);
  g.num_entities_ = scalars.num_entities;
  g.num_classes_ = scalars.num_classes;
  g.num_values_ = scalars.num_values;
  g.type_term_ = scalars.type_term;
  g.subclass_term_ = scalars.subclass_term;
  return g;
}

graph::EdgeFilter DataGraph::KindFilter(unsigned kind_mask) const {
  return graph::EdgeFilter::Build(
      static_cast<std::uint32_t>(csr_.NumEdges()), [&](std::uint32_t e) {
        return (EdgeKindBit(csr_.edge(e).kind) & kind_mask) != 0;
      });
}

graph::EdgeFilter DataGraph::PredicateFilter(
    std::span<const TermId> sorted_predicates, unsigned extra_kind_mask) const {
  return graph::EdgeFilter::Build(
      static_cast<std::uint32_t>(csr_.NumEdges()), [&](std::uint32_t e) {
        const Edge& edge = csr_.edge(e);
        if ((EdgeKindBit(edge.kind) & extra_kind_mask) != 0) return true;
        return std::binary_search(sorted_predicates.begin(),
                                  sorted_predicates.end(), edge.label);
      });
}

std::size_t DataGraph::MemoryUsageBytes() const {
  return csr_.MemoryUsageBytes() + classes_.MemoryUsageBytes() +
         vertex_of_term_.OwnedBytes();
}

}  // namespace grasp::rdf
