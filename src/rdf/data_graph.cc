#include "rdf/data_graph.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace grasp::rdf {

DataGraph DataGraph::Build(const TripleStore& store,
                           const Dictionary& dictionary,
                           const Vocabulary& vocabulary) {
  GRASP_CHECK(store.finalized());
  DataGraph g(dictionary);
  g.type_term_ = dictionary.Find(TermKind::kIri, vocabulary.type_iri);
  g.subclass_term_ = dictionary.Find(TermKind::kIri, vocabulary.subclass_iri);

  // Pass 1: find class terms (objects of `type`, endpoints of `subclass`).
  std::unordered_set<TermId> class_terms;
  for (const Triple& t : store.triples()) {
    const bool object_is_iri = dictionary.kind(t.object) == TermKind::kIri;
    if (t.predicate == g.type_term_ && object_is_iri) {
      class_terms.insert(t.object);
    } else if (t.predicate == g.subclass_term_ && object_is_iri) {
      class_terms.insert(t.subject);
      class_terms.insert(t.object);
    }
  }

  // Pass 2: create vertices and edges.
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
  auto vertex_for = [&](TermId term) -> VertexId {
    auto it = g.vertex_of_term_.find(term);
    if (it != g.vertex_of_term_.end()) return it->second;
    VertexKind kind;
    if (dictionary.kind(term) == TermKind::kLiteral) {
      kind = VertexKind::kValue;
      ++g.num_values_;
    } else if (class_terms.count(term) > 0) {
      kind = VertexKind::kClass;
      ++g.num_classes_;
    } else {
      kind = VertexKind::kEntity;
      ++g.num_entities_;
    }
    const VertexId id = static_cast<VertexId>(vertices.size());
    vertices.push_back(Vertex{term, kind});
    g.vertex_of_term_.emplace(term, id);
    return id;
  };

  for (const Triple& t : store.triples()) {
    const VertexId from = vertex_for(t.subject);
    const VertexId to = vertex_for(t.object);
    EdgeKind kind;
    if (vertices[to].kind == VertexKind::kValue) {
      // A `type`/`subclass` assertion about a literal degrades to an A-edge.
      kind = EdgeKind::kAttribute;
    } else if (t.predicate == g.type_term_) {
      kind = EdgeKind::kType;
    } else if (t.predicate == g.subclass_term_) {
      kind = EdgeKind::kSubclass;
    } else {
      kind = EdgeKind::kRelation;
    }
    edges.push_back(Edge{t.predicate, from, to, kind});
  }

  const std::uint32_t num_vertices = static_cast<std::uint32_t>(vertices.size());
  g.csr_ = graph::CsrGraph<Vertex, Edge>::Build(
      std::move(vertices), std::move(edges),
      graph::kOutAdjacency | graph::kInAdjacency);
  // Entity -> classes, from `type` edges.
  g.classes_ = graph::CsrArray::Build(num_vertices, [&g](auto&& sink) {
    for (const Edge& e : g.csr_.edges()) {
      if (e.kind == EdgeKind::kType) sink(e.from, e.to);
    }
  });
  return g;
}

VertexId DataGraph::VertexOf(TermId term) const {
  auto it = vertex_of_term_.find(term);
  return it == vertex_of_term_.end() ? kInvalidVertexId : it->second;
}

std::size_t DataGraph::MemoryUsageBytes() const {
  return csr_.MemoryUsageBytes() + classes_.MemoryUsageBytes() +
         vertex_of_term_.size() *
             (sizeof(TermId) + sizeof(VertexId) + 2 * sizeof(void*));
}

}  // namespace grasp::rdf
