#include "rdf/data_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace grasp::rdf {

DataGraph DataGraph::Build(const TripleStore& store,
                           const Dictionary& dictionary,
                           const Vocabulary& vocabulary) {
  GRASP_CHECK(store.finalized());
  DataGraph g(dictionary);
  g.type_term_ = dictionary.Find(TermKind::kIri, vocabulary.type_iri);
  g.subclass_term_ = dictionary.Find(TermKind::kIri, vocabulary.subclass_iri);

  // Pass 1: find class terms (objects of `type`, endpoints of `subclass`).
  std::unordered_set<TermId> class_terms;
  for (const Triple& t : store.triples()) {
    const bool object_is_iri = dictionary.kind(t.object) == TermKind::kIri;
    if (t.predicate == g.type_term_ && object_is_iri) {
      class_terms.insert(t.object);
    } else if (t.predicate == g.subclass_term_ && object_is_iri) {
      class_terms.insert(t.subject);
      class_terms.insert(t.object);
    }
  }

  // Pass 2: create vertices and edges.
  auto vertex_for = [&](TermId term) -> VertexId {
    auto it = g.vertex_of_term_.find(term);
    if (it != g.vertex_of_term_.end()) return it->second;
    VertexKind kind;
    if (dictionary.kind(term) == TermKind::kLiteral) {
      kind = VertexKind::kValue;
      ++g.num_values_;
    } else if (class_terms.count(term) > 0) {
      kind = VertexKind::kClass;
      ++g.num_classes_;
    } else {
      kind = VertexKind::kEntity;
      ++g.num_entities_;
    }
    const VertexId id = static_cast<VertexId>(g.vertices_.size());
    g.vertices_.push_back(Vertex{term, kind});
    g.vertex_of_term_.emplace(term, id);
    return id;
  };

  for (const Triple& t : store.triples()) {
    const VertexId from = vertex_for(t.subject);
    const VertexId to = vertex_for(t.object);
    EdgeKind kind;
    if (g.vertices_[to].kind == VertexKind::kValue) {
      // A `type`/`subclass` assertion about a literal degrades to an A-edge.
      kind = EdgeKind::kAttribute;
    } else if (t.predicate == g.type_term_) {
      kind = EdgeKind::kType;
    } else if (t.predicate == g.subclass_term_) {
      kind = EdgeKind::kSubclass;
    } else {
      kind = EdgeKind::kRelation;
    }
    g.edges_.push_back(Edge{t.predicate, from, to, kind});
  }

  g.BuildAdjacency();
  return g;
}

void DataGraph::BuildAdjacency() {
  const std::size_t nv = vertices_.size();
  const std::size_t ne = edges_.size();
  out_offsets_.assign(nv + 1, 0);
  in_offsets_.assign(nv + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_edges_.resize(ne);
  in_edges_.resize(ne);
  std::vector<std::uint32_t> out_fill(out_offsets_.begin(),
                                      out_offsets_.end() - 1);
  std::vector<std::uint32_t> in_fill(in_offsets_.begin(),
                                     in_offsets_.end() - 1);
  for (std::size_t e = 0; e < ne; ++e) {
    out_edges_[out_fill[edges_[e].from]++] = static_cast<EdgeId>(e);
    in_edges_[in_fill[edges_[e].to]++] = static_cast<EdgeId>(e);
  }

  // Entity -> classes CSR, from `type` edges.
  class_offsets_.assign(nv + 1, 0);
  for (const Edge& e : edges_) {
    if (e.kind == EdgeKind::kType) ++class_offsets_[e.from + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) {
    class_offsets_[v + 1] += class_offsets_[v];
  }
  class_targets_.resize(class_offsets_[nv]);
  std::vector<std::uint32_t> class_fill(class_offsets_.begin(),
                                        class_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    if (e.kind == EdgeKind::kType) {
      class_targets_[class_fill[e.from]++] = e.to;
    }
  }
}

VertexId DataGraph::VertexOf(TermId term) const {
  auto it = vertex_of_term_.find(term);
  return it == vertex_of_term_.end() ? kInvalidVertexId : it->second;
}

std::span<const EdgeId> DataGraph::OutEdges(VertexId v) const {
  return {out_edges_.data() + out_offsets_[v],
          out_edges_.data() + out_offsets_[v + 1]};
}

std::span<const EdgeId> DataGraph::InEdges(VertexId v) const {
  return {in_edges_.data() + in_offsets_[v],
          in_edges_.data() + in_offsets_[v + 1]};
}

std::span<const VertexId> DataGraph::ClassesOf(VertexId v) const {
  return {class_targets_.data() + class_offsets_[v],
          class_targets_.data() + class_offsets_[v + 1]};
}

std::size_t DataGraph::MemoryUsageBytes() const {
  return vertices_.capacity() * sizeof(Vertex) +
         edges_.capacity() * sizeof(Edge) +
         vertex_of_term_.size() *
             (sizeof(TermId) + sizeof(VertexId) + 2 * sizeof(void*)) +
         (out_offsets_.capacity() + in_offsets_.capacity() +
          class_offsets_.capacity()) *
             sizeof(std::uint32_t) +
         (out_edges_.capacity() + in_edges_.capacity()) * sizeof(EdgeId) +
         class_targets_.capacity() * sizeof(VertexId);
}

}  // namespace grasp::rdf
