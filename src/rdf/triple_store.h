#ifndef GRASP_RDF_TRIPLE_STORE_H_
#define GRASP_RDF_TRIPLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_storage.h"
#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace grasp::rdf {

/// In-memory triple table with three sorted permutation indexes (SPO, POS,
/// OSP), mirroring the single-table RDF storage scheme the paper assumes
/// (Fig. 1b) with the index layout of modern RDF stores.
///
/// Usage: Add() triples (duplicates allowed), then Finalize() once; after
/// finalization the store is immutable and all scan patterns are O(log n)
/// seek + linear in the result size. The finalized table and permutations
/// live in FlatStorage, so a store can also be adopted zero-copy from an
/// mmap-ed index snapshot (FromSnapshotParts).
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Appends a triple. Must not be called after Finalize().
  void Add(const Triple& triple);
  void Add(TermId s, TermId p, TermId o) { Add(Triple{s, p, o}); }

  /// Sorts, deduplicates and builds the POS and OSP permutations. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }
  std::size_t size() const { return triples().size(); }
  std::span<const Triple> triples() const {
    return finalized_ ? triples_.view()
                      : std::span<const Triple>(building_);
  }

  /// Per-predicate statistics for the evaluator's join planning: the average
  /// number of triples per distinct subject (object) under this predicate —
  /// the expected fan-out once the subject (object) variable is bound.
  struct PredicateStats {
    double per_subject = 1.0;  // avg triples per distinct subject
    double per_object = 1.0;   // avg triples per distinct object
  };

  /// Adopts a finalized table from an index snapshot: triples and the POS /
  /// OSP permutations point (zero-copy) into the mapping; the predicate
  /// statistics come pre-aggregated from the snapshot. The loader validates
  /// sortedness-independent safety invariants (permutation values in range)
  /// before calling this.
  static TripleStore FromSnapshotParts(
      FlatStorage<Triple> triples, FlatStorage<std::uint32_t> pos,
      FlatStorage<std::uint32_t> osp,
      std::vector<std::pair<TermId, PredicateStats>> predicate_stats);

  /// Triple pattern: kInvalidTermId acts as a wildcard in any position.
  struct Pattern {
    TermId subject = kInvalidTermId;
    TermId predicate = kInvalidTermId;
    TermId object = kInvalidTermId;
  };

  /// Invokes `fn` for every triple matching `pattern`. Returns the number of
  /// matches. If `fn` returns false, the scan stops early (the count then
  /// reflects triples visited). Requires Finalize().
  std::size_t Scan(const Pattern& pattern,
                   const std::function<bool(const Triple&)>& fn) const;

  /// Number of triples matching `pattern`. Requires Finalize().
  std::size_t Count(const Pattern& pattern) const;

  /// True if the exact triple is present. Requires Finalize().
  bool Contains(const Triple& triple) const;

  /// Number of triples with the given predicate (used by the query
  /// evaluator's selectivity ordering). Requires Finalize().
  std::size_t PredicateCardinality(TermId predicate) const;

  /// Returns 1.0 for unknown predicates. Requires Finalize().
  double AvgTriplesPerSubject(TermId predicate) const;
  double AvgTriplesPerObject(TermId predicate) const;

  /// The raw permutations and statistics, for snapshot serialization.
  std::span<const std::uint32_t> pos_permutation() const { return pos_.view(); }
  std::span<const std::uint32_t> osp_permutation() const { return osp_.view(); }
  const std::unordered_map<TermId, PredicateStats>& predicate_stats() const {
    return predicate_stats_;
  }

  /// Approximate heap footprint in bytes (owned storage only; mmap-backed
  /// snapshot storage is accounted separately).
  std::size_t MemoryUsageBytes() const;

 private:
  enum class Order { kSpo, kPos, kOsp };

  /// Picks the cheapest permutation for a pattern and returns the contiguous
  /// [begin, end) range of matching positions in that permutation.
  void SeekRange(const Pattern& pattern, Order* order, std::size_t* begin,
                 std::size_t* end) const;

  const Triple& TripleAt(Order order, std::size_t pos) const;

  AlignedVector<Triple> building_;     // staging area before Finalize
  FlatStorage<Triple> triples_;        // sorted (s, p, o) after Finalize
  FlatStorage<std::uint32_t> pos_;     // permutation sorted by (p, o, s)
  FlatStorage<std::uint32_t> osp_;     // permutation sorted by (o, s, p)
  std::unordered_map<TermId, PredicateStats> predicate_stats_;
  bool finalized_ = false;
};

}  // namespace grasp::rdf

#endif  // GRASP_RDF_TRIPLE_STORE_H_
