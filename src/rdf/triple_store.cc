#include "rdf/triple_store.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace grasp::rdf {
namespace {

/// Component order of a permutation: indexes into {subject, predicate,
/// object} in the permutation's sort order.
constexpr std::array<int, 3> kSpoOrder = {0, 1, 2};
constexpr std::array<int, 3> kPosOrder = {1, 2, 0};
constexpr std::array<int, 3> kOspOrder = {2, 0, 1};

TermId Component(const Triple& t, int which) {
  switch (which) {
    case 0:
      return t.subject;
    case 1:
      return t.predicate;
    default:
      return t.object;
  }
}

TermId Component(const TripleStore::Pattern& p, int which) {
  switch (which) {
    case 0:
      return p.subject;
    case 1:
      return p.predicate;
    default:
      return p.object;
  }
}

}  // namespace

void TripleStore::Add(const Triple& triple) {
  GRASP_CHECK(!finalized_) << "TripleStore::Add after Finalize";
  GRASP_CHECK_NE(triple.subject, kInvalidTermId);
  GRASP_CHECK_NE(triple.predicate, kInvalidTermId);
  GRASP_CHECK_NE(triple.object, kInvalidTermId);
  building_.push_back(triple);
}

void TripleStore::Finalize() {
  if (finalized_) return;
  AlignedVector<Triple> triples = std::move(building_);
  building_.clear();
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  const std::size_t n = triples.size();
  GRASP_CHECK_LE(n, static_cast<std::size_t>(UINT32_MAX));
  AlignedVector<std::uint32_t> pos(n), osp(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = static_cast<std::uint32_t>(i);
    osp[i] = static_cast<std::uint32_t>(i);
  }
  auto by = [&triples](const std::array<int, 3>& order) {
    return [&triples, order](std::uint32_t a, std::uint32_t b) {
      const Triple& ta = triples[a];
      const Triple& tb = triples[b];
      for (int which : order) {
        const TermId ca = Component(ta, which);
        const TermId cb = Component(tb, which);
        if (ca != cb) return ca < cb;
      }
      return false;
    };
  };
  std::sort(pos.begin(), pos.end(), by(kPosOrder));
  std::sort(osp.begin(), osp.end(), by(kOspOrder));

  // Per-predicate fan-out statistics for the evaluator's join planner. One
  // pass over the POS permutation groups triples by predicate (and, within
  // a predicate, by object); distinct subjects are counted via a sorted
  // scratch copy of the group's subjects.
  predicate_stats_.clear();
  std::size_t group_begin = 0;
  std::vector<TermId> subjects;
  while (group_begin < n) {
    const TermId predicate = triples[pos[group_begin]].predicate;
    std::size_t group_end = group_begin;
    std::size_t distinct_objects = 0;
    TermId prev_object = kInvalidTermId;
    subjects.clear();
    while (group_end < n && triples[pos[group_end]].predicate == predicate) {
      const Triple& t = triples[pos[group_end]];
      if (group_end == group_begin || t.object != prev_object) {
        ++distinct_objects;  // POS order groups equal objects together
        prev_object = t.object;
      }
      subjects.push_back(t.subject);
      ++group_end;
    }
    std::sort(subjects.begin(), subjects.end());
    const std::size_t distinct_subjects = static_cast<std::size_t>(
        std::unique(subjects.begin(), subjects.end()) - subjects.begin());
    const double total = static_cast<double>(group_end - group_begin);
    predicate_stats_.emplace(
        predicate,
        PredicateStats{total / static_cast<double>(std::max<std::size_t>(
                                   1, distinct_subjects)),
                       total / static_cast<double>(std::max<std::size_t>(
                                   1, distinct_objects))});
    group_begin = group_end;
  }
  triples_ = FlatStorage<Triple>(std::move(triples));
  pos_ = FlatStorage<std::uint32_t>(std::move(pos));
  osp_ = FlatStorage<std::uint32_t>(std::move(osp));
  finalized_ = true;
}

TripleStore TripleStore::FromSnapshotParts(
    FlatStorage<Triple> triples, FlatStorage<std::uint32_t> pos,
    FlatStorage<std::uint32_t> osp,
    std::vector<std::pair<TermId, PredicateStats>> predicate_stats) {
  TripleStore store;
  store.triples_ = std::move(triples);
  store.pos_ = std::move(pos);
  store.osp_ = std::move(osp);
  store.predicate_stats_.reserve(predicate_stats.size());
  for (auto& [predicate, stats] : predicate_stats) {
    store.predicate_stats_.emplace(predicate, stats);
  }
  store.finalized_ = true;
  return store;
}

double TripleStore::AvgTriplesPerSubject(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  return it == predicate_stats_.end() ? 1.0 : it->second.per_subject;
}

double TripleStore::AvgTriplesPerObject(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  return it == predicate_stats_.end() ? 1.0 : it->second.per_object;
}

const Triple& TripleStore::TripleAt(Order order, std::size_t pos) const {
  switch (order) {
    case Order::kSpo:
      return triples_[pos];
    case Order::kPos:
      return triples_[pos_[pos]];
    default:
      return triples_[osp_[pos]];
  }
}

void TripleStore::SeekRange(const Pattern& pattern, Order* order,
                            std::size_t* begin, std::size_t* end) const {
  GRASP_CHECK(finalized_) << "TripleStore used before Finalize";
  const bool s = pattern.subject != kInvalidTermId;
  const bool p = pattern.predicate != kInvalidTermId;
  const bool o = pattern.object != kInvalidTermId;

  // Pick a permutation whose sort order begins with the bound components, so
  // that the matching triples are one contiguous run.
  std::array<int, 3> component_order = kSpoOrder;
  if (s) {
    component_order = (o && !p) ? kOspOrder : kSpoOrder;
    *order = (o && !p) ? Order::kOsp : Order::kSpo;
  } else if (p) {
    component_order = kPosOrder;
    *order = Order::kPos;
  } else if (o) {
    component_order = kOspOrder;
    *order = Order::kOsp;
  } else {
    *order = Order::kSpo;
    *begin = 0;
    *end = triples_.size();
    return;
  }

  int prefix_len = 0;
  std::array<TermId, 3> prefix = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const TermId v = Component(pattern, component_order[i]);
    if (v == kInvalidTermId) break;
    prefix[i] = v;
    ++prefix_len;
  }

  // -1 / 0 / +1: triple's prefix vs. the pattern prefix.
  auto compare = [&](std::size_t idx) {
    const Triple& t = TripleAt(*order, idx);
    for (int i = 0; i < prefix_len; ++i) {
      const TermId c = Component(t, component_order[i]);
      if (c < prefix[i]) return -1;
      if (c > prefix[i]) return 1;
    }
    return 0;
  };

  std::size_t lo = 0, hi = triples_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (compare(mid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *begin = lo;
  hi = triples_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (compare(mid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *end = lo;
}

std::size_t TripleStore::Scan(
    const Pattern& pattern, const std::function<bool(const Triple&)>& fn) const {
  Order order;
  std::size_t begin, end;
  SeekRange(pattern, &order, &begin, &end);
  std::size_t visited = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ++visited;
    if (!fn(TripleAt(order, i))) break;
  }
  return visited;
}

std::size_t TripleStore::Count(const Pattern& pattern) const {
  Order order;
  std::size_t begin, end;
  SeekRange(pattern, &order, &begin, &end);
  return end - begin;
}

bool TripleStore::Contains(const Triple& triple) const {
  GRASP_CHECK(finalized_);
  return std::binary_search(triples_.begin(), triples_.end(), triple);
}

std::size_t TripleStore::PredicateCardinality(TermId predicate) const {
  return Count(Pattern{kInvalidTermId, predicate, kInvalidTermId});
}

std::size_t TripleStore::MemoryUsageBytes() const {
  return building_.capacity() * sizeof(Triple) + triples_.OwnedBytes() +
         pos_.OwnedBytes() + osp_.OwnedBytes();
}

}  // namespace grasp::rdf
