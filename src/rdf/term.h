#ifndef GRASP_RDF_TERM_H_
#define GRASP_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace grasp::rdf {

/// Dense identifier for an interned RDF term. Ids are assigned contiguously
/// from 0 by the Dictionary, so they can index plain vectors.
using TermId = std::uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = 0xffffffffu;

/// The two RDF term shapes this engine stores. IRIs identify entities,
/// classes and predicates; literals are attribute values. (Blank nodes are
/// accepted by the parser and interned as IRIs with a `_:` prefix.)
enum class TermKind : std::uint8_t { kIri = 0, kLiteral = 1 };

/// An RDF term as a (kind, lexical form) pair. For IRIs the lexical form is
/// the IRI text without angle brackets; for literals it is the unescaped
/// string value.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string text;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.text == b.text;
  }
};

/// Returns the human-oriented "local name" of an IRI: the substring after the
/// last '#' or '/', with '_' treated as a space separator downstream. Used to
/// derive index terms for classes and predicates.
std::string_view IriLocalName(std::string_view iri);

}  // namespace grasp::rdf

#endif  // GRASP_RDF_TERM_H_
