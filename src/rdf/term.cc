#include "rdf/term.h"

namespace grasp::rdf {

std::string_view IriLocalName(std::string_view iri) {
  const std::size_t hash = iri.find_last_of('#');
  if (hash != std::string_view::npos && hash + 1 < iri.size()) {
    return iri.substr(hash + 1);
  }
  const std::size_t slash = iri.find_last_of('/');
  if (slash != std::string_view::npos && slash + 1 < iri.size()) {
    return iri.substr(slash + 1);
  }
  return iri;
}

}  // namespace grasp::rdf
