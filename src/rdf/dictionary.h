#ifndef GRASP_RDF_DICTIONARY_H_
#define GRASP_RDF_DICTIONARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace grasp::rdf {

/// Bidirectional string interner for RDF terms. Every distinct (kind, text)
/// pair receives one dense TermId; lookups in both directions are O(1).
/// Not thread-safe for concurrent mutation (index builds are single-threaded).
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing or freshly assigned).
  TermId Intern(TermKind kind, std::string_view text);
  TermId InternIri(std::string_view iri) { return Intern(TermKind::kIri, iri); }
  TermId InternLiteral(std::string_view value) {
    return Intern(TermKind::kLiteral, value);
  }

  /// Returns the id of an already-interned term, or kInvalidTermId.
  TermId Find(TermKind kind, std::string_view text) const;

  /// Term for an id. `id` must be valid.
  const Term& term(TermId id) const { return terms_[id]; }
  TermKind kind(TermId id) const { return terms_[id].kind; }
  const std::string& text(TermId id) const { return terms_[id].text; }

  std::size_t size() const { return terms_.size(); }

  /// Approximate heap footprint in bytes (term text + hash buckets); used by
  /// the Fig. 6b index-size report.
  std::size_t MemoryUsageBytes() const;

 private:
  struct Key {
    TermKind kind;
    std::string text;
    friend bool operator==(const Key& a, const Key& b) {
      return a.kind == b.kind && a.text == b.text;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.text) * 31 +
             static_cast<std::size_t>(k.kind);
    }
  };

  std::vector<Term> terms_;
  std::unordered_map<Key, TermId, KeyHash> ids_;
};

}  // namespace grasp::rdf

#endif  // GRASP_RDF_DICTIONARY_H_
