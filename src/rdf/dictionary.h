#ifndef GRASP_RDF_DICTIONARY_H_
#define GRASP_RDF_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_storage.h"
#include "rdf/term.h"

namespace grasp::rdf {

/// Bidirectional string interner for RDF terms. Every distinct (kind, text)
/// pair receives one dense TermId; lookups in both directions are O(1).
/// Not thread-safe for concurrent mutation (index builds are single-threaded).
///
/// Term text lives in one arena blob delimited by an offsets array, so a
/// dictionary can either own its storage (built by Intern) or borrow it
/// zero-copy from an mmap-ed index snapshot. In the borrowed case the
/// text->id hash is built lazily on the first Find() — warm engine start
/// pays nothing for terms it only ever reads by id.
class Dictionary {
 public:
  Dictionary() : ids_(std::make_unique<LazyIds>()) {}

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Adopts snapshot storage: per-term kinds, the n+1 offsets delimiting
  /// the text blob, and the blob itself (all typically borrowed from the
  /// mapping). The loader validates offsets/kinds before calling this.
  static Dictionary FromSnapshotParts(FlatStorage<std::uint8_t> kinds,
                                      FlatStorage<std::uint64_t> offsets,
                                      FlatStorage<char> text);

  /// Interns a term, returning its id (existing or freshly assigned). Must
  /// not be called on a snapshot-backed dictionary.
  TermId Intern(TermKind kind, std::string_view text);
  TermId InternIri(std::string_view iri) { return Intern(TermKind::kIri, iri); }
  TermId InternLiteral(std::string_view value) {
    return Intern(TermKind::kLiteral, value);
  }

  /// Returns the id of an already-interned term, or kInvalidTermId.
  /// Thread-safe (the lazy reverse map builds under a once-flag).
  TermId Find(TermKind kind, std::string_view text) const;

  /// Kind / text for an id. `id` must be valid. The view stays valid for
  /// the dictionary's lifetime.
  TermKind kind(TermId id) const {
    return static_cast<TermKind>(borrowed_ ? bor_kinds_[id] : own_kinds_[id]);
  }
  std::string_view text(TermId id) const {
    if (borrowed_) {
      return {bor_text_.data() + bor_offsets_[id],
              static_cast<std::size_t>(bor_offsets_[id + 1] -
                                       bor_offsets_[id])};
    }
    return {own_text_.data() + own_offsets_[id],
            static_cast<std::size_t>(own_offsets_[id + 1] - own_offsets_[id])};
  }

  std::size_t size() const {
    return borrowed_ ? bor_kinds_.size() : own_kinds_.size();
  }

  /// Raw storage, for snapshot serialization.
  std::span<const std::uint8_t> kinds_span() const {
    return borrowed_ ? bor_kinds_.view()
                     : std::span<const std::uint8_t>(own_kinds_);
  }
  std::span<const std::uint64_t> offsets_span() const {
    return borrowed_ ? bor_offsets_.view()
                     : std::span<const std::uint64_t>(own_offsets_);
  }
  std::span<const char> text_span() const {
    return borrowed_ ? bor_text_.view() : std::span<const char>(own_text_);
  }

  /// Approximate owned heap footprint in bytes (term text + hash buckets);
  /// used by the Fig. 6b index-size report. Borrowed snapshot storage
  /// counts zero here.
  std::size_t MemoryUsageBytes() const;

 private:
  struct Key {
    TermKind kind;
    std::string text;
    friend bool operator==(const Key& a, const Key& b) {
      return a.kind == b.kind && a.text == b.text;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.text) * 31 +
             static_cast<std::size_t>(k.kind);
    }
  };
  /// The reverse map, heap-pinned so the dictionary stays movable despite
  /// the once-flag. Maintained eagerly while interning; built lazily from
  /// the arena on the first Find() of a snapshot-backed dictionary.
  struct LazyIds {
    std::once_flag once;
    std::unordered_map<Key, TermId, KeyHash> map;
  };

  void BuildIdsFromStorage() const;

  bool borrowed_ = false;
  // Owned growable arena (build mode). own_offsets_ always has size()+1
  // entries, starting at 0.
  std::vector<std::uint8_t> own_kinds_;
  std::vector<std::uint64_t> own_offsets_{0};
  std::vector<char> own_text_;
  // Borrowed snapshot arena.
  FlatStorage<std::uint8_t> bor_kinds_;
  FlatStorage<std::uint64_t> bor_offsets_;
  FlatStorage<char> bor_text_;

  std::unique_ptr<LazyIds> ids_;
};

}  // namespace grasp::rdf

#endif  // GRASP_RDF_DICTIONARY_H_
