#ifndef GRASP_NET_CONNECTION_H_
#define GRASP_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/http.h"
#include "net/socket.h"
#include "serve/query_control.h"

namespace grasp::net {

/// One client connection's state machine. The connection is a passive
/// object owned and driven single-threaded by the HttpServer's event loop;
/// the only cross-thread touch point is the QueryControl, which is shared
/// with the serving workers and is internally atomic.
///
/// States and the transitions the server drives:
///
///   kReading   --request parsed-->  kAwaiting  --completion-->  kWriting
///      ^  \--parse error/408--------------------------------------^  |
///      |                                                             |
///      +------------------- response flushed, keep-alive ------------+
///
/// Reads are suspended while kAwaiting/kWriting (EPOLLIN off): a client
/// that pipelines ahead waits in its socket buffer — backpressure instead
/// of unbounded server-side buffering. EPOLLRDHUP stays armed throughout,
/// so a vanishing client is detected mid-query and cancels it.
class Connection {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kReading, kAwaiting, kWriting };

  /// Outcome of a socket IO step.
  enum class IoResult {
    kOk,          // made progress (possibly zero bytes; EAGAIN)
    kPeerClosed,  // orderly EOF from the peer
    kError,       // read/write error (ECONNRESET, EPIPE, injected fault)
  };

  Connection(OwnedFd fd, std::uint64_t id, ParseLimits limits)
      : fd_(std::move(fd)), id_(id), parser_(limits) {}

  int fd() const { return fd_.get(); }
  std::uint64_t id() const { return id_; }
  State state() const { return state_; }
  RequestParser& parser() { return parser_; }

  /// Reads available bytes and feeds the parser (buffering any bytes past
  /// the current request for the next one). Stops early once the parser is
  /// done or errored. Fires the `net.read` failpoint.
  IoResult ReadIntoParser();

  /// Appends a serialized response to the write buffer.
  void QueueResponse(const HttpResponse& response, bool keep_alive);

  /// Writes buffered bytes until EAGAIN or empty. Fires `net.write`.
  IoResult FlushWrites();
  bool write_pending() const { return write_off_ < write_buf_.size(); }

  /// Re-arms for the next request on this connection (keep-alive).
  void ResetForNextRequest();

  /// True when bytes of the next request are already buffered user-side —
  /// epoll cannot see those, so the server must run a read pass eagerly
  /// after ResetForNextRequest() instead of waiting for EPOLLIN.
  bool has_carry() const { return !carry_.empty(); }

  bool close_after_write() const { return close_after_write_; }

  /// In-flight query bookkeeping (set by the server when it submits).
  void BeginAwait(std::uint64_t seq,
                  std::shared_ptr<serve::QueryControl> control,
                  bool keep_alive) {
    state_ = State::kAwaiting;
    inflight_seq_ = seq;
    control_ = std::move(control);
    request_keep_alive_ = keep_alive;
  }
  std::uint64_t inflight_seq() const { return inflight_seq_; }
  bool request_keep_alive() const { return request_keep_alive_; }
  /// Cancels the in-flight query, if any (client disconnect propagation).
  void CancelInflight() {
    if (control_ != nullptr) control_->RequestCancel();
  }

  void set_state(State state) { state_ = state; }

  // Deadline slots swept by the server's timer pass. A default-constructed
  // time_point (epoch) means "not armed".
  Clock::time_point read_deadline;   // first request byte -> complete head+body
  Clock::time_point idle_deadline;   // keep-alive idle limit
  Clock::time_point write_deadline;  // response flush limit (slow readers)
  /// First byte of the current request, stamped by the server's read pass;
  /// the base of the per-request wire-latency histogram. Epoch = no
  /// request in progress (the stamp is consumed when the response is
  /// counted, so per-connection artifacts like idle closes record
  /// nothing).
  Clock::time_point request_start;

 private:
  OwnedFd fd_;
  const std::uint64_t id_;
  RequestParser parser_;
  /// Bytes read off the socket but not yet consumed by the parser (the tail
  /// of a read that completed a request; fed first on the next request).
  std::string carry_;
  std::string write_buf_;
  std::size_t write_off_ = 0;
  State state_ = State::kReading;
  bool close_after_write_ = false;
  bool request_keep_alive_ = true;
  std::uint64_t inflight_seq_ = 0;
  std::shared_ptr<serve::QueryControl> control_;
};

}  // namespace grasp::net

#endif  // GRASP_NET_CONNECTION_H_
