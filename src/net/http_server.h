#ifndef GRASP_NET_HTTP_SERVER_H_
#define GRASP_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/connection.h"
#include "net/http.h"
#include "net/socket.h"
#include "serve/admission.h"

namespace grasp::net {

/// Dependency-free epoll HTTP/1.1 front-end over a serve::QueryServer.
///
/// Wire protocol:
///   GET  /healthz                          -> 200 "ok"
///   GET  /statsz                           -> 200 JSON counters
///   GET  /metrics                          -> 200 Prometheus text format
///   GET  /debug/slowz                      -> 200 JSON N-slowest queries
///   GET  /search?q=kw+kw[&k=N][&scope=p,p] -> 200 JSON ranked queries
///   POST /search  (body = whitespace-separated keywords; same params)
///
/// Status mapping (every engine/serving failure mode is an explicit wire
/// outcome, never a hang):
///   engine OK (complete or degraded)  -> 200 (body carries "degraded")
///   kOverloaded (backlog shed)        -> 429 + Retry-After (EWMA drain est.)
///   kOverloaded w/o retry hint        -> 503 (shutdown shed: don't retry)
///   kOverloaded while draining        -> 503
///   kDeadlineExceeded (queue expiry)  -> 504
///   kCancelled (drain shutdown)       -> 503
///   malformed request                 -> 400 / 501 / 505
///   body over limit                   -> 413
///   head started but stalled          -> 408 (slow-loris)
///   connection cap reached            -> 503, closed immediately
///
/// A client deadline rides in on `X-Deadline-Ms` and becomes the query's
/// QueryControl deadline at admission (queue time counts). A client that
/// disconnects mid-query (EPOLLRDHUP, read EOF/error, failed write) has its
/// query cancelled via QueryControl::RequestCancel — abandoned work stops
/// consuming exploration pops at the next poll point.
///
/// One event-loop thread drives accept, IO, timeouts and completions;
/// query execution happens on the QueryServer's lane workers, which hand
/// results back through a completion queue + eventfd wakeup. Failpoints
/// `net.accept`, `net.read`, `net.write` inject faults at each syscall
/// boundary.
class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; port() reports the bound one.
    std::uint16_t port = 0;
    int backlog = 128;
    /// Accepted-connection cap; beyond it new clients get an immediate 503
    /// and a close (cheap, bounded) instead of an fd-exhaustion spiral.
    std::size_t max_connections = 1024;
    ParseLimits parse_limits;
    /// First request byte to complete request; trickling past it is a 408.
    double read_timeout_millis = 10'000.0;
    /// Response flush limit; a slower reader is disconnected (its query,
    /// if any, was already answered — this bounds buffer lifetime).
    double write_timeout_millis = 10'000.0;
    /// Keep-alive connections idle past this are closed quietly.
    double idle_timeout_millis = 60'000.0;
    /// Graceful-drain budget measured from RequestDrain(): in-flight work
    /// past it is force-closed so the process can exit.
    double drain_timeout_millis = 30'000.0;
    /// Deadline applied to requests without X-Deadline-Ms (0 = none). A
    /// drainable server wants this > 0: unbounded queries stall drains.
    double default_deadline_millis = 0.0;
    /// Registry for the `grasp_http_*` instruments (not owned; must
    /// outlive the server). Falls back to the QueryServer's registry, so
    /// one registry spans the tiers unless deliberately split.
    metrics::Registry* metrics = nullptr;
  };

  /// Monotonic counters (registry-backed relaxed atomics, readable any
  /// time, any thread).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t accept_transient_errors = 0;  ///< ECONNABORTED etc.
    std::uint64_t accept_pauses = 0;            ///< EMFILE backoff episodes
    std::uint64_t rejected_at_capacity = 0;     ///< 503 at connection cap
    std::uint64_t requests = 0;                 ///< complete requests parsed
    std::uint64_t responses_2xx = 0;
    std::uint64_t responses_4xx = 0;  ///< 400/404/405/413/505 (not 408/429)
    std::uint64_t responses_408 = 0;
    std::uint64_t responses_429 = 0;
    std::uint64_t responses_5xx = 0;  ///< 500/501/503/504
    std::uint64_t disconnect_cancels = 0;  ///< mid-query client vanishings
    std::uint64_t dropped_completions = 0;  ///< answers to dead connections
    std::uint64_t slow_reader_closes = 0;
    std::uint64_t idle_closes = 0;
    std::uint64_t io_error_closes = 0;
    std::uint64_t drain_force_closed = 0;
    std::uint64_t active_connections = 0;  ///< gauge, not a counter
  };

  /// `query_server` must outlive this object.
  HttpServer(serve::QueryServer* query_server, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts the event-loop thread. On return the socket is
  /// listening and port() is valid.
  Status Start();

  std::uint16_t port() const { return port_; }

  /// Graceful drain (SIGTERM semantics), asynchronous: stop accepting,
  /// shed not-yet-submitted work with 503, let submitted queries finish
  /// under their deadlines, flush every response, then stop the loop.
  /// Join() blocks until that completes (or drain_timeout_millis forces it).
  void RequestDrain();

  /// Abrupt stop: cancels in-flight queries, closes every connection.
  void Stop();

  /// Waits for the event loop to exit (after RequestDrain/Stop).
  void Join();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  Stats stats() const;

 private:
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    serve::QueryServer::Response response;
  };

  void Run();
  void Wake();
  void HandleAccept();
  void HandleConnectionEvent(std::uint64_t id, std::uint32_t events);
  void ReadPass(Connection* conn);
  void HandleParsedRequest(Connection* conn);
  void SubmitSearch(Connection* conn, const HttpRequest& request,
                    const ParsedTarget& target);
  void DeliverCompletion(Completion completion);
  void StartWriting(Connection* conn, const HttpResponse& response,
                    bool keep_alive);
  void FlushPass(Connection* conn);
  void SweepTimeouts();
  void BeginDrain();
  void CloseConnection(std::uint64_t id, bool cancel_inflight);
  void UpdateEpoll(Connection* conn, std::uint32_t events);
  /// Counts the response under its status class and, when `conn` carries a
  /// request start stamp, records wire latency into the per-class
  /// histogram.
  void CountResponse(Connection* conn, int status);
  /// Registers every `grasp_http_*` instrument; called from the
  /// constructor.
  void InitMetrics();
  /// The distinct registries feeding /metrics and /statsz: this server's
  /// and the QueryServer's (one element when the tiers share, which is the
  /// wired-up default).
  std::vector<const metrics::Registry*> MetricRegistries() const;
  std::string BuildSearchBody(const serve::QueryServer::Response& response);
  std::string BuildStatszBody();
  std::string BuildMetricsBody();

  serve::QueryServer* query_server_;
  Options options_;
  std::uint16_t port_ = 0;

  OwnedFd epoll_fd_;
  OwnedFd wake_fd_;  // eventfd: completions + control commands
  OwnedFd listen_fd_;
  bool accept_paused_ = false;
  Connection::Clock::time_point accept_resume_;
  Connection::Clock::time_point drain_deadline_;

  std::thread loop_thread_;
  std::thread shutdown_thread_;  // runs QueryServer::Shutdown off-loop
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> query_server_down_{false};

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listen, 1 = wake sentinel ids
  std::uint64_t next_seq_ = 0;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  /// Registry-backed instruments (the sole backing store for Stats — no
  /// parallel counter set to drift). `active_connections` is a gauge
  /// written only by the loop thread and read via its relaxed atomic, so
  /// stats() never touches `connections_` from a foreign thread.
  struct HttpMetrics {
    metrics::Counter* accepted = nullptr;
    metrics::Counter* accept_transient_errors = nullptr;
    metrics::Counter* accept_pauses = nullptr;
    metrics::Counter* rejected_at_capacity = nullptr;
    metrics::Counter* requests = nullptr;
    metrics::Counter* responses_2xx = nullptr;
    metrics::Counter* responses_4xx = nullptr;
    metrics::Counter* responses_408 = nullptr;
    metrics::Counter* responses_429 = nullptr;
    metrics::Counter* responses_5xx = nullptr;
    metrics::Counter* disconnect_cancels = nullptr;
    metrics::Counter* dropped_completions = nullptr;
    metrics::Counter* slow_reader_closes = nullptr;
    metrics::Counter* idle_closes = nullptr;
    metrics::Counter* io_error_closes = nullptr;
    metrics::Counter* drain_force_closed = nullptr;
    metrics::Gauge* active_connections = nullptr;
    metrics::Histogram* latency_2xx = nullptr;
    metrics::Histogram* latency_4xx = nullptr;
    metrics::Histogram* latency_408 = nullptr;
    metrics::Histogram* latency_429 = nullptr;
    metrics::Histogram* latency_5xx = nullptr;
  };
  metrics::Registry* metrics_ = nullptr;  ///< never nullptr post-construction
  HttpMetrics m_;
};

}  // namespace grasp::net

#endif  // GRASP_NET_HTTP_SERVER_H_
