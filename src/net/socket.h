#ifndef GRASP_NET_SOCKET_H_
#define GRASP_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace grasp::net {

/// RAII file descriptor. Close errors are swallowed (close is retried on
/// EINTR per POSIX semantics on Linux: the fd is released either way).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// EINTR-retrying syscall wrappers. Every raw read/write/accept/connect in
/// the repo goes through these (or carries its own loop): a signal landing
/// mid-syscall — SIGTERM starting a drain is the expected case — must never
/// surface as a spurious IO error.
std::ptrdiff_t ReadRetry(int fd, void* buf, std::size_t len);
/// Writes with MSG_NOSIGNAL where applicable: a dead peer yields EPIPE, not
/// a process-killing SIGPIPE (belt to IgnoreSigpipe's suspenders).
std::ptrdiff_t WriteRetry(int fd, const void* buf, std::size_t len);
int AcceptRetry(int listen_fd);

Status SetNonBlocking(int fd);

/// Process-wide SIGPIPE ignore: any server talking to sockets must call
/// this before its first write — a client that vanishes between poll and
/// write would otherwise kill the whole process.
void IgnoreSigpipe();

/// Binds + listens a nonblocking TCP socket on host:port (port 0 picks an
/// ephemeral port; *bound_port reports the actual one). SO_REUSEADDR set so
/// fast restarts don't trip on TIME_WAIT.
Result<OwnedFd> ListenTcp(const std::string& host, std::uint16_t port,
                          int backlog, std::uint16_t* bound_port);

/// Blocking client connect (tools and tests; the server never connects).
Result<OwnedFd> ConnectTcp(const std::string& host, std::uint16_t port);

}  // namespace grasp::net

#endif  // GRASP_NET_SOCKET_H_
