#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace grasp::net {
namespace {

bool IsTokenChar(unsigned char c) {
  // RFC 7230 token characters: the set every method and header name must
  // stay inside. Anything else in those positions is a smuggling attempt or
  // corruption; both get the same 400.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(s[i + 1]) * 16 +
                                      HexValue(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

void RequestParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

std::size_t RequestParser::Feed(std::string_view data) {
  if (state_ == State::kDone || state_ == State::kError || data.empty()) {
    return 0;
  }
  started_ = true;
  std::size_t consumed = 0;

  if (state_ == State::kHead) {
    // Accumulate until the blank line ends the head, never past the cap:
    // take only what could still fit, and if the terminator is not inside
    // the limit the request is oversized regardless of what follows.
    const std::size_t room = limits_.max_head_bytes - head_.size();
    const std::size_t take = std::min(room, data.size());
    head_.append(data.substr(0, take));
    consumed += take;

    // Scan for "\n\r\n" / "\n\n" from where the last scan stopped.
    std::size_t head_end = std::string::npos;  // offset one past terminator
    for (std::size_t i = head_scanned_; i < head_.size(); ++i) {
      if (head_[i] != '\n') continue;
      if (i + 1 < head_.size() && head_[i + 1] == '\n') {
        head_end = i + 2;
        break;
      }
      if (i + 2 < head_.size() && head_[i + 1] == '\r' &&
          head_[i + 2] == '\n') {
        head_end = i + 3;
        break;
      }
      // A trailing "\n" or "\n\r" may complete on the next Feed; rescan
      // from this newline then.
      if (i + 2 >= head_.size()) {
        head_scanned_ = i;
        break;
      }
      head_scanned_ = i + 1;
    }
    if (head_end == std::string::npos) {
      if (head_.size() >= limits_.max_head_bytes) {
        Fail(400, "header section exceeds " +
                      std::to_string(limits_.max_head_bytes) + " bytes");
      }
      return consumed;
    }

    // Bytes past the head belong to the body (or the next request); give
    // back what we over-buffered so the body path below sees them in order.
    const std::size_t extra = head_.size() - head_end;
    consumed -= extra;
    data.remove_prefix(take - extra);
    head_.resize(head_end);
    ParseHead();
    if (state_ == State::kError) return consumed;
    if (state_ == State::kDone) return consumed;
  }

  if (state_ == State::kBody) {
    const std::size_t need = content_length_ - request_.body.size();
    const std::size_t take = std::min(need, data.size());
    request_.body.append(data.substr(0, take));
    consumed += take;
    if (request_.body.size() == content_length_) state_ = State::kDone;
  }
  return consumed;
}

void RequestParser::ParseHead() {
  // Split the head into lines (terminators stripped) and parse each.
  std::string_view head(head_);
  bool first_line = true;
  std::size_t line_count = 0;
  while (!head.empty()) {
    const std::size_t nl = head.find('\n');
    std::string_view line = head.substr(0, nl);
    head.remove_prefix(nl == std::string_view::npos ? head.size() : nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) break;  // blank line: end of head
    if (first_line) {
      if (!ParseRequestLine(line)) return;
      first_line = false;
      continue;
    }
    if (++line_count > limits_.max_headers) {
      Fail(400, "more than " + std::to_string(limits_.max_headers) +
                    " header fields");
      return;
    }
    if (!ParseHeaderLine(line)) return;
  }
  if (first_line) {
    Fail(400, "empty request");
    return;
  }

  // Framing and connection semantics resolved once, after all headers.
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // No chunked support: a Transfer-Encoding this server ignored would
    // desynchronize framing (the classic smuggling bug), so refuse loudly.
    Fail(501, "transfer-encoding is not supported");
    return;
  }
  request_.keep_alive = request_.minor_version >= 1;
  if (const std::string* conn = request_.FindHeader("connection")) {
    if (EqualsIgnoreCase(*conn, "close")) request_.keep_alive = false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) request_.keep_alive = true;
  }
  if (saw_content_length_ && content_length_ > 0) {
    request_.body.reserve(content_length_);
    state_ = State::kBody;
  } else {
    state_ = State::kDone;
  }
}

bool RequestParser::ParseRequestLine(std::string_view line) {
  if (line.size() > limits_.max_request_line_bytes) {
    Fail(400, "request line exceeds " +
                  std::to_string(limits_.max_request_line_bytes) + " bytes");
    return false;
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(),
                   [](char c) { return IsTokenChar(static_cast<unsigned char>(c)); })) {
    Fail(400, "malformed method token");
    return false;
  }
  if (target.empty() ||
      std::any_of(target.begin(), target.end(), [](char c) {
        const auto u = static_cast<unsigned char>(c);
        return u <= 0x20 || u == 0x7f;
      })) {
    Fail(400, "malformed request target");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    request_.minor_version = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    Fail(505, "unsupported HTTP version");
    return false;
  } else {
    Fail(400, "malformed HTTP version");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  return true;
}

bool RequestParser::ParseHeaderLine(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, "malformed header field");
    return false;
  }
  const std::string_view raw_name = line.substr(0, colon);
  if (!std::all_of(raw_name.begin(), raw_name.end(), [](char c) {
        return IsTokenChar(static_cast<unsigned char>(c));
      })) {
    // Covers the "Header : v" obs-fold smuggling shape too: a trailing
    // space fails the token check.
    Fail(400, "malformed header name");
    return false;
  }
  const std::string_view value = TrimOws(line.substr(colon + 1));
  if (std::any_of(value.begin(), value.end(), [](char c) {
        const auto u = static_cast<unsigned char>(c);
        return (u < 0x20 && u != '\t') || u == 0x7f;
      })) {
    Fail(400, "control byte in header value");
    return false;
  }
  std::string name = ToLower(raw_name);

  if (name == "content-length") {
    if (value.empty() || value.size() > 18 ||
        !std::all_of(value.begin(), value.end(), [](char c) {
          return c >= '0' && c <= '9';
        })) {
      Fail(400, "malformed content-length");
      return false;
    }
    std::size_t length = 0;
    for (char c : value) length = length * 10 + static_cast<std::size_t>(c - '0');
    if (saw_content_length_ && length != content_length_) {
      Fail(400, "conflicting content-length fields");
      return false;
    }
    if (length > limits_.max_body_bytes) {
      Fail(413, "body of " + std::string(value) + " bytes exceeds limit of " +
                    std::to_string(limits_.max_body_bytes));
      return false;
    }
    saw_content_length_ = true;
    content_length_ = length;
  }
  request_.headers.emplace_back(std::move(name), std::string(value));
  return true;
}

void RequestParser::Reset() {
  state_ = State::kHead;
  started_ = false;
  head_.clear();
  head_scanned_ = 0;
  content_length_ = 0;
  saw_content_length_ = false;
  error_status_ = 0;
  error_reason_.clear();
  request_ = HttpRequest();
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(ReasonPhrase(response.status));
  out.append("\r\n");
  for (const auto& [name, value] : response.headers) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("Content-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nConnection: ");
  out.append(keep_alive ? "keep-alive" : "close");
  out.append("\r\n\r\n");
  out.append(response.body);
  return out;
}

const std::string* ParsedTarget::FindParam(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

ParsedTarget ParseTarget(std::string_view target) {
  ParsedTarget parsed;
  const std::size_t q = target.find('?');
  parsed.path = PercentDecode(target.substr(0, q));
  if (q == std::string_view::npos) return parsed;
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query.remove_prefix(amp == std::string_view::npos ? query.size() : amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      parsed.params.emplace_back(PercentDecode(pair), "");
    } else {
      parsed.params.emplace_back(PercentDecode(pair.substr(0, eq)),
                                 PercentDecode(pair.substr(eq + 1)));
    }
  }
  return parsed;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (u < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out->append("\\u00");
          out->push_back(kHex[u >> 4]);
          out->push_back(kHex[u & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace grasp::net
