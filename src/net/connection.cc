#include "net/connection.h"

#include <cerrno>

#include "common/failpoint.h"

namespace grasp::net {

Connection::IoResult Connection::ReadIntoParser() {
  // Carry-over first: bytes of a previous read that belonged to this (next)
  // request were parked in carry_ and must be consumed in order.
  if (!carry_.empty()) {
    const std::size_t used = parser_.Feed(carry_);
    carry_.erase(0, used);
    if (parser_.done() || parser_.error()) return IoResult::kOk;
  }
  char buf[8192];
  for (;;) {
    if (failpoint::ShouldFail("net.read")) {
      // Injected transient read fault: indistinguishable from ECONNRESET
      // to everything above this line, which is the point.
      return IoResult::kError;
    }
    const std::ptrdiff_t n = ReadRetry(fd_.get(), buf, sizeof(buf));
    if (n == 0) return IoResult::kPeerClosed;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
      return IoResult::kError;
    }
    const std::size_t used =
        parser_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (used < static_cast<std::size_t>(n)) {
      // Request complete with bytes to spare (pipelining): park the tail.
      carry_.append(buf + used, static_cast<std::size_t>(n) - used);
    }
    if (parser_.done() || parser_.error()) return IoResult::kOk;
  }
}

void Connection::QueueResponse(const HttpResponse& response, bool keep_alive) {
  if (!keep_alive) close_after_write_ = true;
  // Compact the consumed prefix before growing; the buffer never holds more
  // than the responses still owed to this client.
  if (write_off_ > 0) {
    write_buf_.erase(0, write_off_);
    write_off_ = 0;
  }
  write_buf_ += SerializeResponse(response, keep_alive);
  state_ = State::kWriting;
}

Connection::IoResult Connection::FlushWrites() {
  while (write_pending()) {
    if (failpoint::ShouldFail("net.write")) return IoResult::kError;
    const std::ptrdiff_t n = WriteRetry(fd_.get(), write_buf_.data() + write_off_,
                                        write_buf_.size() - write_off_);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
      return IoResult::kError;  // EPIPE/ECONNRESET: the peer is gone
    }
    write_off_ += static_cast<std::size_t>(n);
  }
  write_buf_.clear();
  write_off_ = 0;
  return IoResult::kOk;
}

void Connection::ResetForNextRequest() {
  parser_.Reset();
  state_ = State::kReading;
  inflight_seq_ = 0;
  control_.reset();
  read_deadline = Clock::time_point();
  write_deadline = Clock::time_point();
  // carry_ may already hold the next pipelined request; the server feeds it
  // on the next read pass (and the level-triggered EPOLLIN re-arm means the
  // loop comes back even if the socket itself is quiet).
}

}  // namespace grasp::net
