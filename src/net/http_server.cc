#include "net/http_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace grasp::net {
namespace {

constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;

using Clock = Connection::Clock;

double MillisUntil(Clock::time_point deadline, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(deadline - now).count();
}

bool Armed(Clock::time_point t) { return t != Clock::time_point(); }

Clock::time_point After(Clock::time_point now, double millis) {
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(millis));
}

/// Whitespace-splits decoded keyword text.
std::vector<std::string> SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j > i) words.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return words;
}

std::vector<std::string> SplitCommas(std::string_view text) {
  std::vector<std::string> parts;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view part = text.substr(0, comma);
    text.remove_prefix(comma == std::string_view::npos ? text.size()
                                                       : comma + 1);
    if (!part.empty()) parts.emplace_back(part);
  }
  return parts;
}

std::string ErrorBody(std::string_view status_name, std::string_view message,
                      double retry_after_millis = -1.0) {
  std::string body = "{\"status\":\"";
  AppendJsonEscaped(&body, status_name);
  body += "\",\"message\":\"";
  AppendJsonEscaped(&body, message);
  body += "\"";
  if (retry_after_millis >= 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"retry_after_ms\":%.1f",
                  retry_after_millis);
    body += buf;
  }
  body += "}\n";
  return body;
}

}  // namespace

HttpServer::HttpServer(serve::QueryServer* query_server, Options options)
    : query_server_(query_server), options_(std::move(options)) {
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : query_server_->metrics_registry();
  InitMetrics();
}

void HttpServer::InitMetrics() {
  constexpr double kMicros = 1e-6;  // recorded in µs, exposed in seconds
  m_.accepted = metrics_->GetCounter("grasp_http_accepted_total",
                                     "Connections accepted");
  m_.accept_transient_errors =
      metrics_->GetCounter("grasp_http_accept_transient_errors_total",
                           "Connections dead between SYN and accept");
  m_.accept_pauses = metrics_->GetCounter(
      "grasp_http_accept_pauses_total",
      "Accept-path backoff episodes on fd/memory exhaustion");
  m_.rejected_at_capacity =
      metrics_->GetCounter("grasp_http_rejected_at_capacity_total",
                           "Connections 503ed at the connection cap");
  m_.requests = metrics_->GetCounter("grasp_http_requests_total",
                                     "Complete requests parsed");
  const char* responses_help = "Responses written, by status class";
  m_.responses_2xx = metrics_->GetCounter("grasp_http_responses_total",
                                          responses_help, {{"class", "2xx"}});
  m_.responses_4xx = metrics_->GetCounter("grasp_http_responses_total",
                                          responses_help, {{"class", "4xx"}});
  m_.responses_408 = metrics_->GetCounter("grasp_http_responses_total",
                                          responses_help, {{"class", "408"}});
  m_.responses_429 = metrics_->GetCounter("grasp_http_responses_total",
                                          responses_help, {{"class", "429"}});
  m_.responses_5xx = metrics_->GetCounter("grasp_http_responses_total",
                                          responses_help, {{"class", "5xx"}});
  m_.disconnect_cancels = metrics_->GetCounter(
      "grasp_http_disconnect_cancels_total",
      "Clients that vanished mid-query (query cancelled)");
  m_.dropped_completions = metrics_->GetCounter(
      "grasp_http_dropped_completions_total",
      "Completed queries whose connection was already gone");
  const char* closes_help = "Connections closed by the server, by reason";
  m_.slow_reader_closes = metrics_->GetCounter(
      "grasp_http_closes_total", closes_help, {{"reason", "slow_reader"}});
  m_.idle_closes = metrics_->GetCounter("grasp_http_closes_total", closes_help,
                                        {{"reason", "idle"}});
  m_.io_error_closes = metrics_->GetCounter(
      "grasp_http_closes_total", closes_help, {{"reason", "io_error"}});
  m_.drain_force_closed = metrics_->GetCounter(
      "grasp_http_closes_total", closes_help, {{"reason", "drain_forced"}});
  m_.active_connections = metrics_->GetGauge(
      "grasp_http_active_connections",
      "Open connections (updated by the event loop only)");
  const char* latency_help =
      "Wire latency from first request byte to response queued, by status "
      "class";
  m_.latency_2xx =
      metrics_->GetHistogram("grasp_http_request_duration_seconds",
                             latency_help, {{"class", "2xx"}}, kMicros);
  m_.latency_4xx =
      metrics_->GetHistogram("grasp_http_request_duration_seconds",
                             latency_help, {{"class", "4xx"}}, kMicros);
  m_.latency_408 =
      metrics_->GetHistogram("grasp_http_request_duration_seconds",
                             latency_help, {{"class", "408"}}, kMicros);
  m_.latency_429 =
      metrics_->GetHistogram("grasp_http_request_duration_seconds",
                             latency_help, {{"class", "429"}}, kMicros);
  m_.latency_5xx =
      metrics_->GetHistogram("grasp_http_request_duration_seconds",
                             latency_help, {{"class", "5xx"}}, kMicros);
}

std::vector<const metrics::Registry*> HttpServer::MetricRegistries() const {
  std::vector<const metrics::Registry*> registries{metrics_};
  if (query_server_->metrics_registry() != metrics_) {
    registries.push_back(query_server_->metrics_registry());
  }
  return registries;
}

HttpServer::~HttpServer() {
  if (loop_thread_.joinable()) {
    Stop();
    Join();
  }
}

Status HttpServer::Start() {
  epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  GRASP_ASSIGN_OR_RETURN(
      listen_fd_, ListenTcp(options_.host, options_.port, options_.backlog,
                            &port_));

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) != 0) {
    return Status::IoError(std::string("epoll_ctl wake: ") +
                           std::strerror(errno));
  }
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &event) !=
      0) {
    return Status::IoError(std::string("epoll_ctl listen: ") +
                           std::strerror(errno));
  }
  loop_thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void HttpServer::Wake() {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
    if (n >= 0 || errno != EINTR) break;  // EAGAIN: already signalled
  }
}

void HttpServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  Wake();
}

void HttpServer::Stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  Wake();
}

void HttpServer::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

void HttpServer::Run() {
  std::vector<epoll_event> events(128);
  for (;;) {
    const auto now = Clock::now();
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    if (drain_requested_.exchange(false, std::memory_order_relaxed)) {
      BeginDrain();
    }
    if (draining_.load(std::memory_order_relaxed)) {
      if (query_server_down_.load(std::memory_order_relaxed) &&
          connections_.empty()) {
        break;  // drained: every accepted request answered and flushed
      }
      if (Armed(drain_deadline_) && now >= drain_deadline_) {
        // Drain budget exhausted: whoever is still connected (a slow
        // reader, a stuck client) is cut off rather than holding the
        // process hostage. Counted — a nonzero figure in the exit stats
        // means the drain was not fully graceful.
        m_.drain_force_closed->Increment(connections_.size());
        while (!connections_.empty()) {
          CloseConnection(connections_.begin()->first,
                          /*cancel_inflight=*/true);
        }
        break;
      }
    }

    // Nearest timer: connection deadlines, accept-pause resume, drain cap.
    double timeout_ms = 100.0;
    auto consider = [&](Clock::time_point deadline) {
      if (!Armed(deadline)) return;
      timeout_ms = std::min(timeout_ms, std::max(0.0, MillisUntil(deadline, now)));
    };
    for (const auto& [id, conn] : connections_) {
      consider(conn->read_deadline);
      consider(conn->idle_deadline);
      consider(conn->write_deadline);
    }
    if (accept_paused_) consider(accept_resume_);
    if (draining_.load(std::memory_order_relaxed)) consider(drain_deadline_);

    int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                         static_cast<int>(events.size()),
                         static_cast<int>(std::ceil(timeout_ms)));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal during wait: re-evaluate flags
      GRASP_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
      } else if (id == kListenId) {
        HandleAccept();
      } else {
        HandleConnectionEvent(id, events[i].events);
      }
    }

    // Completed queries, delivered by whichever thread ran them.
    std::vector<Completion> ready;
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      ready.swap(completions_);
    }
    for (Completion& completion : ready) {
      DeliverCompletion(std::move(completion));
    }

    SweepTimeouts();
  }

  // Epilogue. Close whatever is left (abrupt Stop path), then make sure the
  // QueryServer has finished every callback that references this server's
  // completion queue before the loop thread exits.
  while (!connections_.empty()) {
    CloseConnection(connections_.begin()->first, /*cancel_inflight=*/true);
  }
  if (shutdown_thread_.joinable()) {
    shutdown_thread_.join();
  } else {
    query_server_->Shutdown();
  }
  // Completions that raced the loop exit (pushed after the last delivery
  // pass) have no connection left to answer; account for every one of them
  // as dropped rather than discarding them silently.
  std::vector<Completion> leftover;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    leftover.swap(completions_);
  }
  for (Completion& completion : leftover) {
    DeliverCompletion(std::move(completion));
  }
}

void HttpServer::BeginDrain() {
  if (draining_.exchange(true, std::memory_order_relaxed)) return;
  const auto now = Clock::now();
  drain_deadline_ = After(now, options_.drain_timeout_millis);

  // 1. Stop accepting: close the listen socket; new connects are refused
  //    by the kernel from here on.
  listen_fd_.Reset();
  accept_paused_ = false;

  // 2. Bytes a client already sent may still sit unread in the kernel (the
  //    drain signal can outrun the EPOLLIN event). Pick them up first, so a
  //    request that raced the drain gets a definite 503 instead of looking
  //    idle and being closed silently.
  std::vector<std::uint64_t> reading;
  for (const auto& [id, conn] : connections_) {
    if (conn->state() == Connection::State::kReading) reading.push_back(id);
  }
  for (std::uint64_t id : reading) {
    auto it = connections_.find(id);
    if (it != connections_.end() &&
        it->second->state() == Connection::State::kReading) {
      ReadPass(it->second.get());
    }
  }

  // 3. Idle keep-alive connections (no request in progress, nothing owed)
  //    are closed now; connections mid-request get to finish the exchange.
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->state() == Connection::State::kReading &&
        !conn->parser().started() && !conn->write_pending()) {
      idle.push_back(id);
    }
  }
  for (std::uint64_t id : idle) {
    m_.idle_closes->Increment();
    CloseConnection(id, /*cancel_inflight=*/false);
  }

  // 4. The QueryServer winds down off-loop: queued-but-unstarted work fails
  //    fast with kCancelled (-> 503 here), in-flight queries finish under
  //    their deadline budgets, and the loop keeps flushing responses the
  //    whole time. query_server_down_ flips once every callback has run.
  shutdown_thread_ = std::thread([this] {
    query_server_->Shutdown();
    query_server_down_.store(true, std::memory_order_relaxed);
    Wake();
  });
}

void HttpServer::HandleAccept() {
  for (;;) {
    if (failpoint::ShouldFail("net.accept")) {
      // Injected transient accept fault: handled exactly like ECONNABORTED
      // (count it, keep serving; the client retries).
      m_.accept_transient_errors->Increment();
      return;
    }
    if (!listen_fd_.valid()) return;  // draining closed it under our feet
    const int raw = AcceptRetry(listen_fd_.get());
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EPROTO || errno == ENETDOWN ||
          errno == EHOSTUNREACH || errno == ENONET || errno == ENETUNREACH) {
        // The connection died between SYN and accept; nothing to serve.
        m_.accept_transient_errors->Increment();
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion: accepting harder cannot help. Pause the
        // accept path briefly so existing connections can finish and
        // release fds, instead of spinning on the same error.
        m_.accept_pauses->Increment();
        accept_paused_ = true;
        accept_resume_ = After(Clock::now(), 100.0);
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
        return;
      }
      GRASP_LOG(Error) << "accept: " << std::strerror(errno);
      m_.accept_transient_errors->Increment();
      return;
    }
    OwnedFd fd(raw);
    m_.accepted->Increment();

    if (connections_.size() >= options_.max_connections) {
      // Explicit, bounded rejection: one best-effort 503 and a close beats
      // letting the backlog rot or the fd table overflow.
      m_.rejected_at_capacity->Increment();
      static const char kBusy[] =
          "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      WriteRetry(fd.get(), kBusy, sizeof(kBusy) - 1);
      continue;
    }

    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(std::move(fd), id,
                                             options_.parse_limits);
    conn->idle_deadline = After(Clock::now(), options_.idle_timeout_millis);
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd(), &event) != 0) {
      m_.io_error_closes->Increment();
      continue;  // conn destroyed; fd closed
    }
    connections_.emplace(id, std::move(conn));
    m_.active_connections->Set(static_cast<double>(connections_.size()));
  }
}

void HttpServer::UpdateEpoll(Connection* conn, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.u64 = conn->id();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd(), &event);
}

void HttpServer::HandleConnectionEvent(std::uint64_t id, std::uint32_t events) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;  // closed earlier this iteration
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    if (conn->state() == Connection::State::kAwaiting) {
      m_.disconnect_cancels->Increment();
    }
    m_.io_error_closes->Increment();
    CloseConnection(id, /*cancel_inflight=*/true);
    return;
  }
  if ((events & EPOLLRDHUP) &&
      conn->state() == Connection::State::kAwaiting) {
    // The client hung up while its query runs: propagate the disconnect as
    // a cancellation so the abandoned query stops consuming pops at its
    // next poll point. There is no one left to answer.
    m_.disconnect_cancels->Increment();
    CloseConnection(id, /*cancel_inflight=*/true);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) &&
      conn->state() == Connection::State::kReading) {
    ReadPass(conn);
    // ReadPass may have closed the connection; re-resolve before writing.
    it = connections_.find(id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }
  if ((events & EPOLLOUT) && conn->write_pending()) {
    FlushPass(conn);
  }
}

void HttpServer::ReadPass(Connection* conn) {
  const Connection::IoResult result = conn->ReadIntoParser();
  if (result != Connection::IoResult::kOk) {
    if (result == Connection::IoResult::kError) {
      m_.io_error_closes->Increment();
    }
    CloseConnection(conn->id(), /*cancel_inflight=*/true);
    return;
  }
  RequestParser& parser = conn->parser();
  if (parser.started() && !Armed(conn->request_start)) {
    conn->request_start = Clock::now();
  }
  if (parser.error()) {
    // Malformed input gets a definite status and a close — the framing is
    // unknown past the error, so the connection cannot be reused.
    HttpResponse response;
    response.status = parser.error_status();
    response.body = ErrorBody(
        response.status == 413 ? "PAYLOAD_TOO_LARGE" : "BAD_REQUEST",
        parser.error_reason());
    StartWriting(conn, response, /*keep_alive=*/false);
    return;
  }
  if (parser.done()) {
    m_.requests->Increment();
    conn->read_deadline = Clock::time_point();
    HandleParsedRequest(conn);
    return;
  }
  if (parser.started() && !Armed(conn->read_deadline)) {
    // The request clock starts at its first byte and is NOT refreshed per
    // byte: a slow-loris client trickling one header per second exhausts
    // this one budget, not one budget per byte.
    conn->read_deadline = After(Clock::now(), options_.read_timeout_millis);
    conn->idle_deadline = Clock::time_point();
  }
}

void HttpServer::HandleParsedRequest(Connection* conn) {
  const HttpRequest& request = conn->parser().request();
  const bool draining = draining_.load(std::memory_order_relaxed);
  const bool keep_alive = request.keep_alive && !draining;

  if (request.method != "GET" && request.method != "POST") {
    HttpResponse response;
    response.status = 405;
    response.headers.emplace_back("Allow", "GET, POST");
    response.body = ErrorBody("METHOD_NOT_ALLOWED", request.method);
    StartWriting(conn, response, keep_alive);
    return;
  }

  const ParsedTarget target = ParseTarget(request.target);
  if (target.path == "/healthz") {
    HttpResponse response;
    response.body = draining ? "draining\n" : "ok\n";
    StartWriting(conn, response, keep_alive);
    return;
  }
  if (target.path == "/statsz") {
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = BuildStatszBody();
    StartWriting(conn, response, keep_alive);
    return;
  }
  if (target.path == "/metrics") {
    HttpResponse response;
    response.headers.emplace_back("Content-Type",
                                  "text/plain; version=0.0.4");
    response.body = BuildMetricsBody();
    StartWriting(conn, response, keep_alive);
    return;
  }
  if (target.path == "/debug/slowz") {
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = query_server_->slow_queries().RenderJson();
    response.body += "\n";
    StartWriting(conn, response, keep_alive);
    return;
  }
  if (target.path == "/search") {
    if (draining || query_server_down_.load(std::memory_order_relaxed)) {
      // Drain protocol: work arriving after the drain began is failed
      // explicitly (it was never admitted), while already-submitted work
      // finishes; the client's retry lands on the replacement process.
      HttpResponse response;
      response.status = 503;
      response.body = ErrorBody("UNAVAILABLE", "server is draining");
      StartWriting(conn, response, /*keep_alive=*/false);
      return;
    }
    SubmitSearch(conn, request, target);
    return;
  }
  HttpResponse response;
  response.status = 404;
  response.body = ErrorBody("NOT_FOUND", target.path);
  StartWriting(conn, response, keep_alive);
}

void HttpServer::SubmitSearch(Connection* conn, const HttpRequest& request,
                              const ParsedTarget& target) {
  std::vector<std::string> keywords;
  if (request.method == "POST" && !request.body.empty()) {
    keywords = SplitWords(request.body);
  } else if (const std::string* q = target.FindParam("q")) {
    keywords = SplitWords(*q);
  }
  if (keywords.empty()) {
    HttpResponse response;
    response.status = 400;
    response.body = ErrorBody("BAD_REQUEST",
                              "no keywords (use ?q=... or a POST body)");
    StartWriting(conn, response, conn->parser().request().keep_alive);
    return;
  }

  serve::QueryServer::Request query_request;
  query_request.query.keywords = std::move(keywords);
  if (const std::string* k = target.FindParam("k")) {
    const long parsed = std::atol(k->c_str());
    if (parsed > 0) {
      query_request.query.k =
          static_cast<std::size_t>(std::min<long>(parsed, 1000));
    }
  }
  if (const std::string* scope = target.FindParam("scope")) {
    query_request.query.predicate_scope = SplitCommas(*scope);
  }
  query_request.deadline_millis = options_.default_deadline_millis;
  if (const std::string* deadline = request.FindHeader("x-deadline-ms")) {
    // Client deadline propagation: the header becomes the QueryControl
    // deadline at admission. Nonsense values fall back to the default
    // rather than granting immortality.
    const double parsed = std::atof(deadline->c_str());
    if (parsed > 0.0 && parsed <= 3.6e6) {
      query_request.deadline_millis = parsed;
    }
  }
  auto control = std::make_shared<serve::QueryControl>();
  query_request.control = control;

  const std::uint64_t seq = ++next_seq_;
  conn->BeginAwait(seq, std::move(control), request.keep_alive);
  // Backpressure + abandonment watch: stop reading (a pipelining client
  // waits in its own socket buffer), keep watching for the peer vanishing.
  UpdateEpoll(conn, EPOLLRDHUP);

  const std::uint64_t conn_id = conn->id();
  // Safe `this` capture: Run()'s epilogue shuts the QueryServer down (which
  // runs or fails every outstanding callback) before the loop thread exits,
  // and the destructor joins the loop thread before members die.
  query_server_->SubmitAsync(
      std::move(query_request),
      [this, conn_id, seq](serve::QueryServer::Response response) {
        {
          std::lock_guard<std::mutex> lock(completion_mutex_);
          completions_.push_back(Completion{conn_id, seq, std::move(response)});
        }
        Wake();
      });
}

void HttpServer::DeliverCompletion(Completion completion) {
  auto it = connections_.find(completion.conn_id);
  if (it == connections_.end() ||
      it->second->state() != Connection::State::kAwaiting ||
      it->second->inflight_seq() != completion.seq) {
    // The client is gone (disconnect propagated as a cancel) or the
    // connection moved on; the computed answer has no addressee.
    m_.dropped_completions->Increment();
    return;
  }
  Connection* conn = it->second.get();
  const serve::QueryServer::Response& result = completion.response;
  const bool draining = draining_.load(std::memory_order_relaxed);
  bool keep_alive = conn->request_keep_alive() && !draining;

  HttpResponse response;
  response.headers.emplace_back("Content-Type", "application/json");
  switch (result.status.code()) {
    case StatusCode::kOk:
      response.status = 200;
      response.body = BuildSearchBody(result);
      break;
    case StatusCode::kOverloaded: {
      if (draining || result.retry_after_millis <= 0.0) {
        // No retry hint means the shed is terminal (the QueryServer is
        // shutting down), not backlog pressure: a 429 would invite retries
        // against a server that is not coming back, so this is a 503.
        response.status = 503;
        response.body = ErrorBody("UNAVAILABLE", "server is draining");
        keep_alive = false;
        break;
      }
      // Backpressure on the wire: 429 plus the EWMA drain estimate, in
      // whole seconds for the standard header and in millis for clients
      // that can use the precision.
      response.status = 429;
      const double retry_ms = std::max(1.0, result.retry_after_millis);
      response.headers.emplace_back(
          "Retry-After",
          std::to_string(static_cast<long>(std::ceil(retry_ms / 1000.0))));
      char precise[32];
      std::snprintf(precise, sizeof(precise), "%.1f", retry_ms);
      response.headers.emplace_back("X-Retry-After-Ms", precise);
      response.body = ErrorBody("OVERLOADED", result.status.message(), retry_ms);
      break;
    }
    case StatusCode::kDeadlineExceeded:
      response.status = 504;
      response.body = ErrorBody("DEADLINE_EXCEEDED", result.status.message());
      break;
    case StatusCode::kCancelled:
      // Normally unreachable (a cancelled query's client already left); the
      // drain path reaches it for queued work failed at shutdown.
      response.status = 503;
      response.body = ErrorBody("CANCELLED", result.status.message());
      keep_alive = false;
      break;
    default:
      response.status = 500;
      response.body = ErrorBody("INTERNAL", result.status.ToString());
      break;
  }
  StartWriting(conn, response, keep_alive);
}

void HttpServer::StartWriting(Connection* conn, const HttpResponse& response,
                              bool keep_alive) {
  CountResponse(conn, response.status);
  conn->QueueResponse(response, keep_alive);
  conn->write_deadline = After(Clock::now(), options_.write_timeout_millis);
  conn->read_deadline = Clock::time_point();
  conn->idle_deadline = Clock::time_point();
  FlushPass(conn);
}

void HttpServer::FlushPass(Connection* conn) {
  const Connection::IoResult result = conn->FlushWrites();
  if (result != Connection::IoResult::kOk) {
    m_.io_error_closes->Increment();
    CloseConnection(conn->id(), /*cancel_inflight=*/true);
    return;
  }
  if (conn->write_pending()) {
    // Kernel buffer full: a slow (or adversarial) reader. Wait for
    // EPOLLOUT under the write deadline; reads stay off.
    UpdateEpoll(conn, EPOLLOUT | EPOLLRDHUP);
    return;
  }
  conn->write_deadline = Clock::time_point();
  if (conn->close_after_write()) {
    CloseConnection(conn->id(), /*cancel_inflight=*/false);
    return;
  }
  conn->ResetForNextRequest();
  conn->idle_deadline = After(Clock::now(), options_.idle_timeout_millis);
  UpdateEpoll(conn, EPOLLIN | EPOLLRDHUP);
  if (conn->has_carry()) {
    // A pipelined request is already buffered user-side where epoll cannot
    // see it; run the read pass now instead of waiting forever.
    ReadPass(conn);
  }
}

void HttpServer::SweepTimeouts() {
  const auto now = Clock::now();
  if (accept_paused_ && now >= accept_resume_ && listen_fd_.valid()) {
    accept_paused_ = false;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kListenId;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &event);
    HandleAccept();  // catch up on whatever queued during the pause
  }

  std::vector<std::uint64_t> expired_read, expired_idle, expired_write;
  for (const auto& [id, conn] : connections_) {
    if (Armed(conn->write_deadline) && now >= conn->write_deadline &&
        conn->write_pending()) {
      expired_write.push_back(id);
    } else if (Armed(conn->read_deadline) && now >= conn->read_deadline) {
      expired_read.push_back(id);
    } else if (Armed(conn->idle_deadline) && now >= conn->idle_deadline) {
      expired_idle.push_back(id);
    }
  }
  for (std::uint64_t id : expired_write) {
    // The response exists but the client will not take it: cut the cord.
    m_.slow_reader_closes->Increment();
    CloseConnection(id, /*cancel_inflight=*/true);
  }
  for (std::uint64_t id : expired_read) {
    // Slow-loris: a request begun but never finished within the budget.
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    HttpResponse response;
    response.status = 408;
    response.body = ErrorBody("REQUEST_TIMEOUT",
                              "request not completed in time");
    StartWriting(it->second.get(), response, /*keep_alive=*/false);
  }
  for (std::uint64_t id : expired_idle) {
    m_.idle_closes->Increment();
    CloseConnection(id, /*cancel_inflight=*/false);
  }
}

void HttpServer::CloseConnection(std::uint64_t id, bool cancel_inflight) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (cancel_inflight) conn->CancelInflight();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd(), nullptr);
  connections_.erase(it);
  m_.active_connections->Set(static_cast<double>(connections_.size()));
}

void HttpServer::CountResponse(Connection* conn, int status) {
  metrics::Counter* counter;
  metrics::Histogram* latency;
  if (status == 408) {
    counter = m_.responses_408;
    latency = m_.latency_408;
  } else if (status == 429) {
    counter = m_.responses_429;
    latency = m_.latency_429;
  } else if (status < 300) {
    counter = m_.responses_2xx;
    latency = m_.latency_2xx;
  } else if (status < 500) {
    counter = m_.responses_4xx;
    latency = m_.latency_4xx;
  } else {
    counter = m_.responses_5xx;
    latency = m_.latency_5xx;
  }
  counter->Increment();
  if (Armed(conn->request_start)) {
    // First request byte -> response queued. The stamp is consumed so a
    // later close artifact on the same connection records nothing.
    const double micros = std::chrono::duration<double, std::micro>(
                              Clock::now() - conn->request_start)
                              .count();
    latency->RecordMicros(micros);
    conn->request_start = Clock::time_point();
  }
}

std::string HttpServer::BuildSearchBody(
    const serve::QueryServer::Response& response) {
  std::string body = "{\"status\":\"OK\",\"degraded\":";
  body += response.degraded ? "true" : "false";
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"queue_ms\":%.3f,\"total_ms\":%.3f",
                response.queue_millis, response.total_millis);
  body += buf;
  if (response.degraded) {
    // Degraded prefixes are surfaced with their provenance, never silently:
    // the client learns it got a verified prefix and why it stopped.
    std::snprintf(buf, sizeof(buf), ",\"stopped_after_pops\":%zu",
                  response.result.exploration_stats.cursors_popped);
    body += buf;
    body += ",\"stop_reason\":\"";
    body += response.result.exploration_stats.deadline_expired
                ? "deadline"
                : "pop_budget";
    body += "\"";
  }
  body += ",\"results\":[";
  for (std::size_t i = 0; i < response.result.queries.size(); ++i) {
    if (i > 0) body += ",";
    std::snprintf(buf, sizeof(buf), "{\"rank\":%zu,\"cost\":%.6f,\"query\":\"",
                  i + 1, response.result.queries[i].cost);
    body += buf;
    AppendJsonEscaped(&body,
                      response.result.queries[i].query.CanonicalString());
    body += "\"}";
  }
  body += "]}\n";
  return body;
}

std::string HttpServer::BuildStatszBody() {
  // Every registered instrument, rendered into one unbounded JSON object —
  // no fixed buffer to truncate mid-object, and a counter added anywhere in
  // the stack shows up here without this function changing.
  std::string body = "{";
  bool first = true;
  for (const metrics::Registry* registry : MetricRegistries()) {
    registry->AppendJsonEntries(&body, &first);
  }
  body += "}\n";
  return body;
}

std::string HttpServer::BuildMetricsBody() {
  std::string body;
  for (const metrics::Registry* registry : MetricRegistries()) {
    body += registry->RenderPrometheus();
  }
  return body;
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.accepted = m_.accepted->value();
  s.accept_transient_errors = m_.accept_transient_errors->value();
  s.accept_pauses = m_.accept_pauses->value();
  s.rejected_at_capacity = m_.rejected_at_capacity->value();
  s.requests = m_.requests->value();
  s.responses_2xx = m_.responses_2xx->value();
  s.responses_4xx = m_.responses_4xx->value();
  s.responses_408 = m_.responses_408->value();
  s.responses_429 = m_.responses_429->value();
  s.responses_5xx = m_.responses_5xx->value();
  s.disconnect_cancels = m_.disconnect_cancels->value();
  s.dropped_completions = m_.dropped_completions->value();
  s.slow_reader_closes = m_.slow_reader_closes->value();
  s.idle_closes = m_.idle_closes->value();
  s.io_error_closes = m_.io_error_closes->value();
  s.drain_force_closed = m_.drain_force_closed->value();
  // The gauge is maintained by the loop thread on every open/close; reading
  // it here is one relaxed atomic load — stats() no longer races the loop's
  // mutations of connections_ itself.
  s.active_connections =
      static_cast<std::uint64_t>(m_.active_connections->value());
  return s;
}

}  // namespace grasp::net
