#ifndef GRASP_NET_HTTP_H_
#define GRASP_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grasp::net {

/// Hard input limits enforced by RequestParser. Every limit rejects with a
/// definite HTTP status *before* buffering past the cap — a hostile client
/// cannot make the parser allocate more than max_head_bytes +
/// max_body_bytes no matter what it sends.
struct ParseLimits {
  /// Request line + header block, terminator included.
  std::size_t max_head_bytes = 16 * 1024;
  /// Request line alone (method + target + version).
  std::size_t max_request_line_bytes = 4 * 1024;
  std::size_t max_headers = 64;
  /// Declared Content-Length above this rejects with 413 immediately —
  /// the body is never buffered.
  std::size_t max_body_bytes = 64 * 1024;
};

/// One parsed request. Header names are lowercased at parse time; values
/// keep their bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;  // origin-form, as sent (undecoded)
  int minor_version = 1;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Resolved from the version + Connection header.
  bool keep_alive = true;

  /// First header named `name` (lowercase), nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// Incremental HTTP/1.0/1.1 request parser: feed it bytes as they arrive
/// off the socket, in any fragmentation, and it consumes up to one request.
/// Lenient on line endings (CRLF or bare LF), strict on everything that has
/// ever been a request-smuggling vector: exactly one Content-Length of pure
/// digits, no Transfer-Encoding (501 — this server never speaks chunked),
/// token-validated method and header names, no control bytes in values.
class RequestParser {
 public:
  explicit RequestParser(ParseLimits limits) : limits_(limits) {}
  RequestParser() : RequestParser(ParseLimits{}) {}

  /// Consumes bytes from `data`. Returns how many were consumed; bytes past
  /// a completed request are left for the caller (pipelining). Once done()
  /// or error(), consumes nothing further until Reset().
  std::size_t Feed(std::string_view data);

  bool done() const { return state_ == State::kDone; }
  bool error() const { return state_ == State::kError; }
  /// HTTP status to reject with when error() (400/413/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// The parsed request; valid once done().
  HttpRequest& request() { return request_; }
  const HttpRequest& request() const { return request_; }

  /// True once any byte of the current request has been consumed — an idle
  /// keep-alive connection and a mid-request stall (slow-loris) time out on
  /// different clocks and with different responses (close vs 408).
  bool started() const { return started_; }

  /// Bytes currently buffered; bounded by the limits (asserted in tests).
  std::size_t buffered_bytes() const { return head_.size() + request_.body.size(); }

  /// Ready for the next request on the same connection.
  void Reset();

 private:
  enum class State { kHead, kBody, kDone, kError };

  void Fail(int status, std::string reason);
  /// Parses the accumulated head (request line + headers). On success
  /// transitions to kBody/kDone; on failure to kError.
  void ParseHead();
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);

  ParseLimits limits_;
  State state_ = State::kHead;
  bool started_ = false;
  std::string head_;
  std::size_t head_scanned_ = 0;  // resume point for the terminator scan
  std::size_t content_length_ = 0;
  bool saw_content_length_ = false;
  int error_status_ = 0;
  std::string error_reason_;
  HttpRequest request_;
};

/// One response to serialize. Content-Length and Connection are emitted
/// automatically from `body` and `keep_alive`.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Stable reason phrase for the status codes this server emits.
const char* ReasonPhrase(int status);

/// Serializes status line + headers + body into wire bytes.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Splits an origin-form target into its path and decoded query parameters
/// ('+' and %XX decoded in values, key order preserved). Malformed %-escapes
/// are passed through literally rather than rejected — query strings carry
/// keywords, not protocol structure.
struct ParsedTarget {
  std::string path;
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* FindParam(std::string_view name) const;
};
ParsedTarget ParseTarget(std::string_view target);

/// Appends `text` JSON-escaped (quotes, backslash, control bytes) to `out`.
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace grasp::net

#endif  // GRASP_NET_HTTP_H_
