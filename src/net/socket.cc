#include "net/socket.h"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace grasp::net {

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    // No EINTR loop: on Linux close() releases the fd even when it returns
    // EINTR, and retrying could close a descriptor another thread just
    // received from the kernel.
    ::close(fd_);
  }
  fd_ = -1;
}

std::ptrdiff_t ReadRetry(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

std::ptrdiff_t WriteRetry(int fd, const void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

int AcceptRetry(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

void IgnoreSigpipe() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &action, nullptr);
}

namespace {

Result<sockaddr_in> ResolveV4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only — a serving binary should not stall in a resolver;
  // anything else is configuration, not input.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<OwnedFd> ListenTcp(const std::string& host, std::uint16_t port,
                          int backlog, std::uint16_t* bound_port) {
  GRASP_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("bind " + host + ":" + std::to_string(port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Status::IoError(std::string("getsockname: ") +
                             std::strerror(errno));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<OwnedFd> ConnectTcp(const std::string& host, std::uint16_t port) {
  GRASP_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // EINTR during connect leaves the attempt in progress; re-calling then
  // reports EALREADY until it resolves and EISCONN once it has. Only after
  // an interrupted first call are those two success-in-disguise.
  bool interrupted = false;
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR || (interrupted && errno == EALREADY)) {
      interrupted = true;
      continue;
    }
    if (interrupted && errno == EISCONN) break;
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace grasp::net
