#include "shard/sharded_engine.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace grasp::shard {

using RankedQuery = core::KeywordSearchEngine::RankedQuery;

ShardedEngine::ShardedEngine(const rdf::TripleStore& store,
                             const rdf::Dictionary& dictionary,
                             Options options)
    : options_(std::move(options)) {
  GRASP_CHECK_GT(options_.num_shards, 0u);
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : options_.engine.metrics;
  // Replicas keep their per-engine registry off: S copies of the unlabeled
  // `grasp_engine_*` families would silently sum into one series. The
  // sharded layer owns observability via the labeled `grasp_shard_*` set.
  core::KeywordSearchEngine::Options engine_options = options_.engine;
  engine_options.metrics = nullptr;
  engines_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    engines_.push_back(std::make_unique<core::KeywordSearchEngine>(
        store, dictionary, engine_options));
  }
  plan_ = std::make_shared<const ShardPlan>(
      ShardPlan::Build(engines_.front()->data_graph(),
                       engines_.front()->summary_graph(), options_.num_shards));
  scopes_.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    scopes_.emplace_back(plan_.get(), static_cast<std::uint32_t>(i));
  }
  InitMetrics();
}

ShardedEngine::ShardedEngine(
    Options options,
    std::vector<std::unique_ptr<core::KeywordSearchEngine>> engines,
    std::shared_ptr<const ShardPlan> plan)
    : options_(std::move(options)),
      engines_(std::move(engines)),
      plan_(std::move(plan)) {
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : options_.engine.metrics;
  scopes_.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    scopes_.emplace_back(plan_.get(), static_cast<std::uint32_t>(i));
  }
  InitMetrics();
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& path, Options options) {
  core::KeywordSearchEngine::Options engine_options = options.engine;
  engine_options.metrics = nullptr;

  // Shard 0 opens first and supplies the plan the image was built with.
  std::vector<std::unique_ptr<core::KeywordSearchEngine>> engines;
  GRASP_ASSIGN_OR_RETURN(std::unique_ptr<core::KeywordSearchEngine> first,
                         core::KeywordSearchEngine::Open(path, engine_options));
  const std::span<const std::uint32_t> serialized =
      first->loaded_shard_plan();
  if (serialized.empty()) {
    return Status::InvalidArgument(
        "snapshot carries no shard plan (build it with --shards=N)");
  }
  GRASP_ASSIGN_OR_RETURN(
      ShardPlan plan,
      ShardPlan::Deserialize(serialized, first->data_graph(),
                             first->summary_graph()));
  if (options.num_shards != 0 && options.num_shards != plan.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("snapshot plan has %u shards, %zu requested",
                  plan.num_shards(), options.num_shards));
  }
  options.num_shards = plan.num_shards();

  engines.reserve(plan.num_shards());
  engines.push_back(std::move(first));
  // Every further shard maps the image independently (its own mmap) — full
  // replicas by design; the plan partitions candidate-generation ownership,
  // not index data.
  for (std::uint32_t i = 1; i < plan.num_shards(); ++i) {
    GRASP_ASSIGN_OR_RETURN(
        std::unique_ptr<core::KeywordSearchEngine> engine,
        core::KeywordSearchEngine::Open(path, engine_options));
    engines.push_back(std::move(engine));
  }
  return std::unique_ptr<ShardedEngine>(new ShardedEngine(
      std::move(options), std::move(engines),
      std::make_shared<const ShardPlan>(std::move(plan))));
}

void ShardedEngine::InitMetrics() {
  shard_metrics_.assign(engines_.size(), ShardInstruments{});
  if (metrics_ == nullptr) return;
  constexpr double kMicros = 1e-6;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    const metrics::Labels labels = {{"shard", std::to_string(i)}};
    shard_metrics_[i].searches = metrics_->GetCounter(
        "grasp_shard_searches_total", "Scatter legs served, per shard",
        labels);
    shard_metrics_[i].duration = metrics_->GetHistogram(
        "grasp_shard_search_duration_seconds",
        "Per-shard end-to-end search time within a scatter", labels, kMicros);
    shard_metrics_[i].degraded = metrics_->GetCounter(
        "grasp_shard_degraded_total",
        "Scatter legs whose exploration stopped early, per shard", labels);
  }
  merge_duration_ = metrics_->GetHistogram(
      "grasp_shard_merge_duration_seconds",
      "Gather time: structure dedup, ranked merge, completeness cut", {},
      kMicros);
  merge_truncated_ = metrics_->GetCounter(
      "grasp_shard_merge_truncated_total",
      "Merged candidates dropped by the completeness cut (degraded runs)");
}

ShardedEngine::SearchResult ShardedEngine::Search(
    const std::vector<std::string>& keywords, std::size_t k,
    const core::ExplorationOptions& exploration,
    std::span<const std::string> predicate_scope) const {
  WallTimer total_timer;
  const std::size_t s = engines_.size();
  std::vector<SearchResult> shard_results(s);

  // Scatter: every shard runs the full exploration with the same options
  // and budget (identical pop streams, so early stops land on the same
  // pop), differing only in its candidate-generation scope.
  WallTimer scatter_timer;
  auto run_shard = [&](std::size_t i) {
    core::ExplorationOptions shard_exploration = exploration;
    shard_exploration.candidate_scope = &scopes_[i];
    shard_results[i] = engines_[i]->SearchShardPayload(
        keywords, k, shard_exploration, predicate_scope);
    if (shard_metrics_[i].searches != nullptr) {
      shard_metrics_[i].searches->Increment();
      shard_metrics_[i].duration->RecordMicros(
          shard_results[i].total_millis * 1e3);
      if (shard_results[i].exploration_stats.stopped_early()) {
        shard_metrics_[i].degraded->Increment();
      }
    }
  };
  {
    std::vector<std::thread> workers;
    workers.reserve(s > 0 ? s - 1 : 0);
    for (std::size_t i = 1; i < s; ++i) {
      workers.emplace_back(run_shard, i);
    }
    run_shard(0);
    for (std::thread& t : workers) t.join();
  }
  const double scatter_millis = scatter_timer.ElapsedMillis();

  // Gather: replay the unsharded pipeline's final steps on the union of
  // the shards' raw candidate payloads (see the class comment for why each
  // step reproduces the single-engine result).
  WallTimer merge_timer;
  SearchResult merged;
  merged.explored_k = shard_results[0].explored_k;
  merged.matches_per_keyword = shard_results[0].matches_per_keyword;
  merged.augmentation_cache_hit = shard_results[0].augmentation_cache_hit;
  merged.status = Status::Ok();
  for (const SearchResult& r : shard_results) {
    if (!r.status.ok() && merged.status.ok()) merged.status = r.status;
  }

  // 1+2. Structure-level dedup across shards, keeping the entry the
  // unsharded explorer would have kept: min (cost, discovery) — the first
  // decomposition to reach the structure's final cost.
  std::vector<RankedQuery> pool;
  std::unordered_map<std::uint64_t, std::size_t> best_of_structure;
  for (SearchResult& r : shard_results) {
    for (RankedQuery& rq : r.queries) {
      const std::uint64_t hash = rq.subgraph.StructureHash();
      auto [it, inserted] = best_of_structure.emplace(hash, pool.size());
      if (inserted) {
        pool.push_back(std::move(rq));
        continue;
      }
      RankedQuery& held = pool[it->second];
      if (rq.cost < held.cost ||
          (rq.cost == held.cost &&
           rq.subgraph.discovery < held.subgraph.discovery)) {
        held = std::move(rq);
      }
    }
  }

  // 3. The explorer's ranked order: ascending cost, generation order among
  // ties. The canonical key only decides when discovery saturates its
  // combination field (>2^20 combinations in one event) — and then
  // deterministically.
  std::sort(pool.begin(), pool.end(),
            [](const RankedQuery& a, const RankedQuery& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.subgraph.discovery != b.subgraph.discovery) {
                return a.subgraph.discovery < b.subgraph.discovery;
              }
              return a.canonical < b.canonical;
            });

  // 4. The explorers returned at most explored_k structures each; the
  // merged ranking is read at the same depth.
  if (merged.explored_k > 0 && pool.size() > merged.explored_k) {
    pool.resize(merged.explored_k);
  }

  // 5. Completeness cut: every structure of the full graph cheaper than
  // the weakest shard certificate is present (its owner generated it), so
  // the prefix strictly below it is exactly the unsharded prefix. +inf on
  // complete runs — no cut.
  double complete_below = shard_results[0].exploration_stats.complete_below;
  for (const SearchResult& r : shard_results) {
    complete_below =
        std::min(complete_below, r.exploration_stats.complete_below);
  }
  std::size_t cut = pool.size();
  while (cut > 0 && pool[cut - 1].cost >= complete_below) --cut;
  if (cut < pool.size()) {
    if (merge_truncated_ != nullptr) {
      merge_truncated_->Increment(pool.size() - cut);
    }
    pool.resize(cut);
  }

  // 6. Isomorphism-level dedup, keep-first: the list is in ranked order,
  // so the first representative is the one the engine's keep-cheaper map
  // retains (a later strictly-cheaper replacement cannot exist on a
  // cost-sorted list).
  std::unordered_set<std::string> seen_canonical;
  seen_canonical.reserve(pool.size());
  merged.queries.reserve(std::min(pool.size(), k));
  for (RankedQuery& rq : pool) {
    if (seen_canonical.insert(rq.canonical).second) {
      merged.queries.push_back(std::move(rq));
    }
  }

  // 7+8. The engine's final comparator over precomputed keys, then top k.
  std::sort(merged.queries.begin(), merged.queries.end(),
            [](const RankedQuery& a, const RankedQuery& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.structure_cost != b.structure_cost) {
                return a.structure_cost < b.structure_cost;
              }
              if (a.constant_count != b.constant_count) {
                return a.constant_count < b.constant_count;
              }
              return a.canonical < b.canonical;
            });
  if (merged.queries.size() > k) merged.queries.resize(k);

  // Merged stats: shard 0's exploration as the base (replicated traversal,
  // so the shared counters agree), flags OR'd, candidate work summed, and
  // the weakest certificate as the merged bound.
  merged.exploration_stats = shard_results[0].exploration_stats;
  merged.exploration_stats.complete_below = complete_below;
  merged.exploration_stats.subgraphs_generated = 0;
  merged.exploration_stats.subgraphs_deduplicated = 0;
  for (const SearchResult& r : shard_results) {
    const core::ExplorationStats& st = r.exploration_stats;
    merged.exploration_stats.cursors_popped =
        std::max(merged.exploration_stats.cursors_popped, st.cursors_popped);
    merged.exploration_stats.cursors_created =
        std::max(merged.exploration_stats.cursors_created, st.cursors_created);
    merged.exploration_stats.subgraphs_generated += st.subgraphs_generated;
    merged.exploration_stats.subgraphs_deduplicated +=
        st.subgraphs_deduplicated;
    merged.exploration_stats.early_terminated |= st.early_terminated;
    merged.exploration_stats.exhausted |= st.exhausted;
    merged.exploration_stats.budget_exceeded |= st.budget_exceeded;
    merged.exploration_stats.cancelled |= st.cancelled;
    merged.exploration_stats.deadline_expired |= st.deadline_expired;
    merged.degraded |= r.degraded;
    merged.keyword_millis = std::max(merged.keyword_millis, r.keyword_millis);
    merged.augmentation_millis =
        std::max(merged.augmentation_millis, r.augmentation_millis);
  }
  merged.exploration_millis = scatter_millis;
  merged.mapping_millis = merge_timer.ElapsedMillis();
  if (merge_duration_ != nullptr) {
    merge_duration_->RecordMicros(merged.mapping_millis * 1e3);
  }
  merged.total_millis = total_timer.ElapsedMillis();
  return merged;
}

}  // namespace grasp::shard
