#ifndef GRASP_SHARD_SHARD_PLAN_H_
#define GRASP_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/partition.h"
#include "common/status.h"
#include "core/exploration.h"
#include "rdf/data_graph.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"

namespace grasp::shard {

/// Assigns every element of the (augmented) summary graph to exactly one of
/// S shards. In the sharded engine each shard is a full replica running the
/// complete exploration; the plan partitions *candidate generation*: a shard
/// only emits candidates at connecting elements it owns, so every global
/// candidate is produced by exactly one shard and the gather's union is
/// lossless (see sharded_engine.h for the merge argument).
///
/// Ownership derives from a graph partition of the *data* graph (the
/// BLINKS-style partitioner, kGreedy): a base summary node follows the data
/// vertex of its term, so classes that share relation edges — and therefore
/// co-occur in candidate structures — tend to land on one shard, keeping the
/// per-shard candidate streams coherent. Elements with no data vertex
/// (Thing, per-query overlay nodes) hash deterministically instead; edges
/// follow their `from` endpoint. Every rule is a pure function of immutable
/// inputs that are identical across replicas, so all shards agree on every
/// owner without communication.
class ShardPlan {
 public:
  /// Partitions `graph` into `num_shards` blocks (kGreedy) and derives the
  /// per-summary-node owner table from `summary`. num_shards >= 1; the
  /// partitioner may produce fewer non-empty blocks than shards on tiny
  /// graphs (the extra shards then own only hash-assigned elements).
  static ShardPlan Build(const rdf::DataGraph& graph,
                         const summary::SummaryGraph& summary,
                         std::size_t num_shards);

  /// Rebuilds a plan from its Serialize() form ([num_shards,
  /// shard_of_vertex...]) against the graph/summary of the opening engine.
  /// Rejects size or range mismatches (a plan from a different image).
  static Result<ShardPlan> Deserialize(
      std::span<const std::uint32_t> serialized, const rdf::DataGraph& graph,
      const summary::SummaryGraph& summary);

  /// Snapshot form: element 0 = num_shards, elements 1..NumVertices =
  /// per-vertex shard ids (the kSectionShardPlan payload).
  std::vector<std::uint32_t> Serialize() const;

  std::uint32_t num_shards() const { return num_shards_; }

  /// Owner of a data-graph vertex (the partitioner's block).
  std::uint32_t OwnerOfVertex(rdf::VertexId v) const {
    return shard_of_vertex_[v];
  }

  /// Owner of an augmented-summary node: the precomputed table for base
  /// nodes, a deterministic hash for per-query overlay nodes (identical
  /// augmentation on every replica yields identical overlay ids, so all
  /// shards agree).
  std::uint32_t OwnerOfNode(const summary::AugmentedGraph& graph,
                            summary::NodeId node) const;

  /// Owner of any augmented-summary element; edges follow their `from`
  /// node, so an edge and its source always co-locate.
  std::uint32_t OwnerOfElement(const summary::AugmentedGraph& graph,
                               summary::ElementId element) const;

 private:
  ShardPlan() = default;
  void DeriveSummaryOwners(const rdf::DataGraph& graph,
                           const summary::SummaryGraph& summary);

  std::uint32_t num_shards_ = 1;
  std::vector<std::uint32_t> shard_of_vertex_;      ///< per data vertex
  std::vector<std::uint32_t> shard_of_base_node_;   ///< per base summary node
};

/// CandidateScope of one shard: owns exactly the connecting elements the
/// plan maps to `shard`. The plan must outlive the scope.
class ShardCandidateScope final : public core::CandidateScope {
 public:
  ShardCandidateScope(const ShardPlan* plan, std::uint32_t shard)
      : plan_(plan), shard_(shard) {}
  bool OwnsConnector(const summary::AugmentedGraph& graph,
                     summary::ElementId element) const override {
    return plan_->OwnerOfElement(graph, element) == shard_;
  }

 private:
  const ShardPlan* plan_;
  std::uint32_t shard_;
};

}  // namespace grasp::shard

#endif  // GRASP_SHARD_SHARD_PLAN_H_
