#include "shard/shard_plan.h"

#include <limits>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace grasp::shard {

namespace {

/// Deterministic fallback owner for elements with no data-graph anchor.
/// Seeded so node and term hashes occupy different streams.
std::uint32_t HashOwner(std::uint64_t key, std::uint32_t num_shards) {
  return static_cast<std::uint32_t>(Mix64(key ^ 0x5ca1ab1e5ca1ab1eULL) %
                                    num_shards);
}

}  // namespace

void ShardPlan::DeriveSummaryOwners(const rdf::DataGraph& graph,
                                    const summary::SummaryGraph& summary) {
  const std::size_t n = summary.NumNodes();
  shard_of_base_node_.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    const summary::SummaryNode& node = summary.nodes()[id];
    // A class node anchors at its class vertex in the data graph; Thing and
    // other vertex-less terms (nothing to anchor at) hash instead.
    const rdf::VertexId v = node.term != rdf::kInvalidTermId
                                ? graph.VertexOf(node.term)
                                : rdf::kInvalidVertexId;
    shard_of_base_node_[id] =
        v != rdf::kInvalidVertexId
            ? shard_of_vertex_[v]
            : HashOwner(node.term != rdf::kInvalidTermId ? node.term : id,
                        num_shards_);
  }
}

ShardPlan ShardPlan::Build(const rdf::DataGraph& graph,
                           const summary::SummaryGraph& summary,
                           std::size_t num_shards) {
  GRASP_CHECK_GT(num_shards, 0u);
  GRASP_CHECK_LT(num_shards, std::numeric_limits<std::uint32_t>::max());
  ShardPlan plan;
  plan.num_shards_ = static_cast<std::uint32_t>(num_shards);
  if (num_shards == 1) {
    // Degenerate plan: everything on shard 0, no partitioner run. The
    // sharded pipeline then reduces exactly to the unsharded one.
    plan.shard_of_vertex_.assign(graph.NumVertices(), 0);
  } else {
    const baseline::Partition partition = baseline::PartitionGraph(
        graph, num_shards, baseline::PartitionMethod::kGreedy);
    plan.shard_of_vertex_.assign(partition.block_of.begin(),
                                 partition.block_of.end());
  }
  plan.DeriveSummaryOwners(graph, summary);
  return plan;
}

Result<ShardPlan> ShardPlan::Deserialize(
    std::span<const std::uint32_t> serialized, const rdf::DataGraph& graph,
    const summary::SummaryGraph& summary) {
  if (serialized.size() != graph.NumVertices() + 1) {
    return Status::InvalidArgument(StrFormat(
        "shard plan covers %zu vertices, graph has %zu",
        serialized.empty() ? 0 : serialized.size() - 1, graph.NumVertices()));
  }
  const std::uint32_t num_shards = serialized[0];
  if (num_shards == 0) {
    return Status::InvalidArgument("shard plan has zero shards");
  }
  ShardPlan plan;
  plan.num_shards_ = num_shards;
  plan.shard_of_vertex_.reserve(serialized.size() - 1);
  for (std::size_t i = 1; i < serialized.size(); ++i) {
    if (serialized[i] >= num_shards) {
      return Status::InvalidArgument(
          StrFormat("shard plan assigns vertex %zu to shard %u of %u", i - 1,
                    serialized[i], num_shards));
    }
    plan.shard_of_vertex_.push_back(serialized[i]);
  }
  plan.DeriveSummaryOwners(graph, summary);
  return plan;
}

std::vector<std::uint32_t> ShardPlan::Serialize() const {
  std::vector<std::uint32_t> out;
  out.reserve(shard_of_vertex_.size() + 1);
  out.push_back(num_shards_);
  out.insert(out.end(), shard_of_vertex_.begin(), shard_of_vertex_.end());
  return out;
}

std::uint32_t ShardPlan::OwnerOfNode(const summary::AugmentedGraph& graph,
                                     summary::NodeId node) const {
  if (node < graph.base_nodes()) return shard_of_base_node_[node];
  // Overlay (per-query) node: value nodes hash by their literal term so the
  // same value owns consistently across queries; artificial nodes (no term)
  // hash by id. Replicas build identical overlays, so they agree either way.
  const summary::SummaryNode& n = graph.node(node);
  return HashOwner(n.term != rdf::kInvalidTermId
                       ? n.term
                       : static_cast<std::uint64_t>(node) | (1ULL << 40),
                   num_shards_);
}

std::uint32_t ShardPlan::OwnerOfElement(const summary::AugmentedGraph& graph,
                                        summary::ElementId element) const {
  if (element.is_edge()) {
    return OwnerOfNode(graph, graph.edge(element.index()).from);
  }
  return OwnerOfNode(graph, element.index());
}

}  // namespace grasp::shard
