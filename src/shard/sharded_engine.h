#ifndef GRASP_SHARD_SHARDED_ENGINE_H_
#define GRASP_SHARD_SHARDED_ENGINE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/engine.h"
#include "shard/shard_plan.h"

namespace grasp::shard {

/// Scatter-gather serving over S full engine replicas with partitioned
/// candidate generation — a core::SearchBackend, so it slots behind the
/// admission layer and HTTP front end unchanged.
///
/// Every shard runs the complete exploration (same root cursors, same pop
/// stream, same path recording) but only generates candidates at connecting
/// elements its ShardPlan entry owns; candidate enumeration, deduplication,
/// materialization and ranking — the per-structure work — partition across
/// shards. The gather concatenates the shards' raw candidate payloads and
/// replays the unsharded pipeline's final steps on the union:
///
///   1. structure-level dedup keeping the min (cost, discovery) entry — the
///      decomposition the unsharded InsertCandidate would have kept;
///   2. sort by (cost, discovery) — the explorer's ranked order, including
///      its arrival-time tie-break among equal costs;
///   3. truncate to the explorers' candidate depth (explored_k);
///   4. cut at the completeness bound B = min over shards of
///      ExplorationStats::complete_below — every structure of the full
///      graph cheaper than B is in the merged list (its owner generated
///      it), so the prefix below B equals the unsharded ranking's prefix;
///   5. canonical (isomorphism-level) dedup in order, then the final
///      (cost, structure_cost, constant_count, canonical) sort and resize
///      to k — byte-identical replays of the unsharded mapping stage.
///
/// On a run to completion every shard certifies complete_below above its
/// returned costs and the merge reproduces the unsharded top-k exactly; on
/// deadline/budget stops the result is the same verified prefix contract
/// the single engine honours (degraded = true, every returned entry exact).
class ShardedEngine final : public core::SearchBackend {
 public:
  struct Options {
    std::size_t num_shards = 2;
    /// Per-shard engine configuration (every replica gets the same one).
    core::KeywordSearchEngine::Options engine;
    /// Registry for the `grasp_shard_*` instruments (per-shard labeled
    /// families + merge timings). Falls back to engine.metrics; may be
    /// nullptr (no-op). Not owned; must outlive the engine.
    metrics::Registry* metrics = nullptr;
  };

  using SearchResult = core::KeywordSearchEngine::SearchResult;

  /// In-memory deployment: partitions `store`'s data graph into
  /// options.num_shards blocks and builds S engines over the same store.
  /// `store` and `dictionary` must outlive the engine.
  ShardedEngine(const rdf::TripleStore& store,
                const rdf::Dictionary& dictionary, Options options);

  /// Snapshot deployment: every shard opens `path` with its own mapping (a
  /// full replica each — sharding partitions candidate-generation work, not
  /// index data), and the plan comes from the image's kSectionShardPlan
  /// (written by `grasp_snapshot build --shards=N`). Fails if the image
  /// carries no plan or its shard count differs from options.num_shards
  /// (pass num_shards = 0 to accept the image's count).
  static Result<std::unique_ptr<ShardedEngine>> Open(const std::string& path,
                                                     Options options);

  // --- core::SearchBackend -------------------------------------------------
  const core::ExplorationOptions& default_exploration() const override {
    return options_.engine.exploration;
  }
  metrics::Registry* metrics_registry() const override { return metrics_; }
  /// Scatters the query to all shards in parallel and gathers the merged
  /// ranking (see class comment). Thread-safe.
  SearchResult Search(const std::vector<std::string>& keywords, std::size_t k,
                      const core::ExplorationOptions& exploration,
                      std::span<const std::string> predicate_scope
                      = {}) const override;

  /// Evaluates a computed query against the store. Every shard holds the
  /// full data, so any replica can answer; shard 0 serves.
  Result<query::EvalResult> Answers(const query::ConjunctiveQuery& query,
                                    std::size_t limit = 0) const {
    return engines_.front()->Answers(query, limit);
  }

  std::size_t num_shards() const { return engines_.size(); }
  const core::KeywordSearchEngine& shard(std::size_t i) const {
    return *engines_[i];
  }
  const ShardPlan& plan() const { return *plan_; }

 private:
  ShardedEngine(Options options,
                std::vector<std::unique_ptr<core::KeywordSearchEngine>> engines,
                std::shared_ptr<const ShardPlan> plan);
  void InitMetrics();

  /// Per-shard instrument handles ({"shard", "<i>"}-labeled families).
  struct ShardInstruments {
    metrics::Counter* searches = nullptr;
    metrics::Histogram* duration = nullptr;
    metrics::Counter* degraded = nullptr;
  };

  Options options_;
  std::vector<std::unique_ptr<core::KeywordSearchEngine>> engines_;
  std::shared_ptr<const ShardPlan> plan_;
  std::vector<ShardCandidateScope> scopes_;  ///< one per shard, plan-backed

  metrics::Registry* metrics_ = nullptr;
  std::vector<ShardInstruments> shard_metrics_;
  metrics::Histogram* merge_duration_ = nullptr;
  /// Merged candidates dropped by the completeness cut (step 4) — nonzero
  /// only on degraded runs, where it measures how much of the merged tail
  /// the per-shard bounds could not certify.
  metrics::Counter* merge_truncated_ = nullptr;
};

}  // namespace grasp::shard

#endif  // GRASP_SHARD_SHARDED_ENGINE_H_
