#include "serve/slow_query_log.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace grasp::serve {
namespace {

bool Slower(const SlowQueryLog::Entry& a, const SlowQueryLog::Entry& b) {
  return a.total_millis > b.total_millis;
}

// Local JSON string escaper: the net layer sits above serve, so serve
// cannot reach for net's JSON helpers without inverting the stack.
void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendMillisField(std::string* out, const char* name, double millis) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.3f", name, millis);
  *out += buf;
}

}  // namespace

void SlowQueryLog::Record(Entry entry) {
  if (capacity_ == 0) return;
  // Wait-free rejection: strictly-not-slower than the current floor can
  // never displace a heap entry. The floor only grows, so a stale read
  // merely lets a borderline query take the lock and lose there.
  if (entry.total_millis <= floor_millis_.load(std::memory_order_relaxed) &&
      heap_full_.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Slower);
    if (heap_.size() == capacity_) {
      floor_millis_.store(heap_.front().total_millis,
                          std::memory_order_relaxed);
      heap_full_.store(true, std::memory_order_relaxed);
    }
    return;
  }
  if (entry.total_millis <= heap_.front().total_millis) return;
  std::pop_heap(heap_.begin(), heap_.end(), Slower);
  heap_.back() = std::move(entry);
  std::push_heap(heap_.begin(), heap_.end(), Slower);
  floor_millis_.store(heap_.front().total_millis, std::memory_order_relaxed);
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries = heap_;
  }
  std::sort(entries.begin(), entries.end(), Slower);
  return entries;
}

std::string SlowQueryLog::RenderJson() const {
  const auto entries = Snapshot();
  std::string out = "[";
  bool first = true;
  for (const auto& e : entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"sequence\":" + std::to_string(e.sequence);
    out += ",\"keywords\":\"";
    AppendEscaped(&out, e.keywords);
    out += "\",\"lane\":\"";
    AppendEscaped(&out, e.lane);
    out += "\",\"cursor_pops\":" + std::to_string(e.cursor_pops);
    out += ",\"stop_reason\":\"";
    AppendEscaped(&out, e.stop_reason);
    out += "\",\"degraded\":";
    out += e.degraded ? "true" : "false";
    AppendMillisField(&out, "queue_millis", e.queue_millis);
    AppendMillisField(&out, "keyword_millis", e.keyword_millis);
    AppendMillisField(&out, "augmentation_millis", e.augmentation_millis);
    AppendMillisField(&out, "exploration_millis", e.exploration_millis);
    AppendMillisField(&out, "mapping_millis", e.mapping_millis);
    AppendMillisField(&out, "total_millis", e.total_millis);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace grasp::serve
