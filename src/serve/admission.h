#ifndef GRASP_SERVE_ADMISSION_H_
#define GRASP_SERVE_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/engine.h"
#include "serve/query_control.h"
#include "serve/slow_query_log.h"

namespace grasp::serve {

/// Converts millisecond deadlines into concrete cursor-pop budgets from an
/// EWMA of the measured exploration rate (pops per millisecond). The rate
/// is workload- and machine-dependent, so it is learned online: every
/// completed query feeds its (pops, millis) back via Observe(). Thread-safe
/// (one mutex; touched once per query, not per pop).
class DeadlineCalibrator {
 public:
  /// `initial_pops_per_ms` seeds the estimate before any observation —
  /// deliberately conservative defaults keep the first budgets small rather
  /// than blowing the first deadlines. `alpha` is the EWMA weight of the
  /// newest observation.
  DeadlineCalibrator(double alpha, double initial_pops_per_ms)
      : alpha_(alpha), pops_per_ms_(initial_pops_per_ms) {}

  /// Feeds back one completed exploration. Queries too fast to time
  /// reliably (sub-10µs) are skipped — their rate quotient is noise.
  void Observe(std::size_t pops, double millis);

  /// Current rate estimate.
  double pops_per_ms() const;

  /// Pop budget for a `deadline_millis` deadline, scaled by `safety` (< 1
  /// spends only part of the deadline on exploration, leaving headroom for
  /// the keyword/augmentation/mapping steps around it). Never returns 0 —
  /// a positive budget keeps "deadline granted" distinct from "no work
  /// allowed", so even an almost-expired query gets one pop batch and can
  /// return a non-empty verified prefix when one exists that early.
  std::size_t BudgetForDeadline(double deadline_millis, double safety) const;

 private:
  const double alpha_;
  mutable std::mutex mutex_;
  double pops_per_ms_;
};

/// Admission-controlled, deadline-aware serving front end over a
/// KeywordSearchEngine.
class QueryServer {
 public:
  struct Options {
    /// Workers of the fast lane (scoped queries: a non-empty
    /// predicate_scope bounds the explorable graph, making them cheap) and
    /// the deep lane (unscoped, potentially exhaustive). Either may be 0 —
    /// that lane then never drains, which the shed tests use to fill a
    /// queue deterministically.
    std::size_t fast_workers = 1;
    std::size_t deep_workers = 2;
    /// Bounded queue capacity per lane; a submit beyond it is shed with
    /// kOverloaded + a retry-after hint instead of growing the queue
    /// without bound (shed, don't collapse).
    std::size_t queue_capacity = 64;
    /// DeadlineCalibrator parameters (see there).
    double ewma_alpha = 0.2;
    double initial_pops_per_ms = 50.0;
    /// Fraction of the remaining deadline the exploration budget may spend.
    double budget_safety = 0.5;
    /// Forwarded to ExplorationOptions::control_poll_interval.
    std::uint32_t control_poll_interval = 32;
    /// Metrics registry for the `grasp_serve_*` instruments (not owned;
    /// must outlive the server). Fallback order: this pointer, then the
    /// engine's `Options::metrics`, then a registry the server owns — so
    /// per-lane queue-wait/service-time/deadline-slack histograms always
    /// exist, and one shared registry is used when the tiers are wired
    /// together (see tools/grasp_serve).
    metrics::Registry* metrics = nullptr;
    /// Keep this many slowest queries for /debug/slowz; 0 disables.
    std::size_t slow_query_log_capacity = 32;
  };

  struct Request {
    core::KeywordSearchEngine::KeywordQuery query;
    /// Wall-clock deadline measured from Submit() — queue time counts
    /// against it. <= 0 = no deadline.
    double deadline_millis = 0.0;
    /// Optional caller-held control for mid-flight cancellation; the
    /// server creates one when absent (it needs somewhere to set the
    /// deadline). The server also sets the deadline on a caller-provided
    /// control.
    std::shared_ptr<QueryControl> control;
  };

  struct Response {
    /// kOverloaded (shed at submit), kDeadlineExceeded (expired while
    /// queued, never ran), kCancelled (cancelled — queued or mid-run), or
    /// the engine's status: OK for complete and degraded runs alike.
    Status status;
    /// Mirrors SearchResult::degraded for runs; false for non-runs.
    bool degraded = false;
    /// Suggested wait before retrying, set on kOverloaded: the backlog's
    /// estimated drain time for the lane that shed the request.
    double retry_after_millis = 0.0;
    double queue_millis = 0.0;
    double total_millis = 0.0;
    core::KeywordSearchEngine::SearchResult result;
  };

  /// Monotonic counters (relaxed atomics — safe to read any time).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;           ///< kOverloaded at submit
    std::uint64_t completed = 0;      ///< ran to a result (incl. degraded)
    std::uint64_t degraded = 0;       ///< completed with degraded=true
    std::uint64_t deadline_hit = 0;   ///< completed within their deadline
    std::uint64_t expired_in_queue = 0;  ///< deadline passed before running
    std::uint64_t cancelled = 0;      ///< cancelled in queue or at shutdown
  };

  /// `backend` must outlive the server. Anything implementing
  /// core::SearchBackend can sit behind the admission layer — a single
  /// engine (EngineBackend) or a sharded scatter-gather deployment
  /// (shard::ShardedEngine).
  QueryServer(const core::SearchBackend& backend, Options options);
  /// Convenience for the common unsharded case: wraps `engine` in an
  /// owned EngineBackend. `engine` must outlive the server.
  QueryServer(const core::KeywordSearchEngine& engine, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admission point: enqueues into the request's lane or sheds. Always
  /// returns a valid future; shed requests resolve immediately.
  std::future<Response> Submit(Request request);

  /// Callback-completion admission point for event-driven front-ends (the
  /// HTTP server's epoll loop cannot block on a future). `done` is invoked
  /// exactly once, with the same Response a future would carry, from
  /// whichever thread finishes the request: the submitting thread for shed
  /// requests, a lane worker for served ones, and the Shutdown() caller for
  /// work still queued at shutdown. It must not block and must not call
  /// back into the QueryServer.
  void SubmitAsync(Request request, std::function<void(Response)> done);

  /// Submit + wait. Intended for tools and tests.
  Response ServeSync(Request request);

  /// Stops accepting work, joins the workers, and fails everything still
  /// queued with kCancelled. Idempotent; also run by the destructor.
  void Shutdown();

  Stats stats() const;

  const DeadlineCalibrator& calibrator() const { return calibrator_; }

  /// The registry this server records into (after fallback resolution);
  /// never nullptr. Front-ends expose it at /metrics and /statsz.
  metrics::Registry* metrics_registry() const { return metrics_; }

  /// The N slowest queries served so far (the /debug/slowz source).
  const SlowQueryLog& slow_queries() const { return slow_log_; }

 private:
  struct Pending {
    Request request;
    std::function<void(Response)> done;
    QueryControl::Clock::time_point enqueue_time;
    std::uint64_t sequence = 0;     ///< admission order
    const char* lane_name = "deep";  ///< "fast" | "deep"
  };

  /// One bounded priority lane: mutex + condvar queue and its workers.
  struct Lane {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Pending> queue;
    std::vector<std::thread> workers;
  };

  /// Shared tail of both constructors: registry fallback resolution,
  /// instrument registration, lane worker spawn.
  void Init();
  void WorkerLoop(Lane* lane);
  Response RunQuery(Pending pending);
  /// Registers the `grasp_serve_*` instruments on metrics_; called once
  /// from the constructor.
  void InitMetrics();
  /// Estimated millis until `queue_len` queued requests drain (retry-after
  /// hint); infinite backlog (0 workers) reports the full queue's worth at
  /// the current service estimate rather than infinity.
  double RetryAfterMillis(std::size_t queue_len, std::size_t workers) const;

  /// Set only by the convenience engine ctor; backend_ then points at it.
  std::unique_ptr<core::EngineBackend> owned_backend_;
  const core::SearchBackend* backend_;
  Options options_;
  DeadlineCalibrator calibrator_;

  /// EWMA of per-query service time (total engine millis), feeding the
  /// retry-after hint. Guarded by service_mutex_ (touched once per query).
  mutable std::mutex service_mutex_;
  double ewma_service_millis_ = 1.0;

  Lane fast_lane_;
  Lane deep_lane_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;  ///< guarded by shutdown_mutex_
  std::mutex shutdown_mutex_;

  struct AtomicStats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> deadline_hit{0};
    std::atomic<std::uint64_t> expired_in_queue{0};
    std::atomic<std::uint64_t> cancelled{0};
  };
  mutable AtomicStats stats_;

  /// Cached instrument handles on metrics_; populated by InitMetrics().
  struct ServeMetrics {
    metrics::Histogram* queue_wait_fast = nullptr;
    metrics::Histogram* queue_wait_deep = nullptr;
    metrics::Histogram* service_fast = nullptr;
    metrics::Histogram* service_deep = nullptr;
    metrics::Histogram* deadline_slack = nullptr;
    metrics::Gauge* pops_per_ms = nullptr;
    metrics::Counter* submitted = nullptr;
    metrics::Counter* admitted = nullptr;
    metrics::Counter* shed_backlog = nullptr;
    metrics::Counter* shed_shutdown = nullptr;
    metrics::Counter* completed = nullptr;
    metrics::Counter* degraded = nullptr;
    metrics::Counter* deadline_hit = nullptr;
    metrics::Counter* expired_in_queue = nullptr;
    metrics::Counter* cancelled = nullptr;
  };
  std::unique_ptr<metrics::Registry> owned_metrics_;
  metrics::Registry* metrics_ = nullptr;  ///< never nullptr post-construction
  ServeMetrics m_;
  SlowQueryLog slow_log_;
};

}  // namespace grasp::serve

#endif  // GRASP_SERVE_ADMISSION_H_
