#ifndef GRASP_SERVE_SLOW_QUERY_LOG_H_
#define GRASP_SERVE_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace grasp::serve {

/// Bounded keep-the-N-slowest query log backing `GET /debug/slowz`.
///
/// A latency histogram answers "how slow", but attributing a p99
/// regression needs the offending queries themselves: which keywords, how
/// many cursor pops, which stage ate the time, and why exploration
/// stopped. This keeps exactly the `capacity` slowest queries seen so far
/// by total latency.
///
/// Concurrency: eviction order lives under a mutex (a min-heap on
/// total_millis), but the common case — a query faster than the current
/// N-th slowest — is rejected by a single relaxed atomic load of the
/// heap-floor threshold, so the serving hot path takes the lock only for
/// genuinely slow queries (at most N times per latency regime shift).
class SlowQueryLog {
 public:
  struct Entry {
    std::uint64_t sequence = 0;       // admission order, for dedup/debugging
    std::string keywords;             // space-joined query terms
    std::string lane;                 // "fast" | "deep"
    std::uint64_t cursor_pops = 0;
    std::string stop_reason;          // "completed" | "budget" | "deadline" |
                                      // "cancelled"
    bool degraded = false;
    double queue_millis = 0.0;
    double keyword_millis = 0.0;
    double augmentation_millis = 0.0;
    double exploration_millis = 0.0;
    double mapping_millis = 0.0;
    double total_millis = 0.0;        // service time; the eviction key
  };

  explicit SlowQueryLog(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Records `entry` if it ranks among the `capacity` slowest so far.
  void Record(Entry entry);

  /// The retained entries, slowest first.
  std::vector<Entry> Snapshot() const;

  /// Entries as a JSON array (the /debug/slowz body), slowest first.
  std::string RenderJson() const;

 private:
  const std::size_t capacity_;
  /// Lower bound on total_millis required to enter the log. Monotone
  /// non-decreasing once the log is full; 0 while it is not, so every
  /// query is considered until `capacity_` entries exist.
  std::atomic<double> floor_millis_{0.0};
  std::atomic<bool> heap_full_{false};
  mutable std::mutex mutex_;
  std::vector<Entry> heap_;  // min-heap on total_millis
};

}  // namespace grasp::serve

#endif  // GRASP_SERVE_SLOW_QUERY_LOG_H_
