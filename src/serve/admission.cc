#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace grasp::serve {
namespace {

double MillisBetween(QueryControl::Clock::time_point a,
                     QueryControl::Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

const char* StopReason(const core::ExplorationStats& stats) {
  if (stats.cancelled) return "cancelled";
  if (stats.deadline_expired) return "deadline";
  if (stats.budget_exceeded) return "budget";
  return "completed";
}

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  std::string out;
  for (const auto& k : keywords) {
    if (!out.empty()) out += ' ';
    out += k;
  }
  return out;
}

}  // namespace

void DeadlineCalibrator::Observe(std::size_t pops, double millis) {
  if (pops == 0 || millis < 0.01) return;  // below timer noise
  const double rate = static_cast<double>(pops) / millis;
  std::lock_guard<std::mutex> lock(mutex_);
  pops_per_ms_ = alpha_ * rate + (1.0 - alpha_) * pops_per_ms_;
}

double DeadlineCalibrator::pops_per_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pops_per_ms_;
}

std::size_t DeadlineCalibrator::BudgetForDeadline(double deadline_millis,
                                                 double safety) const {
  if (deadline_millis <= 0.0) return 1;
  const double budget = pops_per_ms() * deadline_millis * safety;
  if (budget < 1.0) return 1;
  return static_cast<std::size_t>(budget);
}

QueryServer::QueryServer(const core::SearchBackend& backend, Options options)
    : backend_(&backend),
      options_(options),
      calibrator_(options.ewma_alpha, options.initial_pops_per_ms),
      slow_log_(options.slow_query_log_capacity) {
  Init();
}

QueryServer::QueryServer(const core::KeywordSearchEngine& engine,
                         Options options)
    : owned_backend_(std::make_unique<core::EngineBackend>(engine)),
      backend_(owned_backend_.get()),
      options_(options),
      calibrator_(options.ewma_alpha, options.initial_pops_per_ms),
      slow_log_(options.slow_query_log_capacity) {
  Init();
}

void QueryServer::Init() {
  // Registry fallback: the caller's, else the backend's (so one registry
  // spans the tiers when grasp_serve wired it through), else our own.
  metrics_ = options_.metrics != nullptr ? options_.metrics
             : backend_->metrics_registry() != nullptr
                 ? backend_->metrics_registry()
                 : (owned_metrics_ = std::make_unique<metrics::Registry>())
                       .get();
  InitMetrics();
  fast_lane_.workers.reserve(options_.fast_workers);
  for (std::size_t i = 0; i < options_.fast_workers; ++i) {
    fast_lane_.workers.emplace_back([this] { WorkerLoop(&fast_lane_); });
  }
  deep_lane_.workers.reserve(options_.deep_workers);
  for (std::size_t i = 0; i < options_.deep_workers; ++i) {
    deep_lane_.workers.emplace_back([this] { WorkerLoop(&deep_lane_); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::InitMetrics() {
  constexpr double kMicros = 1e-6;  // recorded in µs, exposed in seconds
  const char* queue_help =
      "Time between admission and a lane worker picking the query up";
  m_.queue_wait_fast = metrics_->GetHistogram(
      "grasp_serve_queue_wait_seconds", queue_help, {{"lane", "fast"}},
      kMicros);
  m_.queue_wait_deep = metrics_->GetHistogram(
      "grasp_serve_queue_wait_seconds", queue_help, {{"lane", "deep"}},
      kMicros);
  const char* service_help =
      "Worker service time per query (engine run, queue wait excluded)";
  m_.service_fast = metrics_->GetHistogram("grasp_serve_service_seconds",
                                           service_help, {{"lane", "fast"}},
                                           kMicros);
  m_.service_deep = metrics_->GetHistogram("grasp_serve_service_seconds",
                                           service_help, {{"lane", "deep"}},
                                           kMicros);
  m_.deadline_slack = metrics_->GetHistogram(
      "grasp_serve_deadline_slack_seconds",
      "Deadline budget left when a deadlined query completed (0 = finished "
      "at or past its deadline)",
      {}, kMicros);
  m_.pops_per_ms = metrics_->GetGauge(
      "grasp_serve_calibrated_pops_per_ms",
      "EWMA exploration rate the deadline calibrator converts budgets with");
  m_.submitted =
      metrics_->GetCounter("grasp_serve_submitted_total", "Submit() calls");
  m_.admitted = metrics_->GetCounter("grasp_serve_admitted_total",
                                     "Queries accepted into a lane queue");
  const char* shed_help = "Queries refused at admission, by reason";
  m_.shed_backlog = metrics_->GetCounter("grasp_serve_shed_total", shed_help,
                                         {{"reason", "backlog"}});
  m_.shed_shutdown = metrics_->GetCounter("grasp_serve_shed_total", shed_help,
                                          {{"reason", "shutdown"}});
  m_.completed = metrics_->GetCounter("grasp_serve_completed_total",
                                      "Queries that ran to a result");
  m_.degraded = metrics_->GetCounter(
      "grasp_serve_degraded_total",
      "Completed queries whose exploration stopped early");
  m_.deadline_hit = metrics_->GetCounter(
      "grasp_serve_deadline_hit_total",
      "Deadlined queries that completed within their deadline");
  m_.expired_in_queue = metrics_->GetCounter(
      "grasp_serve_expired_in_queue_total",
      "Queries whose deadline passed before a worker picked them up");
  m_.cancelled = metrics_->GetCounter(
      "grasp_serve_cancelled_total",
      "Queries cancelled while queued or failed at shutdown");
}

double QueryServer::RetryAfterMillis(std::size_t queue_len,
                                     std::size_t workers) const {
  double service;
  {
    std::lock_guard<std::mutex> lock(service_mutex_);
    service = ewma_service_millis_;
  }
  const double lanes = static_cast<double>(std::max<std::size_t>(1, workers));
  return static_cast<double>(queue_len + 1) * service / lanes;
}

std::future<QueryServer::Response> QueryServer::Submit(Request request) {
  // The future API is a thin veneer over the callback one, so both resolve
  // through exactly the same admission/shed/shutdown paths.
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  SubmitAsync(std::move(request), [promise](Response response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void QueryServer::SubmitAsync(Request request,
                              std::function<void(Response)> done) {
  const std::uint64_t sequence =
      stats_.submitted.fetch_add(1, std::memory_order_relaxed) + 1;
  m_.submitted->Increment();

  if (request.control == nullptr) {
    request.control = std::make_shared<QueryControl>();
  }
  const auto now = QueryControl::Clock::now();
  if (request.deadline_millis > 0.0) {
    // Set the absolute deadline here, at admission: queue time counts
    // against it, so a request that rots in the queue expires there
    // instead of consuming a worker.
    request.control->SetDeadlineAfterMillis(request.deadline_millis);
  }

  const bool fast = !request.query.predicate_scope.empty();
  Lane& lane = fast ? fast_lane_ : deep_lane_;
  const std::size_t workers = lane.workers.size();
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    if (!stopping_.load(std::memory_order_relaxed) &&
        lane.queue.size() < options_.queue_capacity) {
      stats_.admitted.fetch_add(1, std::memory_order_relaxed);
      m_.admitted->Increment();
      lane.queue.push_back(Pending{std::move(request), std::move(done), now,
                                   sequence, fast ? "fast" : "deep"});
      lane.ready.notify_one();
      return;
    }
  }

  // Load shedding: deliberate, explicit, and cheap — the caller gets an
  // immediate kOverloaded instead of an unbounded queue (or a timeout it
  // cannot distinguish from a hang). The two shed reasons carry different
  // advice: a full queue drains, so it estimates when to retry; a draining
  // server does not come back, so no retry hint is attached and front-ends
  // map it to a terminal 503 rather than a retryable 429.
  stats_.shed.fetch_add(1, std::memory_order_relaxed);
  Response shed;
  if (stopping_.load(std::memory_order_relaxed)) {
    m_.shed_shutdown->Increment();
    shed.retry_after_millis = 0.0;
    shed.status = Status::Overloaded("server shutting down");
  } else {
    m_.shed_backlog->Increment();
    shed.retry_after_millis =
        RetryAfterMillis(options_.queue_capacity, workers);
    shed.status = Status::Overloaded(
        "admission queue full; retry after " +
        std::to_string(shed.retry_after_millis) + " ms");
  }
  done(std::move(shed));
}

QueryServer::Response QueryServer::ServeSync(Request request) {
  return Submit(std::move(request)).get();
}

void QueryServer::WorkerLoop(Lane* lane) {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(lane->mutex);
      lane->ready.wait(lock, [this, lane] {
        return stopping_.load(std::memory_order_relaxed) ||
               !lane->queue.empty();
      });
      if (lane->queue.empty()) return;  // stopping; Shutdown drains the rest
      pending = std::move(lane->queue.front());
      lane->queue.pop_front();
    }
    // The callback must be moved aside first: RunQuery consumes `pending`,
    // and the argument is evaluated before the call runs on its object.
    std::function<void(Response)> done = std::move(pending.done);
    done(RunQuery(std::move(pending)));
  }
}

QueryServer::Response QueryServer::RunQuery(Pending pending) {
  Response response;
  const auto start = QueryControl::Clock::now();
  response.queue_millis = MillisBetween(pending.enqueue_time, start);
  const QueryControl& control = *pending.request.control;
  const bool fast = pending.lane_name[0] == 'f';
  (fast ? m_.queue_wait_fast : m_.queue_wait_deep)
      ->RecordMicros(response.queue_millis * 1e3);

  // Dead on arrival: cancelled or expired while queued. Fail fast without
  // touching the engine — the worker's time belongs to requests that can
  // still make their deadline.
  if (control.cancel_requested()) {
    stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
    m_.cancelled->Increment();
    response.status = Status::Cancelled("cancelled while queued");
    response.total_millis = MillisBetween(pending.enqueue_time,
                                          QueryControl::Clock::now());
    return response;
  }
  const double remaining = control.remaining_millis();
  if (remaining <= 0.0) {
    stats_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
    m_.expired_in_queue->Increment();
    response.status = Status::DeadlineExceeded(
        "deadline expired after " + std::to_string(response.queue_millis) +
        " ms in queue");
    response.total_millis = MillisBetween(pending.enqueue_time,
                                          QueryControl::Clock::now());
    return response;
  }

  // Deadline → budget: the EWMA-calibrated pop budget is the primary stop
  // (deterministic, no clock in the hot loop); the polled deadline backstops
  // it when the calibration was optimistic.
  core::ExplorationOptions exploration = backend_->default_exploration();
  exploration.control = &control;
  exploration.control_poll_interval = options_.control_poll_interval;
  if (control.has_deadline() && std::isfinite(remaining)) {
    const std::size_t budget =
        calibrator_.BudgetForDeadline(remaining, options_.budget_safety);
    if (exploration.max_cursor_pops == 0 ||
        budget < exploration.max_cursor_pops) {
      exploration.max_cursor_pops = budget;
    }
  }
  const std::size_t k = pending.request.query.k > 0
                            ? pending.request.query.k
                            : backend_->default_exploration().k;
  response.result = backend_->Search(pending.request.query.keywords, k,
                                     exploration,
                                     pending.request.query.predicate_scope);
  response.status = response.result.status;
  response.degraded = response.result.degraded;
  response.total_millis =
      MillisBetween(pending.enqueue_time, QueryControl::Clock::now());

  calibrator_.Observe(response.result.exploration_stats.cursors_popped,
                      response.result.exploration_millis);
  m_.pops_per_ms->Set(calibrator_.pops_per_ms());
  {
    std::lock_guard<std::mutex> lock(service_mutex_);
    ewma_service_millis_ = options_.ewma_alpha * response.result.total_millis +
                           (1.0 - options_.ewma_alpha) * ewma_service_millis_;
  }

  const double service_millis = response.total_millis - response.queue_millis;
  (fast ? m_.service_fast : m_.service_deep)
      ->RecordMicros(service_millis * 1e3);
  if (pending.request.deadline_millis > 0.0) {
    // Slack left on the wall-clock deadline; 0 means the query finished at
    // or past it (a large spike at 0 is the "deadlines too tight or budgets
    // too optimistic" signal).
    const double slack =
        pending.request.deadline_millis - response.total_millis;
    m_.deadline_slack->RecordMicros(std::max(0.0, slack) * 1e3);
  }

  stats_.completed.fetch_add(1, std::memory_order_relaxed);
  m_.completed->Increment();
  if (response.degraded) {
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    m_.degraded->Increment();
  }
  if (pending.request.deadline_millis > 0.0 &&
      response.total_millis <= pending.request.deadline_millis) {
    stats_.deadline_hit.fetch_add(1, std::memory_order_relaxed);
    m_.deadline_hit->Increment();
  }

  SlowQueryLog::Entry slow;
  slow.sequence = pending.sequence;
  slow.keywords = JoinKeywords(pending.request.query.keywords);
  slow.lane = pending.lane_name;
  slow.cursor_pops = response.result.exploration_stats.cursors_popped;
  slow.stop_reason = StopReason(response.result.exploration_stats);
  slow.degraded = response.degraded;
  slow.queue_millis = response.queue_millis;
  slow.keyword_millis = response.result.keyword_millis;
  slow.augmentation_millis = response.result.augmentation_millis;
  slow.exploration_millis = response.result.exploration_millis;
  slow.mapping_millis = response.result.mapping_millis;
  slow.total_millis = service_millis;
  slow_log_.Record(std::move(slow));

  return response;
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  for (Lane* lane : {&fast_lane_, &deep_lane_}) {
    {
      std::lock_guard<std::mutex> lock(lane->mutex);
      lane->ready.notify_all();
    }
    for (std::thread& t : lane->workers) t.join();
    // Workers are gone; whatever is still queued (0-worker lanes, a burst
    // that outpaced the join) fails explicitly instead of dropping its
    // promise (which would surface as broken_promise exceptions far away).
    std::deque<Pending> rest;
    {
      std::lock_guard<std::mutex> lock(lane->mutex);
      rest.swap(lane->queue);
    }
    for (Pending& p : rest) {
      stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
      m_.cancelled->Increment();
      Response response;
      response.status = Status::Cancelled("server shut down before the query ran");
      response.queue_millis = MillisBetween(p.enqueue_time,
                                            QueryControl::Clock::now());
      response.total_millis = response.queue_millis;
      p.done(std::move(response));
    }
  }
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.admitted = stats_.admitted.load(std::memory_order_relaxed);
  s.shed = stats_.shed.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.degraded = stats_.degraded.load(std::memory_order_relaxed);
  s.deadline_hit = stats_.deadline_hit.load(std::memory_order_relaxed);
  s.expired_in_queue = stats_.expired_in_queue.load(std::memory_order_relaxed);
  s.cancelled = stats_.cancelled.load(std::memory_order_relaxed);
  return s;
}

}  // namespace grasp::serve
