#ifndef GRASP_SERVE_QUERY_CONTROL_H_
#define GRASP_SERVE_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace grasp::serve {

/// Cooperative per-query control block: a wall-clock deadline plus a
/// cancellation flag, polled by the exploration hot loops every N cursor
/// pops (ExplorationOptions::control_poll_interval). Deliberately
/// dependency-free — the serve layer owns the concept, but core's explorers
/// poll it, so this header must sit below both.
///
/// Concurrency contract: RequestCancel() may be called from any thread at
/// any time (one relaxed store; the poll is one relaxed load — a query
/// observes the cancel at its next poll point, not instantaneously). The
/// deadline is stored in an atomic too, so a serving worker may set it
/// while a caller thread concurrently polls remaining_millis(); setting a
/// deadline does not retroactively re-time checks already made.
///
/// Time base: std::chrono::steady_clock, stored as raw nanosecond ticks.
/// kNoDeadline (the default) never expires.
class QueryControl {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Asks the query to stop at its next poll point. Idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline; work polls Expired() and stops past it.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Deadline `millis` from now (negative or zero = already expired).
  void SetDeadlineAfterMillis(double millis) {
    SetDeadline(Clock::now() +
                std::chrono::nanoseconds(
                    static_cast<std::int64_t>(millis * 1e6)));
  }

  /// Removes any deadline (cancellation is unaffected).
  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  bool Expired() const { return Expired(Clock::now()); }
  bool Expired(Clock::time_point now) const {
    return now.time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Milliseconds until the deadline (negative when past it; +inf without
  /// one). Used to derive pop budgets for work about to start.
  double remaining_millis() const {
    const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns == kNoDeadline) return std::numeric_limits<double>::infinity();
    return static_cast<double>(ns - Clock::now().time_since_epoch().count()) /
           1e6;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace grasp::serve

#endif  // GRASP_SERVE_QUERY_CONTROL_H_
