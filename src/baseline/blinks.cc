#include "baseline/blinks.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"

namespace grasp::baseline {
namespace {

struct Frontier {
  double dist;
  rdf::VertexId vertex;
  std::uint32_t group;
  friend bool operator>(const Frontier& a, const Frontier& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.vertex != b.vertex) return a.vertex > b.vertex;
    return a.group > b.group;
  }
};

}  // namespace

std::unordered_map<rdf::VertexId, double> BlinksIndex::IntraBlockDistances(
    rdf::VertexId source) const {
  // Unit weights: BFS restricted to the source's block, over the index's
  // (possibly filtered) edge view.
  std::unordered_map<rdf::VertexId, double> dist;
  const BlockId home = partition_.block_of[source];
  std::deque<rdf::VertexId> queue{source};
  dist[source] = 0.0;
  while (!queue.empty()) {
    const rdf::VertexId v = queue.front();
    queue.pop_front();
    const double d = dist[v];
    auto visit = [&](rdf::VertexId u) {
      if (partition_.block_of[u] != home) return;
      if (dist.count(u) > 0) return;
      dist[u] = d + 1.0;
      queue.push_back(u);
    };
    ForEachAdmissibleEdge(graph_->OutEdges(v), edge_filter_, filter_mode_,
                          [&](rdf::EdgeId e) { visit(graph_->edge(e).to); });
    ForEachAdmissibleEdge(graph_->InEdges(v), edge_filter_, filter_mode_,
                          [&](rdf::EdgeId e) { visit(graph_->edge(e).from); });
  }
  return dist;
}

BlinksIndex::BlinksIndex(const rdf::DataGraph& graph,
                         const VertexKeywordMap& keyword_map,
                         const BuildOptions& options)
    : graph_(&graph),
      keyword_map_(&keyword_map),
      edge_filter_(options.edge_filter),
      filter_mode_(options.filter_mode) {
  WallTimer timer;
  partition_ = PartitionGraph(graph, options.num_blocks, options.method);
  cut_size_ = partition_.CutSize(graph);

  const std::size_t n = graph.NumVertices();
  is_portal_.assign(n, false);
  // Only in-scope cross-block edges mint portals: a vertex whose every
  // cross edge is masked is interior to its block in the filtered view.
  // View mode sweeps the mask word-at-a-time (ForEachSet); inline mode is
  // the per-edge-branch conformance reference.
  auto mark_portals = [&](std::uint32_t e_idx) {
    const rdf::Edge& e = graph.edges()[e_idx];
    if (partition_.block_of[e.from] != partition_.block_of[e.to]) {
      is_portal_[e.from] = true;
      is_portal_[e.to] = true;
    }
  };
  if (edge_filter_ == nullptr) {
    for (std::uint32_t e = 0; e < graph.NumEdges(); ++e) mark_portals(e);
  } else if (filter_mode_ == EdgeFilterMode::kInlineCheck) {
    for (std::uint32_t e = 0; e < graph.NumEdges(); ++e) {
      if (edge_filter_->Contains(e)) mark_portals(e);
    }
  } else {
    edge_filter_->ForEachSet(mark_portals);
  }
  block_portals_.assign(partition_.num_blocks, {});
  for (rdf::VertexId v = 0; v < n; ++v) {
    if (is_portal_[v]) {
      portal_ids_.push_back(v);
      block_portals_[partition_.block_of[v]].push_back(v);
    }
  }

  // Precompute the portal graph: intra-block portal-portal distances plus
  // direct cross-block edges.
  for (rdf::VertexId p : portal_ids_) {
    auto dist = IntraBlockDistances(p);
    auto& edges = portal_edges_[p];
    for (rdf::VertexId q : block_portals_[partition_.block_of[p]]) {
      if (q == p) continue;
      auto it = dist.find(q);
      if (it != dist.end()) edges.emplace_back(q, it->second);
    }
    auto add_cross = [&](rdf::VertexId u) {
      if (partition_.block_of[u] != partition_.block_of[p]) {
        edges.emplace_back(u, 1.0);
      }
    };
    ForEachAdmissibleEdge(graph.OutEdges(p), edge_filter_, filter_mode_,
                          [&](rdf::EdgeId e) { add_cross(graph.edge(e).to); });
    ForEachAdmissibleEdge(
        graph.InEdges(p), edge_filter_, filter_mode_,
        [&](rdf::EdgeId e) { add_cross(graph.edge(e).from); });
  }
  build_millis_ = timer.ElapsedMillis();
}

BaselineResult BlinksIndex::Search(const std::vector<std::string>& keywords,
                                   const BaselineOptions& options) const {
  // The edge scope is part of the *index* (BuildOptions::edge_filter):
  // portal sets and intra-block distances were precomputed over it, so a
  // different search-time filter would contradict them. Fail loudly on a
  // mismatch instead of silently traversing the wrong view.
  GRASP_CHECK(options.edge_filter == nullptr ||
              options.edge_filter == edge_filter_);
  WallTimer timer;
  BaselineResult result;
  const std::size_t m = keywords.size();
  if (m == 0) return result;

  std::vector<std::vector<rdf::VertexId>> origins;
  for (const std::string& kw : keywords) {
    origins.push_back(keyword_map_->Lookup(kw));
    if (origins.back().empty()) {
      result.millis = timer.ElapsedMillis();
      return result;
    }
  }

  // Query-time virtual edges: origin <-> portals of its block, and
  // origin <-> other origins within the same block.
  std::unordered_map<rdf::VertexId,
                     std::vector<std::pair<rdf::VertexId, double>>>
      query_edges;
  std::vector<rdf::VertexId> all_origins;
  for (const auto& group : origins) {
    for (rdf::VertexId o : group) all_origins.push_back(o);
  }
  std::sort(all_origins.begin(), all_origins.end());
  all_origins.erase(std::unique(all_origins.begin(), all_origins.end()),
                    all_origins.end());
  for (rdf::VertexId o : all_origins) {
    auto dist = IntraBlockDistances(o);
    for (const auto& [v, d] : dist) {
      if (v == o) continue;
      const bool interesting =
          is_portal_[v] ||
          std::binary_search(all_origins.begin(), all_origins.end(), v);
      if (!interesting) continue;
      query_edges[o].emplace_back(v, d);
      query_edges[v].emplace_back(o, d);
    }
  }

  // Multi-group Dijkstra over the portal graph.
  std::vector<std::unordered_map<rdf::VertexId, double>> settled(m),
      tentative(m);
  std::vector<std::unordered_map<rdf::VertexId, rdf::VertexId>> origin_of(m);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;
  for (std::uint32_t g = 0; g < m; ++g) {
    for (rdf::VertexId o : origins[g]) {
      tentative[g][o] = 0.0;
      origin_of[g][o] = o;
      frontier.push(Frontier{0.0, o, g});
    }
  }

  std::unordered_map<rdf::VertexId, AnswerTree> roots;
  auto kth_score = [&]() {
    if (roots.size() < options.k) {
      return std::numeric_limits<double>::infinity();
    }
    std::vector<double> scores;
    scores.reserve(roots.size());
    for (const auto& [v, a] : roots) scores.push_back(a.score);
    std::nth_element(scores.begin(), scores.begin() + (options.k - 1),
                     scores.end());
    return scores[options.k - 1];
  };

  while (!frontier.empty()) {
    const Frontier top = frontier.top();
    frontier.pop();
    if (settled[top.group].count(top.vertex) > 0) continue;
    settled[top.group].emplace(top.vertex, top.dist);
    ++result.nodes_visited;
    if (options.max_visits > 0 && result.nodes_visited > options.max_visits) {
      break;
    }

    bool all = true;
    for (std::uint32_t g = 0; g < m; ++g) {
      if (settled[g].count(top.vertex) == 0) {
        all = false;
        break;
      }
    }
    if (all) {
      AnswerTree answer;
      answer.root = top.vertex;
      for (std::uint32_t g = 0; g < m; ++g) {
        const double d = settled[g].at(top.vertex);
        answer.score += d;
        answer.distances.push_back(d);
        answer.keyword_vertices.push_back(origin_of[g].at(top.vertex));
      }
      roots.emplace(top.vertex, std::move(answer));
    }

    if (roots.size() >= options.k && !frontier.empty() &&
        kth_score() <= frontier.top().dist) {
      break;
    }

    auto relax_all = [&](const std::vector<std::pair<rdf::VertexId, double>>&
                             edges) {
      for (const auto& [u, w] : edges) {
        const double nd = top.dist + w;
        auto it = tentative[top.group].find(u);
        if (it != tentative[top.group].end() && it->second <= nd) continue;
        tentative[top.group][u] = nd;
        origin_of[top.group][u] = origin_of[top.group].at(top.vertex);
        frontier.push(Frontier{nd, u, top.group});
      }
    };
    auto pe = portal_edges_.find(top.vertex);
    if (pe != portal_edges_.end()) relax_all(pe->second);
    auto qe = query_edges.find(top.vertex);
    if (qe != query_edges.end()) relax_all(qe->second);
  }

  result.answers.reserve(roots.size());
  for (auto& [v, answer] : roots) {
    (void)v;
    result.answers.push_back(std::move(answer));
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const AnswerTree& a, const AnswerTree& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.root < b.root;
            });
  if (result.answers.size() > options.k) result.answers.resize(options.k);
  result.millis = timer.ElapsedMillis();
  return result;
}

std::size_t BlinksIndex::MemoryUsageBytes() const {
  std::size_t bytes = partition_.block_of.capacity() * sizeof(BlockId) +
                      portal_ids_.capacity() * sizeof(rdf::VertexId) +
                      is_portal_.capacity() / 8;
  for (const auto& portals : block_portals_) {
    bytes += portals.capacity() * sizeof(rdf::VertexId);
  }
  for (const auto& [p, edges] : portal_edges_) {
    (void)p;
    bytes += sizeof(rdf::VertexId) + 2 * sizeof(void*) +
             edges.capacity() * sizeof(std::pair<rdf::VertexId, double>);
  }
  return bytes;
}

}  // namespace grasp::baseline
