#include "baseline/partition.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace grasp::baseline {

std::size_t Partition::CutSize(const rdf::DataGraph& graph) const {
  std::size_t cut = 0;
  for (const rdf::Edge& e : graph.edges()) {
    if (block_of[e.from] != block_of[e.to]) ++cut;
  }
  return cut;
}

std::size_t Partition::CutSize(const rdf::DataGraph& graph,
                               unsigned kind_mask) const {
  std::size_t cut = 0;
  for (const rdf::Edge& e : graph.edges()) {
    if ((rdf::EdgeKindBit(e.kind) & kind_mask) != 0 &&
        block_of[e.from] != block_of[e.to]) {
      ++cut;
    }
  }
  return cut;
}

namespace {

Partition BfsSeed(const rdf::DataGraph& graph, std::size_t num_blocks) {
  const std::size_t n = graph.NumVertices();
  Partition p;
  p.block_of.assign(n, 0);
  if (n == 0) return p;
  const std::size_t target =
      std::max<std::size_t>(1, (n + num_blocks - 1) / num_blocks);

  std::vector<bool> assigned(n, false);
  BlockId current = 0;
  std::size_t current_size = 0;
  std::queue<rdf::VertexId> frontier;
  std::size_t scan = 0;

  auto next_unassigned = [&]() -> rdf::VertexId {
    while (scan < n && assigned[scan]) ++scan;
    return scan < n ? static_cast<rdf::VertexId>(scan) : rdf::kInvalidVertexId;
  };

  for (rdf::VertexId seed = next_unassigned();
       seed != rdf::kInvalidVertexId; seed = next_unassigned()) {
    frontier.push(seed);
    assigned[seed] = true;
    while (!frontier.empty()) {
      const rdf::VertexId v = frontier.front();
      frontier.pop();
      p.block_of[v] = current;
      if (++current_size >= target) {
        // Block full: flush the frontier into the next block's seed pool.
        // The linear seed scan may already be past a flushed vertex, so pull
        // it back — otherwise vertices unassigned here would never be
        // revisited and silently keep the default block 0 (over-filling it
        // and breaking the "every block non-empty" invariant downstream).
        while (!frontier.empty()) {
          const rdf::VertexId u = frontier.front();
          frontier.pop();
          assigned[u] = false;
          scan = std::min(scan, static_cast<std::size_t>(u));
        }
        ++current;
        current_size = 0;
        break;
      }
      auto visit = [&](rdf::VertexId u) {
        if (!assigned[u]) {
          assigned[u] = true;
          frontier.push(u);
        }
      };
      for (rdf::EdgeId e : graph.OutEdges(v)) visit(graph.edge(e).to);
      for (rdf::EdgeId e : graph.InEdges(v)) visit(graph.edge(e).from);
    }
  }
  p.num_blocks = static_cast<std::size_t>(current) + (current_size > 0 ? 1 : 0);
  if (p.num_blocks == 0) p.num_blocks = 1;
  return p;
}

void RefineGreedy(const rdf::DataGraph& graph, Partition* p) {
  const std::size_t n = graph.NumVertices();
  if (p->num_blocks <= 1) return;
  std::vector<std::size_t> block_size(p->num_blocks, 0);
  for (BlockId b : p->block_of) ++block_size[b];
  // Ceil target, and cap at 20% over it (rounded up, but at least +1 so
  // target-sized blocks can still trade members). The old floor target with
  // a flat `+ target / 5 + 2` slack drifted far past the advertised ±20%
  // on small blocks — at target 1 it allowed triple-sized blocks.
  const std::size_t target =
      std::max<std::size_t>(1, (n + p->num_blocks - 1) / p->num_blocks);
  const std::size_t max_size =
      std::max<std::size_t>(target + 1, (target * 6 + 4) / 5);

  for (int pass = 0; pass < 2; ++pass) {
    for (rdf::VertexId v = 0; v < n; ++v) {
      // Count neighbor blocks.
      std::unordered_map<BlockId, std::size_t> neighbor_blocks;
      auto count = [&](rdf::VertexId u) { ++neighbor_blocks[p->block_of[u]]; };
      for (rdf::EdgeId e : graph.OutEdges(v)) count(graph.edge(e).to);
      for (rdf::EdgeId e : graph.InEdges(v)) count(graph.edge(e).from);
      const BlockId home = p->block_of[v];
      BlockId best = home;
      std::size_t best_links = neighbor_blocks[home];
      for (const auto& [b, links] : neighbor_blocks) {
        if (b == home) continue;
        if (block_size[b] >= max_size) continue;
        // A move must strictly beat the home block; among equally good
        // destinations prefer the smallest id. The old `links > best_links`
        // alone left equal-link winners to the unordered_map's iteration
        // order, which is hash- and libc++-dependent — partitions must be
        // deterministic (they are persisted in snapshots and diffed in CI).
        if (links > best_links ||
            (links == best_links && best != home && b < best)) {
          best = b;
          best_links = links;
        }
      }
      if (best != home && block_size[home] > 1) {
        --block_size[home];
        ++block_size[best];
        p->block_of[v] = best;
      }
    }
  }
}

}  // namespace

Partition PartitionGraph(const rdf::DataGraph& graph, std::size_t num_blocks,
                         PartitionMethod method) {
  GRASP_CHECK_GT(num_blocks, 0u);
  Partition p = BfsSeed(graph, num_blocks);
  if (method == PartitionMethod::kGreedy) RefineGreedy(graph, &p);
  return p;
}

}  // namespace grasp::baseline
