#ifndef GRASP_BASELINE_BACKWARD_SEARCH_H_
#define GRASP_BASELINE_BACKWARD_SEARCH_H_

#include <string>
#include <vector>

#include "baseline/answer_tree.h"
#include "baseline/keyword_map.h"
#include "rdf/data_graph.h"

namespace grasp::baseline {

/// BANKS-style backward search (Bhalotia et al., ICDE 2002), the first
/// baseline of Sec. VI-A: from every keyword vertex, expand along *incoming*
/// edges in shortest-distance order; a vertex reached from all keyword
/// groups is an answer root. Runs directly on the data graph (no summary).
class BackwardSearch {
 public:
  /// `graph` and `keyword_map` must outlive the searcher.
  BackwardSearch(const rdf::DataGraph& graph,
                 const VertexKeywordMap& keyword_map)
      : graph_(&graph), keyword_map_(&keyword_map) {}

  /// Computes top-k answer trees. Termination is exact: the search stops
  /// when the k-th best root provably beats every unfinished root.
  BaselineResult Search(const std::vector<std::string>& keywords,
                        const BaselineOptions& options) const;

 private:
  const rdf::DataGraph* graph_;
  const VertexKeywordMap* keyword_map_;
};

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_BACKWARD_SEARCH_H_
