#ifndef GRASP_BASELINE_KEYWORD_MAP_H_
#define GRASP_BASELINE_KEYWORD_MAP_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/data_graph.h"
#include "text/tokenizer.h"

namespace grasp::baseline {

/// Keyword-to-vertex map used by the answer-tree baselines (BANKS,
/// bidirectional search, BLINKS). Unlike the paper's keyword index, these
/// systems map keywords to *data-graph vertices* only, with exact matching
/// of analyzed terms ("an exact matching between keywords and labels of data
/// elements is performed", Sec. I) — no fuzzy or semantic expansion.
class VertexKeywordMap {
 public:
  /// Indexes V-vertex literals and C-vertex local names of `graph`.
  /// The graph must outlive the map.
  explicit VertexKeywordMap(const rdf::DataGraph& graph);

  /// Vertices whose label contains every analyzed token of `keyword`.
  std::vector<rdf::VertexId> Lookup(std::string_view keyword) const;

  std::size_t vocabulary_size() const { return postings_.size(); }

  /// Approximate heap footprint in bytes.
  std::size_t MemoryUsageBytes() const;

 private:
  text::AnalyzerOptions analyzer_;
  std::unordered_map<std::string, std::vector<rdf::VertexId>> postings_;
};

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_KEYWORD_MAP_H_
