#ifndef GRASP_BASELINE_BLINKS_H_
#define GRASP_BASELINE_BLINKS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/answer_tree.h"
#include "baseline/keyword_map.h"
#include "baseline/partition.h"
#include "rdf/data_graph.h"

namespace grasp::baseline {

/// BLINKS-style partition-indexed search (He et al., SIGMOD 2007), the
/// third baseline of Sec. VI-A ("1000 BFS / 1000 METIS / 300 BFS /
/// 300 METIS" in Fig. 5). The graph is split into blocks; an offline index
/// stores, per block, its portal vertices and exact intra-block distances
/// from every portal. At query time the search runs on the much smaller
/// portal graph, expanding whole blocks at once.
///
/// Faithfulness note (see DESIGN.md §5): full BLINKS additionally indexes
/// node-to-keyword distance lists; this reproduction restricts answer roots
/// to portal/origin vertices instead, which preserves the runtime shape the
/// figure compares (indexed search beats raw expansion; index size and
/// build time grow as blocks shrink).
class BlinksIndex {
 public:
  struct BuildOptions {
    std::size_t num_blocks = 300;
    PartitionMethod method = PartitionMethod::kBfs;
    /// Restrict the indexed graph to edges whose mask bit is set. The scope
    /// is fixed at *build* time — portal sets and intra-block distances are
    /// precomputed over the filtered view, and Search() traverses the same
    /// view, so a search-time BaselineOptions::edge_filter is ignored here
    /// (a mismatched one would contradict the precomputed distances). The
    /// block partition itself stays a full-graph layout heuristic; only
    /// reachability honors the filter. Must outlive the index.
    const graph::EdgeFilter* edge_filter = nullptr;
    EdgeFilterMode filter_mode = EdgeFilterMode::kFilteredView;
  };

  /// Builds the block index. `graph` and `keyword_map` must outlive it.
  BlinksIndex(const rdf::DataGraph& graph, const VertexKeywordMap& keyword_map,
              const BuildOptions& options);

  BaselineResult Search(const std::vector<std::string>& keywords,
                        const BaselineOptions& options) const;

  std::size_t num_blocks() const { return partition_.num_blocks; }
  std::size_t num_portals() const { return portal_ids_.size(); }
  std::size_t cut_size() const { return cut_size_; }
  double build_millis() const { return build_millis_; }
  std::size_t MemoryUsageBytes() const;

 private:
  /// Exact undirected distances from `source` to all vertices of its block;
  /// keyed only for vertices actually reached.
  std::unordered_map<rdf::VertexId, double> IntraBlockDistances(
      rdf::VertexId source) const;

  const rdf::DataGraph* graph_;
  const VertexKeywordMap* keyword_map_;
  const graph::EdgeFilter* edge_filter_ = nullptr;  ///< build-time scope
  EdgeFilterMode filter_mode_ = EdgeFilterMode::kFilteredView;
  Partition partition_;
  std::vector<rdf::VertexId> portal_ids_;         // all portal vertices
  std::vector<bool> is_portal_;                   // per vertex
  std::vector<std::vector<rdf::VertexId>> block_portals_;  // per block
  /// portal -> (portal or same-block vertex distances), precomputed.
  std::unordered_map<rdf::VertexId,
                     std::vector<std::pair<rdf::VertexId, double>>>
      portal_edges_;
  std::size_t cut_size_ = 0;
  double build_millis_ = 0.0;
};

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_BLINKS_H_
