#ifndef GRASP_BASELINE_ANSWER_TREE_H_
#define GRASP_BASELINE_ANSWER_TREE_H_

#include <cstddef>
#include <vector>

#include "rdf/data_graph.h"

namespace grasp::baseline {

/// Answer under the distinct-root assumption the baseline systems share: a
/// root vertex that reaches one matching vertex per keyword; the score is
/// the total path length (lower is better).
struct AnswerTree {
  rdf::VertexId root = rdf::kInvalidVertexId;
  double score = 0.0;
  /// One matched vertex per keyword, parallel to the query's keywords.
  std::vector<rdf::VertexId> keyword_vertices;
  /// Per-keyword distance from the root.
  std::vector<double> distances;
};

/// Common result envelope of the baseline searches.
struct BaselineResult {
  std::vector<AnswerTree> answers;  ///< sorted by ascending score
  std::size_t nodes_visited = 0;    ///< pops from the search frontier
  double millis = 0.0;
};

/// Common knobs of the baseline searches.
struct BaselineOptions {
  std::size_t k = 10;
  /// Stop after visiting this many nodes (0 = unlimited).
  std::size_t max_visits = 0;
};

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_ANSWER_TREE_H_
