#ifndef GRASP_BASELINE_ANSWER_TREE_H_
#define GRASP_BASELINE_ANSWER_TREE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_filter.h"
#include "rdf/data_graph.h"

namespace grasp::baseline {

/// Answer under the distinct-root assumption the baseline systems share: a
/// root vertex that reaches one matching vertex per keyword; the score is
/// the total path length (lower is better).
struct AnswerTree {
  rdf::VertexId root = rdf::kInvalidVertexId;
  double score = 0.0;
  /// One matched vertex per keyword, parallel to the query's keywords.
  std::vector<rdf::VertexId> keyword_vertices;
  /// Per-keyword distance from the root.
  std::vector<double> distances;
};

/// Common result envelope of the baseline searches.
struct BaselineResult {
  std::vector<AnswerTree> answers;  ///< sorted by ascending score
  std::size_t nodes_visited = 0;    ///< pops from the search frontier
  double millis = 0.0;
};

/// How a baseline search consumes its edge filter.
enum class EdgeFilterMode {
  /// Word-scanned filtered adjacency views (graph::FilteredIds) — the
  /// production path.
  kFilteredView,
  /// A per-edge branch over the raw adjacency run, retained as the
  /// conformance reference the view path is pinned against in tests.
  kInlineCheck,
};

/// Common knobs of the baseline searches.
struct BaselineOptions {
  std::size_t k = 10;
  /// Stop after visiting this many nodes (0 = unlimited).
  std::size_t max_visits = 0;
  /// Restrict traversal to edges whose mask bit is set — the honest Fig. 5
  /// configuration runs the answer-tree baselines on the R-edge partition
  /// (rdf::DataGraph::KindFilter) instead of hopping through type/subclass
  /// hubs. nullptr = the full graph. Must outlive the search. BLINKS is
  /// the exception: its scope is fixed at index build time
  /// (BlinksIndex::BuildOptions::edge_filter), and its Search checks that
  /// this field is null or the very same filter.
  const graph::EdgeFilter* edge_filter = nullptr;
  EdgeFilterMode filter_mode = EdgeFilterMode::kFilteredView;
};

/// Applies `fn` to every edge id of `run` admitted by the options' filter
/// configuration; with no filter the raw run is iterated branch-free.
template <typename Fn>
inline void ForEachAdmissibleEdge(std::span<const rdf::EdgeId> run,
                                  const graph::EdgeFilter* filter,
                                  EdgeFilterMode mode, Fn&& fn) {
  if (filter == nullptr) {
    for (rdf::EdgeId e : run) fn(e);
  } else if (mode == EdgeFilterMode::kInlineCheck) {
    for (rdf::EdgeId e : run) {
      if (filter->Contains(e)) fn(e);
    }
  } else {
    for (rdf::EdgeId e : graph::FilteredIds(run, *filter)) fn(e);
  }
}

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_ANSWER_TREE_H_
