#ifndef GRASP_BASELINE_BIDIRECTIONAL_SEARCH_H_
#define GRASP_BASELINE_BIDIRECTIONAL_SEARCH_H_

#include <string>
#include <vector>

#include "baseline/answer_tree.h"
#include "baseline/keyword_map.h"
#include "rdf/data_graph.h"

namespace grasp::baseline {

/// Bidirectional search (Kacholia et al., VLDB 2005), the second baseline of
/// Sec. VI-A: expansion follows incoming *and* outgoing edges, prioritized
/// by spreading-activation heuristics instead of pure distance. As the paper
/// notes, this gives good average behaviour but "there is no worst-case
/// performance guarantee" — top-k termination is heuristic.
class BidirectionalSearch {
 public:
  struct Options : BaselineOptions {
    /// Activation decay per hop (Kacholia et al. use mu in [0,1)).
    double activation_decay = 0.5;
    /// After the k-th answer is found, continue for this fraction of the
    /// pops spent so far before stopping (the heuristic cut-off).
    double extra_pop_fraction = 0.5;
  };

  BidirectionalSearch(const rdf::DataGraph& graph,
                      const VertexKeywordMap& keyword_map)
      : graph_(&graph), keyword_map_(&keyword_map) {}

  BaselineResult Search(const std::vector<std::string>& keywords,
                        const Options& options) const;

 private:
  const rdf::DataGraph* graph_;
  const VertexKeywordMap* keyword_map_;
};

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_BIDIRECTIONAL_SEARCH_H_
