#ifndef GRASP_BASELINE_PARTITION_H_
#define GRASP_BASELINE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "rdf/data_graph.h"

namespace grasp::baseline {

using BlockId = std::uint32_t;

/// Partitioning strategies for the BLINKS-style block index (Fig. 5 compares
/// "BFS" and "METIS" partitionings at 300 and 1000 blocks). METIS itself is
/// closed off to this reproduction, so `kGreedy` implements a multilevel-
/// flavoured substitute: BFS seeding followed by local-move refinement that
/// reduces the edge cut under a balance constraint (see DESIGN.md §5).
enum class PartitionMethod { kBfs, kGreedy };

struct Partition {
  std::vector<BlockId> block_of;  ///< per vertex
  std::size_t num_blocks = 0;

  /// Number of edges whose endpoints lie in different blocks, all edge
  /// kinds counted.
  std::size_t CutSize(const rdf::DataGraph& graph) const;

  /// Cut restricted to the edge kinds whose EdgeKindBit is set in
  /// `kind_mask`. The all-kinds overload over-reports the cut a sharded
  /// deployment pays: attribute/type/subclass edges end at value or class
  /// vertices that are replicated (or derived) everywhere, so only
  /// entity-entity relation edges — EdgeKindBit(EdgeKind::kRelation) —
  /// cross shard boundaries at query time.
  std::size_t CutSize(const rdf::DataGraph& graph, unsigned kind_mask) const;
};

/// Splits the vertices of `graph` (viewed as undirected) into at most
/// `num_blocks` connected-ish blocks of roughly equal size.
Partition PartitionGraph(const rdf::DataGraph& graph, std::size_t num_blocks,
                         PartitionMethod method);

}  // namespace grasp::baseline

#endif  // GRASP_BASELINE_PARTITION_H_
