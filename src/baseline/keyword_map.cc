#include "baseline/keyword_map.h"

#include <algorithm>

#include "rdf/term.h"

namespace grasp::baseline {

VertexKeywordMap::VertexKeywordMap(const rdf::DataGraph& graph) {
  const rdf::Dictionary& dict = graph.dictionary();
  for (rdf::VertexId v = 0; v < graph.NumVertices(); ++v) {
    const rdf::Vertex& vertex = graph.vertex(v);
    std::string_view label;
    if (vertex.kind == rdf::VertexKind::kValue) {
      label = dict.text(vertex.term);
    } else if (vertex.kind == rdf::VertexKind::kClass) {
      label = rdf::IriLocalName(dict.text(vertex.term));
    } else {
      continue;  // entity URIs are opaque, as in the baseline systems
    }
    for (std::string& term : text::Analyze(label, analyzer_)) {
      auto& list = postings_[term];
      if (list.empty() || list.back() != v) list.push_back(v);
    }
  }
}

std::vector<rdf::VertexId> VertexKeywordMap::Lookup(
    std::string_view keyword) const {
  std::vector<std::string> tokens = text::Analyze(keyword, analyzer_);
  if (tokens.empty()) return {};
  std::vector<rdf::VertexId> result;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    auto it = postings_.find(tokens[i]);
    if (it == postings_.end()) return {};
    std::vector<rdf::VertexId> sorted = it->second;
    std::sort(sorted.begin(), sorted.end());
    if (i == 0) {
      result = std::move(sorted);
    } else {
      std::vector<rdf::VertexId> merged;
      std::set_intersection(result.begin(), result.end(), sorted.begin(),
                            sorted.end(), std::back_inserter(merged));
      result = std::move(merged);
    }
    if (result.empty()) return {};
  }
  return result;
}

std::size_t VertexKeywordMap::MemoryUsageBytes() const {
  std::size_t bytes = 0;
  for (const auto& [term, list] : postings_) {
    bytes += term.capacity() + list.capacity() * sizeof(rdf::VertexId) +
             2 * sizeof(void*) + sizeof(std::vector<rdf::VertexId>);
  }
  return bytes;
}

}  // namespace grasp::baseline
