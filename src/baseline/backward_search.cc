#include "baseline/backward_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/timer.h"

namespace grasp::baseline {
namespace {

struct Frontier {
  double dist;
  rdf::VertexId vertex;
  std::uint32_t group;
  friend bool operator>(const Frontier& a, const Frontier& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.vertex != b.vertex) return a.vertex > b.vertex;
    return a.group > b.group;
  }
};

struct GroupState {
  std::unordered_map<rdf::VertexId, double> dist;      // finalized distances
  std::unordered_map<rdf::VertexId, rdf::VertexId> origin;
};

}  // namespace

BaselineResult BackwardSearch::Search(const std::vector<std::string>& keywords,
                                      const BaselineOptions& options) const {
  WallTimer timer;
  BaselineResult result;
  const std::size_t m = keywords.size();
  if (m == 0) return result;

  std::vector<std::vector<rdf::VertexId>> origins;
  for (const std::string& kw : keywords) {
    origins.push_back(keyword_map_->Lookup(kw));
    if (origins.back().empty()) {
      result.millis = timer.ElapsedMillis();
      return result;  // keyword not matchable: no answers
    }
  }

  std::vector<GroupState> groups(m);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;
  // Tentative distances to avoid duplicate pushes dominating memory.
  std::vector<std::unordered_map<rdf::VertexId, double>> tentative(m);
  for (std::uint32_t g = 0; g < m; ++g) {
    for (rdf::VertexId v : origins[g]) {
      tentative[g][v] = 0.0;
      groups[g].origin[v] = v;
      frontier.push(Frontier{0.0, v, g});
    }
  }

  std::unordered_map<rdf::VertexId, AnswerTree> roots;
  auto kth_score = [&]() {
    if (roots.size() < options.k) {
      return std::numeric_limits<double>::infinity();
    }
    std::vector<double> scores;
    scores.reserve(roots.size());
    for (const auto& [v, a] : roots) scores.push_back(a.score);
    std::nth_element(scores.begin(), scores.begin() + (options.k - 1),
                     scores.end());
    return scores[options.k - 1];
  };

  while (!frontier.empty()) {
    const Frontier top = frontier.top();
    frontier.pop();
    GroupState& group = groups[top.group];
    if (group.dist.count(top.vertex) > 0) continue;  // already finalized
    group.dist.emplace(top.vertex, top.dist);
    ++result.nodes_visited;
    if (options.max_visits > 0 && result.nodes_visited > options.max_visits) {
      break;
    }

    // Root check: finalized by all groups?
    bool all = true;
    for (const GroupState& gs : groups) {
      if (gs.dist.count(top.vertex) == 0) {
        all = false;
        break;
      }
    }
    if (all) {
      AnswerTree answer;
      answer.root = top.vertex;
      for (std::uint32_t g = 0; g < m; ++g) {
        const double d = groups[g].dist.at(top.vertex);
        answer.score += d;
        answer.distances.push_back(d);
        answer.keyword_vertices.push_back(groups[g].origin.at(top.vertex));
      }
      roots.emplace(top.vertex, std::move(answer));
    }

    // TA-style stop: any unfinished root's score is at least the distance of
    // the cheapest frontier entry (its last group is still pending).
    if (roots.size() >= options.k && !frontier.empty() &&
        kth_score() <= frontier.top().dist) {
      break;
    }

    // Backward expansion: follow incoming (in-scope) edges to their
    // sources — a directed filtered view when options.edge_filter is set.
    ForEachAdmissibleEdge(
        graph_->InEdges(top.vertex), options.edge_filter, options.filter_mode,
        [&](rdf::EdgeId e) {
          const rdf::VertexId u = graph_->edge(e).from;
          const double nd = top.dist + 1.0;
          auto it = tentative[top.group].find(u);
          if (it != tentative[top.group].end() && it->second <= nd) return;
          tentative[top.group][u] = nd;
          groups[top.group].origin[u] =
              groups[top.group].origin.at(top.vertex);
          frontier.push(Frontier{nd, u, top.group});
        });
  }

  result.answers.reserve(roots.size());
  for (auto& [v, answer] : roots) {
    (void)v;
    result.answers.push_back(std::move(answer));
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const AnswerTree& a, const AnswerTree& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.root < b.root;
            });
  if (result.answers.size() > options.k) result.answers.resize(options.k);
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace grasp::baseline
