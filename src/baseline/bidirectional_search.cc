#include "baseline/bidirectional_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/timer.h"

namespace grasp::baseline {
namespace {

struct Frontier {
  double priority;  // distance scaled down by activation: lower pops first
  double dist;
  rdf::VertexId vertex;
  std::uint32_t group;
  friend bool operator>(const Frontier& a, const Frontier& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.vertex != b.vertex) return a.vertex > b.vertex;
    return a.group > b.group;
  }
};

struct GroupState {
  std::unordered_map<rdf::VertexId, double> dist;        // settled distance
  std::unordered_map<rdf::VertexId, double> tentative;
  std::unordered_map<rdf::VertexId, double> activation;
  std::unordered_map<rdf::VertexId, rdf::VertexId> origin;
};

}  // namespace

BaselineResult BidirectionalSearch::Search(
    const std::vector<std::string>& keywords, const Options& options) const {
  WallTimer timer;
  BaselineResult result;
  const std::size_t m = keywords.size();
  if (m == 0) return result;

  std::vector<std::vector<rdf::VertexId>> origins;
  for (const std::string& kw : keywords) {
    origins.push_back(keyword_map_->Lookup(kw));
    if (origins.back().empty()) {
      result.millis = timer.ElapsedMillis();
      return result;
    }
  }

  std::vector<GroupState> groups(m);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;
  for (std::uint32_t g = 0; g < m; ++g) {
    for (rdf::VertexId v : origins[g]) {
      groups[g].tentative[v] = 0.0;
      groups[g].activation[v] = 1.0;
      groups[g].origin[v] = v;
      frontier.push(Frontier{0.0, 0.0, v, g});
    }
  }

  std::unordered_map<rdf::VertexId, AnswerTree> roots;
  std::size_t pops_at_kth = 0;

  while (!frontier.empty()) {
    const Frontier top = frontier.top();
    frontier.pop();
    GroupState& group = groups[top.group];
    if (group.dist.count(top.vertex) > 0) continue;
    // Stale entry: a cheaper tentative distance was pushed later.
    if (top.dist > group.tentative[top.vertex]) continue;
    group.dist.emplace(top.vertex, top.dist);
    ++result.nodes_visited;
    if (options.max_visits > 0 && result.nodes_visited > options.max_visits) {
      break;
    }

    bool all = true;
    for (const GroupState& gs : groups) {
      if (gs.dist.count(top.vertex) == 0) {
        all = false;
        break;
      }
    }
    if (all && roots.count(top.vertex) == 0) {
      AnswerTree answer;
      answer.root = top.vertex;
      for (std::uint32_t g = 0; g < m; ++g) {
        const double d = groups[g].dist.at(top.vertex);
        answer.score += d;
        answer.distances.push_back(d);
        answer.keyword_vertices.push_back(groups[g].origin.at(top.vertex));
      }
      roots.emplace(top.vertex, std::move(answer));
      if (roots.size() == options.k) {
        pops_at_kth = result.nodes_visited;
      }
    }

    // Heuristic cut-off once enough answers exist (no TA guarantee here).
    if (pops_at_kth > 0 &&
        static_cast<double>(result.nodes_visited) >
            static_cast<double>(pops_at_kth) *
                (1.0 + options.extra_pop_fraction)) {
      break;
    }

    // Bidirectional expansion: both edge directions.
    const double parent_activation = group.activation[top.vertex];
    auto relax = [&](rdf::VertexId u) {
      const double nd = top.dist + 1.0;
      const double act =
          std::max(group.activation[u], parent_activation *
                                            options.activation_decay);
      group.activation[u] = act;
      auto it = group.tentative.find(u);
      if (it != group.tentative.end() && it->second <= nd) return;
      group.tentative[u] = nd;
      group.origin[u] = group.origin.at(top.vertex);
      // Higher activation -> lower priority value -> expanded earlier.
      frontier.push(Frontier{nd / std::max(1e-6, act), nd, u, top.group});
    };
    ForEachAdmissibleEdge(
        graph_->InEdges(top.vertex), options.edge_filter, options.filter_mode,
        [&](rdf::EdgeId e) { relax(graph_->edge(e).from); });
    ForEachAdmissibleEdge(
        graph_->OutEdges(top.vertex), options.edge_filter, options.filter_mode,
        [&](rdf::EdgeId e) { relax(graph_->edge(e).to); });
  }

  result.answers.reserve(roots.size());
  for (auto& [v, answer] : roots) {
    (void)v;
    result.answers.push_back(std::move(answer));
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const AnswerTree& a, const AnswerTree& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.root < b.root;
            });
  if (result.answers.size() > options.k) result.answers.resize(options.k);
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace grasp::baseline
