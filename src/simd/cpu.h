#ifndef GRASP_SIMD_CPU_H_
#define GRASP_SIMD_CPU_H_

#include <optional>
#include <string_view>

namespace grasp::simd {

/// Instruction-set tiers the kernel subsystem can dispatch to, ordered so a
/// higher value strictly implies every lower one on the same machine. The
/// generic scalar tier is always available and is the conformance reference
/// every vector variant is pinned byte-identical to.
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Best tier the running CPU (and OS, for AVX state) supports. Detection
/// runs once and is cached; non-x86 builds always report kScalar.
Level DetectBestLevel();

/// Parses a GRASP_SIMD value: "scalar" | "sse42" | "avx2" | "native".
/// "native" (and empty) mean DetectBestLevel(); unknown strings return
/// nullopt so the caller can warn and fall back.
std::optional<Level> ParseLevel(std::string_view name);

/// Stable lowercase name for logs, stats and test output.
const char* LevelName(Level level);

}  // namespace grasp::simd

#endif  // GRASP_SIMD_CPU_H_
