#ifndef GRASP_SIMD_KERNELS_SCALAR_IMPL_H_
#define GRASP_SIMD_KERNELS_SCALAR_IMPL_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/hash.h"

// The generic kernel bodies, as inline functions: kernels_scalar.cc exports
// them as the reference table, and the per-ISA translation units reuse them
// for the sub-vector-width tails so a tail element goes through exactly the
// code the conformance suite pins.

namespace grasp::simd::detail {

inline void MaskAndScalar(const std::uint64_t* a, const std::uint64_t* b,
                          std::uint64_t* out, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] & b[i];
}

inline void MaskOrScalar(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] | b[i];
}

inline void MaskAndNotScalar(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] & ~b[i];
}

inline std::uint64_t PopcountWordsScalar(const std::uint64_t* w,
                                         std::size_t words) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(w[i]));
  }
  return count;
}

inline std::size_t CollectSetScalar(const std::uint64_t* w, std::size_t words,
                                    std::uint32_t base, std::uint32_t* out) {
  std::size_t written = 0;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t bits = w[i];
    const std::uint32_t word_base =
        base + static_cast<std::uint32_t>(i << 6);
    while (bits != 0) {
      out[written++] =
          word_base + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
  return written;
}

inline std::size_t PostingsBestUpdateScalar(const std::uint32_t* pairs,
                                            std::size_t n, double weight,
                                            double* best,
                                            std::uint32_t* touched) {
  std::size_t appended = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t doc = pairs[2 * i];
    const double current = best[doc];
    if (current < 0.0) {
      touched[appended++] = doc;
      best[doc] = weight;
    } else if (weight > current) {
      best[doc] = weight;
    }
  }
  return appended;
}

inline bool FuzzyKeepScalar(unsigned char first, unsigned char last,
                            std::uint32_t sig, unsigned char qf,
                            unsigned char ql, std::uint32_t qsig,
                            std::uint32_t max_dist) {
  const std::uint32_t boundary = static_cast<std::uint32_t>(first != qf) +
                                 static_cast<std::uint32_t>(last != ql);
  if (boundary > max_dist) return false;
  if (static_cast<std::uint32_t>(std::popcount(qsig & ~sig)) > max_dist) {
    return false;
  }
  if (static_cast<std::uint32_t>(std::popcount(sig & ~qsig)) > max_dist) {
    return false;
  }
  return true;
}

inline std::size_t FuzzyPrefilterScalar(const unsigned char* first,
                                        const unsigned char* last,
                                        const std::uint32_t* sigs,
                                        std::size_t n, unsigned char qf,
                                        unsigned char ql, std::uint32_t qsig,
                                        std::uint32_t max_dist,
                                        std::uint32_t* out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (FuzzyKeepScalar(first[i], last[i], sigs[i], qf, ql, qsig, max_dist)) {
      out[kept++] = static_cast<std::uint32_t>(i);
    }
  }
  return kept;
}

// Structure-hash lane scheme. Four independent splitmix chains; lane j
// mixes elements j, j+4, ... of its stream, the phase restarting at the
// edge stream; both salts keep node and edge ids from colliding across
// streams, and the final fold binds both counts.
inline constexpr std::uint64_t kStructHashSeed[4] = {
    0x6b7a5c3d2e1f0908ULL, 0x9e3779b97f4a7c15ULL, 0xbf58476d1ce4e5b9ULL,
    0x94d049bb133111ebULL};
inline constexpr std::uint64_t kStructHashNodeSalt = 0x100000000ULL;
inline constexpr std::uint64_t kStructHashEdgeSalt = 0x200000000ULL;

inline std::uint64_t StructHashFold(const std::uint64_t lane[4],
                                    std::size_t n, std::size_t m) {
  const std::uint64_t counts =
      Mix64(static_cast<std::uint64_t>(n) * 0x9e3779b97f4a7c15ULL ^
            static_cast<std::uint64_t>(m));
  return Mix64(lane[0] ^ Mix64(lane[1] ^ Mix64(lane[2] ^
                                               Mix64(lane[3] ^ counts))));
}

inline std::uint64_t StructHashScalar(const std::uint32_t* nodes,
                                      std::size_t n,
                                      const std::uint32_t* edges,
                                      std::size_t m) {
  std::uint64_t lane[4] = {kStructHashSeed[0], kStructHashSeed[1],
                           kStructHashSeed[2], kStructHashSeed[3]};
  for (std::size_t i = 0; i < n; ++i) {
    lane[i & 3] = Mix64(lane[i & 3] ^ (nodes[i] | kStructHashNodeSalt));
  }
  for (std::size_t i = 0; i < m; ++i) {
    lane[i & 3] = Mix64(lane[i & 3] ^ (edges[i] | kStructHashEdgeSalt));
  }
  return StructHashFold(lane, n, m);
}

}  // namespace grasp::simd::detail

#endif  // GRASP_SIMD_KERNELS_SCALAR_IMPL_H_
