#ifndef GRASP_SIMD_KERNELS_H_
#define GRASP_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/cpu.h"

namespace grasp::simd {

/// The vectorizable hot-path primitives, zimg-style: one function-pointer
/// table per instruction-set tier, each tier living in its own translation
/// unit compiled with only that tier's -m flags. The generic scalar table is
/// the semantic definition; every vector variant must be byte-identical to
/// it on every input (the per-ISA differential suite pins this).
///
/// Kernels speak raw pointers + element counts, never engine types: the call
/// sites static_assert their layouts down to these signatures, so the simd/
/// layer has no dependency on graph/, text/ or core/.
///
/// Alignment contract: callers pass buffers whose *start* is 64-byte aligned
/// when they own them (common::AlignedVector) and at least page-aligned when
/// mapped from a snapshot, but interior subspans (postings runs, bucket
/// ranges) can start anywhere — kernels therefore use unaligned loads and
/// must not assume more than natural element alignment.
struct KernelTable {
  /// out[i] = a[i] & b[i] over `words` 64-bit words (out may alias a or b).
  void (*mask_and)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t words);
  /// out[i] = a[i] | b[i].
  void (*mask_or)(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* out, std::size_t words);
  /// out[i] = a[i] & ~b[i].
  void (*mask_andnot)(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* out, std::size_t words);
  /// Total set bits across `words` words.
  std::uint64_t (*popcount_words)(const std::uint64_t* w, std::size_t words);
  /// Extracts every set bit of `words` words as an absolute index
  /// `base + word*64 + bit`, ascending, into `out` (caller sizes it for the
  /// worst case, words * 64). Returns the number written. This is the
  /// chunked core of EdgeFilter::ForEachSet: zero words are skipped in
  /// blocks so sparse masks cost loads, not branches.
  std::size_t (*collect_set)(const std::uint64_t* w, std::size_t words,
                             std::uint32_t base, std::uint32_t* out);

  /// Postings sweep of one weighted term: `pairs` holds n interleaved
  /// (doc, tf) uint32 records (text::InvertedIndex::Posting layout; docs
  /// strictly ascending within the run). For each record:
  ///   best[doc] < 0   -> first touch: append doc to `touched`, best = weight
  ///   otherwise       -> best[doc] = max(best[doc], weight)
  /// Returns the number of docs appended. The -1.0 sentinel convention is
  /// what makes the dense `best` array O(touched) to maintain per query.
  /// max() is order-independent, so vector lanes need no FP reassociation.
  std::size_t (*postings_best_update)(const std::uint32_t* pairs,
                                      std::size_t n, double weight,
                                      double* best, std::uint32_t* touched);

  /// Banded-Levenshtein prefilter over one contiguous length-bucket range:
  /// parallel arrays of each term's first byte, last byte and 32-bit
  /// character-presence signature (bit = 1u << (c & 31)). Keeps position i
  /// iff
  ///   (first[i] != qf) + (last[i] != ql) <= max_dist
  ///   && popcount(qsig & ~sigs[i]) <= max_dist
  ///   && popcount(sigs[i] & ~qsig) <= max_dist
  /// — all three are lower bounds on the true edit distance (each edit fixes
  /// at most one boundary character / one presence-set element, and the &31
  /// folding only merges classes, weakening the bound conservatively), so
  /// no true candidate is ever rejected and the surviving set is exact for
  /// every tier. Survivor positions are appended ascending to `out`
  /// (caller sizes it for n); returns the count. Callers guarantee both
  /// string lengths >= 2 (the bucket band does: len >= 3, lo >= 2), which
  /// the first/last-character bound needs.
  std::size_t (*fuzzy_prefilter)(const unsigned char* first,
                                 const unsigned char* last,
                                 const std::uint32_t* sigs, std::size_t n,
                                 unsigned char qf, unsigned char ql,
                                 std::uint32_t qsig, std::uint32_t max_dist,
                                 std::uint32_t* out);

  /// Canonical 64-bit structure hash over a sorted node set and a sorted
  /// edge set (core::StructureHashOf). Four independent splitmix lanes in
  /// strict element order (lane j mixes elements j, j+4, ...; nodes and
  /// edges are salted differently; lane phase restarts at the edge stream),
  /// finally folded with both counts — the same lane scheme as the snapshot
  /// Checksum64, defined so scalar and 4-wide variants are bit-equal by
  /// construction.
  std::uint64_t (*struct_hash)(const std::uint32_t* nodes, std::size_t n,
                               const std::uint32_t* edges, std::size_t m);

  const char* name;  ///< LevelName of the tier this table implements
};

/// Per-tier tables. A tier's accessor returns nullptr when its translation
/// unit was built without that tier's instructions (non-x86, or a toolchain
/// without the -m flags); the dispatcher treats nullptr as unsupported.
const KernelTable* ScalarTable();
const KernelTable* Sse42Table();
const KernelTable* Avx2Table();

/// The table for exactly `level`, or nullptr when this build cannot execute
/// it. For benchmarks and kernel unit tests that compare tiers side by side
/// without touching the global dispatch state.
const KernelTable* TableFor(Level level);

/// The dispatched table: resolved once (thread-safe) from GRASP_SIMD and
/// CPU detection on first use; engine construction calls this eagerly so
/// the choice is logged before any query runs. GRASP_SIMD accepts
/// scalar|sse42|avx2|native; an unsupported or unknown request clamps to
/// the best supported tier with a warning.
const KernelTable& ActiveKernels();

/// The tier ActiveKernels() resolved to.
Level ActiveLevel();

/// Overrides the dispatched tier (clamped to the best supported one;
/// returns the tier actually installed). For the differential test suites
/// that sweep every reachable tier in-process. Not safe against concurrent
/// queries — flip only while no search is in flight.
Level SetActiveLevel(Level level);

}  // namespace grasp::simd

#endif  // GRASP_SIMD_KERNELS_H_
