// SSE4.2 kernel tier. This translation unit is the only one compiled with
// -msse4.2 -mpopcnt (see CMakeLists), so vector intrinsics and hardware
// popcount must not leak out of it; on non-x86 builds it degrades to an
// unsupported (nullptr) table.

#include "simd/kernels.h"
#include "simd/kernels_scalar_impl.h"

#if defined(__SSE4_2__) && defined(__POPCNT__)
#include <nmmintrin.h>

namespace grasp::simd {
namespace {

void MaskAnd(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(va, vb));
  }
  detail::MaskAndScalar(a + i, b + i, out + i, words - i);
}

void MaskOr(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
            std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(va, vb));
  }
  detail::MaskOrScalar(a + i, b + i, out + i, words - i);
}

void MaskAndNot(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // andnot computes ~first & second.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_andnot_si128(vb, va));
  }
  detail::MaskAndNotScalar(a + i, b + i, out + i, words - i);
}

// The scalar bodies below recompile here with hardware POPCNT (this TU's
// -mpopcnt), which is the whole win of this tier for the bit-counting
// kernels: same code, one instruction per word instead of the baseline
// bit-twiddling sequence.
std::uint64_t PopcountWords(const std::uint64_t* w, std::size_t words) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return count;
}

std::size_t CollectSet(const std::uint64_t* w, std::size_t words,
                       std::uint32_t base, std::uint32_t* out) {
  std::size_t written = 0;
  std::size_t i = 0;
  // Skip all-zero 128-bit blocks with one test each; sparse masks are the
  // common case for narrow predicate scopes.
  for (; i + 2 <= words; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (_mm_test_all_zeros(v, v)) continue;
    written += detail::CollectSetScalar(
        w + i, 2, base + static_cast<std::uint32_t>(i << 6), out + written);
  }
  written += detail::CollectSetScalar(
      w + i, words - i, base + static_cast<std::uint32_t>(i << 6),
      out + written);
  return written;
}

std::size_t FuzzyPrefilter(const unsigned char* first,
                           const unsigned char* last,
                           const std::uint32_t* sigs, std::size_t n,
                           unsigned char qf, unsigned char ql,
                           std::uint32_t qsig, std::uint32_t max_dist,
                           std::uint32_t* out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t boundary =
        static_cast<std::uint32_t>(first[i] != qf) +
        static_cast<std::uint32_t>(last[i] != ql);
    if (boundary > max_dist) continue;
    if (static_cast<std::uint32_t>(_mm_popcnt_u32(qsig & ~sigs[i])) >
        max_dist) {
      continue;
    }
    if (static_cast<std::uint32_t>(_mm_popcnt_u32(sigs[i] & ~qsig)) >
        max_dist) {
      continue;
    }
    out[kept++] = static_cast<std::uint32_t>(i);
  }
  return kept;
}

}  // namespace

const KernelTable* Sse42Table() {
  static constexpr KernelTable table = {
      MaskAnd,
      MaskOr,
      MaskAndNot,
      PopcountWords,
      CollectSet,
      detail::PostingsBestUpdateScalar,  // gathers need AVX2 to pay off
      FuzzyPrefilter,
      detail::StructHashScalar,  // 4-lane mul emulation needs AVX2
      "sse42",
  };
  return &table;
}

}  // namespace grasp::simd

#else  // !(__SSE4_2__ && __POPCNT__)

namespace grasp::simd {

const KernelTable* Sse42Table() { return nullptr; }

}  // namespace grasp::simd

#endif
