#include "simd/cpu.h"

namespace grasp::simd {

Level DetectBestLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports goes through libgcc's cpu-model probe, which
  // already masks AVX2 off when the OS does not enable ymm state in XCR0
  // (the xgetbv check), so a positive answer means the instructions are
  // actually executable, not just advertised by CPUID.
  static const Level detected = [] {
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
    return Level::kScalar;
  }();
  return detected;
#else
  return Level::kScalar;
#endif
}

std::optional<Level> ParseLevel(std::string_view name) {
  if (name.empty() || name == "native") return DetectBestLevel();
  if (name == "scalar") return Level::kScalar;
  if (name == "sse42") return Level::kSse42;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse42";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

}  // namespace grasp::simd
