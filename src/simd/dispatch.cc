// Runtime kernel dispatch: resolves the active tier once from GRASP_SIMD
// and CPU detection, and lets tests re-pin it between queries.

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "common/logging.h"
#include "simd/cpu.h"
#include "simd/kernels.h"

namespace grasp::simd {
namespace {

// Highest tier at or below `want` whose table this build can execute.
// ScalarTable() always exists, so this never returns nullptr.
const KernelTable* BestTableAtOrBelow(Level want) {
  if (want >= Level::kAvx2 && DetectBestLevel() >= Level::kAvx2) {
    if (const KernelTable* t = Avx2Table()) return t;
  }
  if (want >= Level::kSse42 && DetectBestLevel() >= Level::kSse42) {
    if (const KernelTable* t = Sse42Table()) return t;
  }
  return ScalarTable();
}

Level LevelOf(const KernelTable* table) {
  if (table == Avx2Table()) return Level::kAvx2;
  if (table == Sse42Table()) return Level::kSse42;
  return Level::kScalar;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_resolve_once;

void ResolveFromEnvironment() {
  Level want = DetectBestLevel();
  const char* env = std::getenv("GRASP_SIMD");
  if (env != nullptr && *env != '\0') {
    if (auto parsed = ParseLevel(env)) {
      want = *parsed;
    } else {
      GRASP_LOG(Warning) << "GRASP_SIMD=" << env
                          << " is not scalar|sse42|avx2|native; using native";
    }
  }
  const KernelTable* table = BestTableAtOrBelow(want);
  if (LevelOf(table) != want) {
    GRASP_LOG(Warning) << "SIMD tier " << LevelName(want)
                        << " unavailable on this CPU/build; using "
                        << table->name;
  }
  g_active.store(table, std::memory_order_release);
}

}  // namespace

const KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return ScalarTable();
    case Level::kSse42:
      return DetectBestLevel() >= Level::kSse42 ? Sse42Table() : nullptr;
    case Level::kAvx2:
      return DetectBestLevel() >= Level::kAvx2 ? Avx2Table() : nullptr;
  }
  return nullptr;
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    std::call_once(g_resolve_once, ResolveFromEnvironment);
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

Level ActiveLevel() {
  ActiveKernels();
  return LevelOf(g_active.load(std::memory_order_acquire));
}

Level SetActiveLevel(Level level) {
  const KernelTable* table = BestTableAtOrBelow(level);
  g_active.store(table, std::memory_order_release);
  return LevelOf(table);
}

}  // namespace grasp::simd
