#include "simd/kernels.h"
#include "simd/kernels_scalar_impl.h"

// The generic tier: plain C++ bodies from kernels_scalar_impl.h, compiled
// with the project's baseline flags only. This table is the semantic
// reference every vector tier is pinned against.

namespace grasp::simd {

const KernelTable* ScalarTable() {
  static constexpr KernelTable table = {
      detail::MaskAndScalar,
      detail::MaskOrScalar,
      detail::MaskAndNotScalar,
      detail::PopcountWordsScalar,
      detail::CollectSetScalar,
      detail::PostingsBestUpdateScalar,
      detail::FuzzyPrefilterScalar,
      detail::StructHashScalar,
      "scalar",
  };
  return &table;
}

}  // namespace grasp::simd
