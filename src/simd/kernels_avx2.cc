// AVX2 kernel tier, the widest this codebase ships (AVX-512 and NEON are
// ROADMAP follow-ups). This translation unit is the only one compiled with
// -mavx2 -mpopcnt; every kernel here must produce byte-identical results to
// the generic bodies in kernels_scalar_impl.h — the differential suite
// enforces it, the comments argue why.

#include "simd/kernels.h"
#include "simd/kernels_scalar_impl.h"

#if defined(__AVX2__) && defined(__POPCNT__)
#include <immintrin.h>

namespace grasp::simd {
namespace {

void MaskAnd(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  detail::MaskAndScalar(a + i, b + i, out + i, words - i);
}

void MaskOr(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
            std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(va, vb));
  }
  detail::MaskOrScalar(a + i, b + i, out + i, words - i);
}

void MaskAndNot(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes ~first & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_andnot_si256(vb, va));
  }
  detail::MaskAndNotScalar(a + i, b + i, out + i, words - i);
}

// Per-byte popcount via the classic 4-bit-nibble shuffle table; exact, so
// summing bytes gives exactly the scalar count.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

std::uint64_t PopcountWords(const std::uint64_t* w, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    // sad against zero sums 8 byte-counts into each 64-bit lane; each byte
    // count is <= 8, so lanes cannot overflow for any input length.
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(PopcountBytes(v),
                                           _mm256_setzero_si256()));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < words; ++i) {
    count += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return count;
}

std::size_t CollectSet(const std::uint64_t* w, std::size_t words,
                       std::uint32_t base, std::uint32_t* out) {
  std::size_t written = 0;
  std::size_t i = 0;
  // One testz per 256-bit block makes sparse masks (narrow predicate
  // scopes) cost a load per 256 edges; dense blocks fall through to the
  // scalar bit extraction, which is store-bound anyway.
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v)) continue;
    written += detail::CollectSetScalar(
        w + i, 4, base + static_cast<std::uint32_t>(i << 6), out + written);
  }
  written += detail::CollectSetScalar(
      w + i, words - i, base + static_cast<std::uint32_t>(i << 6),
      out + written);
  return written;
}

// No AVX2 body for postings_best_update: a gather-based variant
// (permutevar8x32 to split out the doc lanes, i32gather_pd on best[], max
// against the broadcast weight) measured ~6% SLOWER than the scalar body on
// the postings-intersection microbench — the random-access gather is the
// whole loop, and vgatherdpd's per-lane latency eats the vectorized score
// math. The table dispatches the scalar body below.

std::size_t FuzzyPrefilter(const unsigned char* first,
                           const unsigned char* last,
                           const std::uint32_t* sigs, std::size_t n,
                           unsigned char qf, unsigned char ql,
                           std::uint32_t qsig, std::uint32_t max_dist,
                           std::uint32_t* out) {
  std::size_t kept = 0;
  std::size_t i = 0;
  const __m256i qf_v = _mm256_set1_epi32(qf);
  const __m256i ql_v = _mm256_set1_epi32(ql);
  const __m256i qsig_v = _mm256_set1_epi32(static_cast<int>(qsig));
  const __m256i max_v = _mm256_set1_epi32(static_cast<int>(max_dist));
  const __m256i one_v = _mm256_set1_epi32(1);
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  // Exact per-32-bit-lane popcount: per-byte counts, then fold the four
  // bytes of each lane with two shifted adds (sums <= 32, no carry).
  const auto popcount_epi32 = [&](__m256i v) {
    __m256i c = PopcountBytes(v);
    c = _mm256_add_epi8(c, _mm256_srli_epi32(c, 16));
    c = _mm256_add_epi8(c, _mm256_srli_epi32(c, 8));
    return _mm256_and_si256(c, byte_mask);
  };
  for (; i + 8 <= n; i += 8) {
    const __m256i f = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(first + i)));
    const __m256i l = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(last + i)));
    const __m256i boundary = _mm256_add_epi32(
        _mm256_andnot_si256(_mm256_cmpeq_epi32(f, qf_v), one_v),
        _mm256_andnot_si256(_mm256_cmpeq_epi32(l, ql_v), one_v));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sigs + i));
    const __m256i missing = popcount_epi32(_mm256_andnot_si256(s, qsig_v));
    const __m256i extra = popcount_epi32(_mm256_andnot_si256(qsig_v, s));
    // All three counts are tiny non-negatives, so signed > is safe.
    const __m256i reject = _mm256_or_si256(
        _mm256_cmpgt_epi32(boundary, max_v),
        _mm256_or_si256(_mm256_cmpgt_epi32(missing, max_v),
                        _mm256_cmpgt_epi32(extra, max_v)));
    int keep =
        (~_mm256_movemask_ps(_mm256_castsi256_ps(reject))) & 0xff;
    while (keep != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(keep));
      out[kept++] = static_cast<std::uint32_t>(i) + static_cast<std::uint32_t>(j);
      keep &= keep - 1;
    }
  }
  // The scalar tail emits positions relative to the tail start; rebase them.
  const std::size_t tail =
      detail::FuzzyPrefilterScalar(first + i, last + i, sigs + i, n - i, qf,
                                   ql, qsig, max_dist, out + kept);
  for (std::size_t k = 0; k < tail; ++k) {
    out[kept + k] += static_cast<std::uint32_t>(i);
  }
  return kept + tail;
}

// No AVX2 body for struct_hash either: the 4-lane splitmix chains map
// naturally onto 64-bit lanes, but AVX2 has no 64x64 multiply — each Mix64
// round needs three mul_epu32 products plus shifts to emulate lo64(a*b),
// and at dedup-typical subgraph sizes (tens of ids per stream) that
// measured ~27% slower than four scalar imul chains. The scalar body below
// already interleaves the four lanes for ILP; the table dispatches it.

}  // namespace

const KernelTable* Avx2Table() {
  static constexpr KernelTable table = {
      MaskAnd,
      MaskOr,
      MaskAndNot,
      PopcountWords,
      CollectSet,
      detail::PostingsBestUpdateScalar,
      FuzzyPrefilter,
      detail::StructHashScalar,
      "avx2",
  };
  return &table;
}

}  // namespace grasp::simd

#else  // !(__AVX2__ && __POPCNT__)

namespace grasp::simd {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace grasp::simd

#endif
