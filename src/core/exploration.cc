#include "core/exploration.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace grasp::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Tracks whether a FindTopK run had to enlarge any pooled structure; fires
/// on every exit path so the steady-state-allocation test sees all of them.
struct GrowTracker {
  explicit GrowTracker(ExplorationScratch* scratch)
      : scratch(scratch), before(scratch->CapacityBytes()) {}
  ~GrowTracker() {
    if (scratch->CapacityBytes() > before) ++scratch->grow_events;
  }
  ExplorationScratch* scratch;
  std::size_t before;
};

}  // namespace

SubgraphExplorer::SubgraphExplorer(const summary::AugmentedGraph& graph,
                                   const ExplorationOptions& options,
                                   ExplorationScratch* scratch)
    : graph_(&graph),
      options_(options),
      cost_fn_(options.cost_model, graph),
      num_keywords_(graph.num_keywords()),
      scratch_(scratch) {
  GRASP_CHECK_GT(options_.k, 0u);
  if (scratch_ == nullptr) {
    owned_scratch_ = std::make_unique<ExplorationScratch>();
    scratch_ = owned_scratch_.get();
  }
}

bool SubgraphExplorer::InAncestors(std::uint32_t cursor,
                                   summary::ElementId element) const {
  const auto& cursors = scratch_->cursors;
  // Bloom fast path: a clear bit proves `element` is on no ancestor.
  if ((cursors[cursor].ancestor_sig & FlatCursor::SigBit(element)) == 0) {
    return false;
  }
  std::int32_t i = static_cast<std::int32_t>(cursor);
  while (i >= 0) {
    const FlatCursor& c = cursors[static_cast<std::size_t>(i)];
    if (c.element == element) return true;
    i = c.parent;
  }
  return false;
}

double SubgraphExplorer::CachedElementCost(summary::ElementId element) const {
  const std::size_t i = graph_->DenseIndex(element);
  if (scratch_->element_cost_epoch[i] != scratch_->cost_epoch) {
    scratch_->element_cost_epoch[i] = scratch_->cost_epoch;
    scratch_->element_cost[i] = cost_fn_.ElementCost(element);
  }
  return scratch_->element_cost[i];
}

std::uint32_t SubgraphExplorer::ChosenCursor(std::uint32_t j, std::uint32_t kw,
                                             std::uint32_t new_cursor,
                                             const std::uint32_t* choice) const {
  if (j == kw) return new_cursor;
  return scratch_->event_cursors[scratch_->event_offsets[j] +
                                 choice[scratch_->dim_of[j]]];
}

double SubgraphExplorer::KthCandidateCost() const {
  const auto& ranked = scratch_->candidates.ranked();
  if (ranked.size() < options_.k) return kInf;
  return ranked[options_.k - 1].cost;
}

double SubgraphExplorer::RemainingLowerBound() const {
  if (scratch_->heap.empty()) return kInf;
  const double min_cursor = scratch_->heap.Top().cost;
  if (!options_.tightened_bound) return min_cursor;
  // A future candidate consists of one path that is still on the heap
  // (cost >= min_cursor) plus, for every other keyword, some path that costs
  // at least that keyword's cheapest root. Minimizing over the choice of the
  // heap keyword yields: min_cursor + sum(min roots) - max(min root).
  double sum = 0.0, worst = 0.0;
  for (double r : scratch_->min_root_cost) {
    sum += r;
    worst = std::max(worst, r);
  }
  return min_cursor + (sum - worst);
}

double SubgraphExplorer::StopBound(double pending_cost) const {
  // Same reasoning as RemainingLowerBound, but anchored on the cursor whose
  // pop the stop interrupted: it is at least as cheap as everything still on
  // the heap, so any candidate the continued run could produce costs at
  // least this much. Element costs are clamped strictly positive and
  // re-ranking requires a strictly cheaper decomposition, so ranked
  // candidates strictly below the bound are already in their final order —
  // the verified prefix of the unbounded ranking.
  if (!options_.tightened_bound) return pending_cost;
  double sum = 0.0, worst = 0.0;
  for (double r : scratch_->min_root_cost) {
    sum += r;
    worst = std::max(worst, r);
  }
  return pending_cost + (sum - worst);
}

std::size_t SubgraphExplorer::CandidateCap() const {
  // k-best(LG') of Alg. 2, line 8, with a slack factor so that structures
  // evicted here can still reappear with a cheaper decomposition.
  return options_.k * 4 + 16;
}

double SubgraphExplorer::CandidatePruneCost() const {
  const auto& ranked = scratch_->candidates.ranked();
  if (ranked.size() < CandidateCap()) return kInf;
  return ranked.back().cost;
}

void SubgraphExplorer::InsertCandidate(std::uint64_t hash, double cost,
                                       summary::ElementId n, std::uint32_t kw,
                                       std::uint32_t new_cursor,
                                       const std::uint32_t* choice,
                                       std::uint64_t discovery) {
  ++stats_.subgraphs_generated;
  CandidateStore& store = scratch_->candidates;
  bool inserted = false;
  CandidateStore::TableSlot* entry = store.FindOrInsert(hash, &inserted);
  std::uint32_t slot;
  if (!inserted) {
    ++stats_.subgraphs_deduplicated;
    if (cost >= entry->best_cost) return;
    // A cheaper decomposition of a known structure: re-rank it. If the
    // structure is still live, its pool slot (and vector capacities) are
    // reused in place.
    entry->best_cost = cost;
    if (entry->candidate != CandidateStore::kEvicted) {
      store.Unrank(entry->candidate);
      slot = entry->candidate;
    } else {
      slot = store.AcquireSlot();
    }
  } else {
    entry->best_cost = cost;
    slot = store.AcquireSlot();
  }
  store.Rank(cost, slot);
  entry->candidate = slot;

  // Materialize from the scratch element sets and the chosen cursors'
  // parent chains; every container either reuses slot-pool capacity or
  // scratch capacity. Paths are reconstructed only here — candidates that
  // fail the dedup above never pay for one.
  MatchingSubgraph& sg = store.subgraph(slot);
  sg.cost = cost;
  sg.discovery = discovery;  // the event that achieved this (final) cost
  sg.connecting_element = n;
  sg.nodes.assign(scratch_->cand_nodes.begin(), scratch_->cand_nodes.end());
  sg.edges.assign(scratch_->cand_edges.begin(), scratch_->cand_edges.end());
  sg.paths.resize(num_keywords_);
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    std::vector<summary::ElementId>& path = sg.paths[j];
    path.clear();
    std::int32_t i =
        static_cast<std::int32_t>(ChosenCursor(j, kw, new_cursor, choice));
    while (i >= 0) {
      const FlatCursor& c = scratch_->cursors[static_cast<std::size_t>(i)];
      path.push_back(c.element);
      i = c.parent;
    }
    std::reverse(path.begin(), path.end());  // origin first
  }
  store.hash_of(slot) = hash;

  auto& ranked = store.ranked();
  if (ranked.size() > CandidateCap()) {
    const CandidateStore::RankEntry worst = ranked.back();
    ranked.pop_back();
    CandidateStore::TableSlot* evicted = store.Find(store.hash_of(worst.slot));
    GRASP_CHECK(evicted != nullptr);
    evicted->candidate = CandidateStore::kEvicted;  // best_cost stays known
    store.ReleaseSlot(worst.slot);
  }
}

void SubgraphExplorer::GenerateCandidates(summary::ElementId n,
                                          std::uint32_t new_cursor) {
  const std::uint32_t kw = scratch_->cursors[new_cursor].keyword;
  // n is a connecting element iff every keyword has at least one recorded
  // path ending here (Alg. 2, line 1).
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    if (j == kw) continue;
    if (scratch_->paths.CountOf(PathKey(n, j)) == 0) return;
  }

  // Flatten the slab lists once so combinations can index list positions in
  // O(1). Paths themselves are NOT reconstructed here: a combination that
  // is emitted walks the m chosen parent chains directly, so an event whose
  // frontier stops after one combination never touches the dozens of other
  // recorded paths at this element.
  auto& event_cursors = scratch_->event_cursors;
  auto& offsets = scratch_->event_offsets;
  event_cursors.clear();
  offsets.clear();
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    offsets.push_back(static_cast<std::uint32_t>(event_cursors.size()));
    if (j != kw) scratch_->paths.FlattenTo(PathKey(n, j), &event_cursors);
  }
  offsets.push_back(static_cast<std::uint32_t>(event_cursors.size()));

  // Keyword dimensions other than kw, plus the inverse map (hoists the
  // per-combination dims lookup out of the loop).
  auto& dims = scratch_->dims;
  auto& dim_of = scratch_->dim_of;
  dims.clear();
  dim_of.assign(num_keywords_, 0);
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    if (j == kw) continue;
    dim_of[j] = static_cast<std::uint32_t>(dims.size());
    dims.push_back(j);
  }
  const std::size_t stride = dims.size();

  // Enumerate cursorCombinations(n) incrementally: every new combination
  // must include the cursor that was just recorded; combinations of older
  // cursors were produced when their last member arrived.
  //
  // The enumeration is best-first over the combination lattice. Each
  // per-keyword path list is in ascending cost order, so the successors of a
  // combination (one index advanced) only cost more; a frontier heap
  // therefore yields combinations in ascending total cost, and the whole
  // event stops as soon as the cheapest remaining combination exceeds the
  // candidate-cap threshold — anything beyond it can never reach the top k
  // distinct structures. With m keywords and per-element path lists capped
  // at k, this materializes O(cap) combinations instead of k^(m-1).
  // Choice tuples live in a per-event arena (immutable once pushed);
  // frontier entries carry only (cost, arena offset).
  auto& frontier = scratch_->frontier;
  auto& choices = scratch_->choice_arena;
  frontier.clear();
  choices.clear();

  const double base_cost = scratch_->cursors[new_cursor].cost;
  auto combo_cost = [&](const std::uint32_t* choice) {
    double cost = base_cost;
    for (std::size_t d = 0; d < stride; ++d) {
      cost += scratch_
                  ->cursors[event_cursors[offsets[dims[d]] + choice[d]]]
                  .cost;
    }
    return cost;
  };
  auto combo_greater = [](const ExplorationScratch::Combo& a,
                          const ExplorationScratch::Combo& b) {
    return a.cost > b.cost;
  };

  choices.assign(stride, 0);
  frontier.push_back(ExplorationScratch::Combo{combo_cost(choices.data()), 0});
  std::size_t combinations = 0;
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), combo_greater);
    const ExplorationScratch::Combo combo = frontier.back();
    frontier.pop_back();
    if (combo.cost > CandidatePruneCost()) break;  // nothing cheaper remains
    if (++combinations > options_.max_combinations_per_event) {
      stats_.budget_exceeded = true;
      break;
    }
    const std::uint32_t* choice = choices.data() + combo.choice_begin;

    // Merged element sets of the combination, in scratch: the m chosen
    // parent chains, each edge closing the structure with both endpoints
    // (chain order is irrelevant — the sets are sorted below). The
    // structure hash is computed from these before any candidate object is
    // touched, so duplicate combinations cost no allocation or copying.
    auto& nodes = scratch_->cand_nodes;
    auto& edges = scratch_->cand_edges;
    nodes.clear();
    edges.clear();
    for (std::uint32_t j = 0; j < num_keywords_; ++j) {
      std::int32_t i =
          static_cast<std::int32_t>(ChosenCursor(j, kw, new_cursor, choice));
      while (i >= 0) {
        const FlatCursor& c = scratch_->cursors[static_cast<std::size_t>(i)];
        const summary::ElementId el = c.element;
        if (el.is_edge()) {
          edges.push_back(el.index());
          const summary::SummaryEdge& e = graph_->edge(el.index());
          nodes.push_back(e.from);
          nodes.push_back(e.to);
        } else {
          nodes.push_back(el.index());
        }
        i = c.parent;
      }
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // Discovery coordinate: pop ordinal + 1-based combination index at this
    // event. Both explorers enumerate combinations with the same best-first
    // successor rule, so the coordinate is identical across them — and
    // across shards, whose pop streams replay the unsharded run.
    const std::uint64_t discovery =
        (static_cast<std::uint64_t>(stats_.cursors_popped) << 20) |
        static_cast<std::uint64_t>(std::min<std::size_t>(combinations,
                                                         0xFFFFF));
    InsertCandidate(StructureHashOf(nodes, edges), combo.cost, n, kw,
                    new_cursor, choice, discovery);

    // Successors: advance one dimension each. Advancing only dimensions at
    // or after the last non-zero one visits every combination exactly once
    // (the lexicographic successor rule), so no visited-set is needed.
    std::size_t first = 0;
    for (std::size_t d = stride; d-- > 0;) {
      if (choice[d] != 0) {
        first = d;
        break;
      }
    }
    for (std::size_t d = first; d < stride; ++d) {
      const std::uint32_t list_size = offsets[dims[d] + 1] - offsets[dims[d]];
      if (choice[d] + 1 < list_size) {
        const std::uint32_t next_begin =
            static_cast<std::uint32_t>(choices.size());
        choices.resize(next_begin + stride);
        for (std::size_t c = 0; c < stride; ++c) {
          choices[next_begin + c] = choices[combo.choice_begin + c];
        }
        ++choices[next_begin + d];
        // `choice` may dangle after the resize reallocates; re-derive it.
        choice = choices.data() + combo.choice_begin;
        frontier.push_back(ExplorationScratch::Combo{
            combo_cost(choices.data() + next_begin), next_begin});
        std::push_heap(frontier.begin(), frontier.end(), combo_greater);
      }
    }
  }
}

std::vector<MatchingSubgraph> SubgraphExplorer::FindTopK() {
  scratch_->Reset();
  ++scratch_->queries_run;
  stop_bound_ = kInf;
  GrowTracker grow_tracker(scratch_);

  const auto& keyword_elements = graph_->keyword_elements();
  if (keyword_elements.empty()) return {};
  for (const auto& k_i : keyword_elements) {
    if (k_i.empty()) return {};  // some keyword cannot be interpreted
  }

  if (options_.distance_pruning) {
    distance_index_ = std::make_unique<summary::KeywordDistanceIndex>(
        summary::KeywordDistanceIndex::Build(*graph_));
  }
  auto distance_admissible = [this](std::uint32_t keyword,
                                    summary::ElementId element,
                                    std::uint32_t distance) {
    if (distance_index_ == nullptr) return true;
    if (distance_index_->CanStillConnect(keyword, element, distance,
                                         options_.dmax)) {
      return true;
    }
    ++stats_.cursors_distance_pruned;
    return false;
  };

  auto& cursors = scratch_->cursors;
  auto& heap = scratch_->heap;

  // Size the element-cost cache for this query's graph; entries from older
  // (smaller) epochs are invalid by stamp, so no clearing is needed.
  if (scratch_->element_cost_epoch.size() < graph_->num_elements()) {
    scratch_->element_cost_epoch.resize(graph_->num_elements(), 0);
    scratch_->element_cost.resize(graph_->num_elements(), 0.0);
  }

  // Alg. 1, lines 1-6: one root cursor per keyword element. Under an edge
  // scope, keyword elements that are masked edges are not part of the
  // scoped graph: they neither root a cursor nor contribute to the
  // min-root bound, and a keyword whose every element is scoped out makes
  // the query unanswerable (mirrored exactly by ReferenceExplorer).
  const graph::OverlayEdgeFilter* scope = options_.edge_filter;
  scratch_->min_root_cost.assign(num_keywords_, kInf);
  for (std::uint32_t i = 0; i < num_keywords_; ++i) {
    bool any_in_scope = false;
    for (const summary::ScoredElement& se : keyword_elements[i]) {
      if (scope != nullptr && se.element.is_edge() &&
          !scope->Contains(se.element.index())) {
        continue;
      }
      any_in_scope = true;
      const double w = CachedElementCost(se.element);
      scratch_->min_root_cost[i] = std::min(scratch_->min_root_cost[i], w);
      if (!distance_admissible(i, se.element, 0)) continue;
      const std::uint32_t idx = static_cast<std::uint32_t>(cursors.size());
      cursors.push_back(FlatCursor{se.element, -1, i, 0, w,
                                   FlatCursor::SigBit(se.element)});
      heap.Push(w, idx);
      ++stats_.cursors_created;
    }
    if (!any_in_scope) return {};
  }

  // Word-caching probe over the shared base mask: CSR incident runs are
  // ascending edge ids, so each pop's scan loads one mask word per 64-id
  // window instead of branching per edge (the scan persists across pops).
  graph::EdgeFilter::Cursor base_scope_bits =
      scope != nullptr ? graph::EdgeFilter::Cursor(scope->base())
                       : graph::EdgeFilter::Cursor();

  while (true) {
    // Alg. 1, line 8: cheapest cursor overall — the global heap top.
    if (heap.empty()) {
      stats_.exhausted = true;
      break;
    }
    const CursorHeap::Entry top = heap.Pop();
    const std::uint32_t cursor_idx = top.cursor;
    const FlatCursor cursor = cursors[cursor_idx];
    ++stats_.cursors_popped;
    if (options_.record_pop_trace) scratch_->pop_trace.push_back(cursor.cost);
    if (options_.max_cursor_pops > 0 &&
        stats_.cursors_popped > options_.max_cursor_pops) {
      stats_.budget_exceeded = true;
      stop_bound_ = StopBound(cursor.cost);
      break;
    }
    // Cooperative cancel/deadline poll, before the cursor is processed: on a
    // stop the popped cursor is the cheapest unprocessed work, so its cost
    // anchors the verified-prefix bound. Checked only every N-th pop — for a
    // pre-cancelled (or pre-expired) control the stop lands at exactly pop
    // N, independent of wall-clock, which the differential suite relies on.
    if (options_.control != nullptr && options_.control_poll_interval != 0 &&
        stats_.cursors_popped % options_.control_poll_interval == 0) {
      if (options_.control->cancel_requested()) {
        stats_.cancelled = true;
        stop_bound_ = StopBound(cursor.cost);
        break;
      }
      if (options_.control->Expired()) {
        stats_.deadline_expired = true;
        stop_bound_ = StopBound(cursor.cost);
        break;
      }
    }

    const summary::ElementId n = cursor.element;
    PathListTable::Slot& path_list =
        scratch_->paths.Acquire(PathKey(n, cursor.keyword));
    const bool record = !options_.prune_paths_per_element ||
                        path_list.count < options_.k;
    if (record) {
      scratch_->paths.AppendTo(path_list, cursor_idx);  // Alg. 1: addCursor
      ++stats_.paths_recorded;
      // Sharded runs only *emit* candidates at connecting elements this
      // shard owns; recording and expansion above are untouched, so the pop
      // stream (and hence the stop point) can only extend past the
      // unsharded run's, never diverge from it.
      if (options_.candidate_scope == nullptr ||
          options_.candidate_scope->OwnsConnector(*graph_, n)) {
        GenerateCandidates(n, cursor_idx);  // Alg. 2 body
      }

      // Alg. 1, lines 13-22: expand to all neighbors except the parent,
      // refusing cyclic paths. Incident CSR/overlay runs are iterated
      // directly — no per-expansion neighbor vector.
      if (cursor.distance < options_.dmax) {
        const summary::ElementId parent_element =
            cursor.parent >= 0
                ? cursors[static_cast<std::size_t>(cursor.parent)].element
                : summary::ElementId();
        auto try_expand = [&](summary::ElementId nb) {
          if (nb == parent_element) return;
          if (InAncestors(cursor_idx, nb)) return;
          if (!distance_admissible(cursor.keyword, nb, cursor.distance + 1)) {
            return;
          }
          const double w = cursor.cost + CachedElementCost(nb);
          const std::uint32_t child =
              static_cast<std::uint32_t>(cursors.size());
          cursors.push_back(FlatCursor{
              nb, static_cast<std::int32_t>(cursor_idx), cursor.keyword,
              cursor.distance + 1, w,
              cursor.ancestor_sig | FlatCursor::SigBit(nb)});
          heap.Push(w, child);
          ++stats_.cursors_created;
        };
        if (n.is_node()) {
          // Iterate the base CSR run and the overlay extension back-to-back
          // instead of through the chained iterator: its end-of-first check
          // branches on every ++, which is measurable at pop frequency.
          const graph::ChainedIds incident =
              graph_->IncidentEdges(n.index());
          if (scope == nullptr) {
            for (summary::EdgeId e : incident.first()) {
              try_expand(summary::ElementId::Edge(e));
            }
            for (summary::EdgeId e : incident.second()) {
              try_expand(summary::ElementId::Edge(e));
            }
          } else {
            for (summary::EdgeId e : incident.first()) {
              if (!base_scope_bits.Contains(e)) continue;
              try_expand(summary::ElementId::Edge(e));
            }
            for (summary::EdgeId e : incident.second()) {
              if (!scope->ContainsOverlay(e)) continue;
              try_expand(summary::ElementId::Edge(e));
            }
          }
        } else {
          const summary::SummaryEdge& e = graph_->edge(n.index());
          try_expand(summary::ElementId::Node(e.from));
          if (e.to != e.from) try_expand(summary::ElementId::Node(e.to));
        }
      }
    }

    // Alg. 2, lines 9-16: stop once the k-th candidate is provably minimal.
    if (KthCandidateCost() < RemainingLowerBound()) {
      stats_.early_terminated = true;
      break;
    }
  }

  // Completeness certificate: every matching subgraph of the graph whose
  // cost is strictly below this is already represented in the candidate
  // store (possibly deduplicated). A complete run certifies up to the
  // remaining-cost lower bound (= +inf when the heap drained); an early
  // stop certifies up to its verified stop bound.
  stats_.complete_below = std::min(stop_bound_, RemainingLowerBound());

  const auto& ranked = scratch_->candidates.ranked();
  std::size_t count = std::min(options_.k, ranked.size());
  // Early stop: keep only the verified prefix — candidates provably cheaper
  // than anything the interrupted run could still have produced. A complete
  // run leaves stop_bound_ at +inf, so nothing is dropped.
  while (count > 0 && ranked[count - 1].cost >= stop_bound_) --count;
  std::vector<MatchingSubgraph> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Copy, don't move: the caller owns the results (their allocation is
    // inherent to returning them), while the pool slots keep their vector
    // capacities so the next query re-materializes without allocating.
    results.push_back(scratch_->candidates.subgraph(ranked[i].slot));
  }
  return results;
}

}  // namespace grasp::core
