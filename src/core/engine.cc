#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include <optional>
#include <set>
#include <string_view>

#include "common/filter_op.h"
#include "common/timer.h"
#include "simd/kernels.h"
#include "rdf/term.h"
#include "snapshot/engine_snapshot.h"
#include "summary/augmented_graph.h"

namespace grasp::core {

KeywordSearchEngine::~KeywordSearchEngine() = default;

KeywordSearchEngine::Prebuilt KeywordSearchEngine::Preprocess(
    const rdf::TripleStore& store, const rdf::Dictionary& dictionary,
    const Options& options) {
  WallTimer timer;
  rdf::DataGraph graph = rdf::DataGraph::Build(store, dictionary);
  summary::SummaryGraph summary = summary::SummaryGraph::Build(graph);
  keyword::KeywordIndex index =
      keyword::KeywordIndex::Build(graph, options.analyzer);
  return Prebuilt{std::move(graph), std::move(summary), std::move(index),
                  timer.ElapsedMillis()};
}

KeywordSearchEngine::KeywordSearchEngine(const rdf::TripleStore& store,
                                         const rdf::Dictionary& dictionary,
                                         Options options)
    : KeywordSearchEngine(store, dictionary, options,
                          Preprocess(store, dictionary, options)) {}

KeywordSearchEngine::KeywordSearchEngine(const rdf::TripleStore& store,
                                         const rdf::Dictionary& dictionary,
                                         Options options, Prebuilt prebuilt)
    : store_(&store),
      dictionary_(&dictionary),
      options_(options),
      thesaurus_(text::Thesaurus::BuiltIn()),
      data_graph_(std::move(prebuilt.graph)),
      summary_(std::move(prebuilt.summary)),
      keyword_index_(std::move(prebuilt.index)),
      augmentation_cache_(
          options.augmentation_cache_bytes > 0
              ? std::make_unique<summary::AugmentationCache>(
                    options.augmentation_cache_bytes, kPoolCapacity / 2)
              : nullptr) {
  // Resolve the kernel dispatch eagerly: the tier choice (and any
  // GRASP_SIMD clamp warning) surfaces at construction, not mid-query.
  index_stats_.simd_kernel_level =
      simd::LevelName(simd::ActiveLevel());
  index_stats_.keyword_index_bytes = keyword_index_.MemoryUsageBytes();
  index_stats_.summary_graph_bytes = summary_.MemoryUsageBytes();
  index_stats_.summary_nodes = summary_.NumNodes();
  index_stats_.summary_edges = summary_.NumEdges();
  index_stats_.keyword_elements = keyword_index_.num_elements();
  index_stats_.build_millis = prebuilt.millis;
  // Pre-warm slot 0 so exploration_scratch() is valid before the first
  // query and serial searches land on a created slot immediately.
  scratch_pool_.Release(
      scratch_pool_.Acquire([] { return std::make_unique<ExplorationScratch>(); }));
  InitMetrics();
}

void KeywordSearchEngine::InitMetrics() {
  metrics::Registry* reg = options_.metrics;
  if (reg == nullptr) return;
  constexpr double kMicros = 1e-6;  // recorded in µs, exposed in seconds
  const char* stage_help =
      "Search pipeline stage latency (keyword lookup, summary "
      "augmentation, top-k exploration, query mapping/ranking)";
  metrics_.stage_keyword = reg->GetHistogram(
      "grasp_engine_stage_duration_seconds", stage_help,
      {{"stage", "keyword"}}, kMicros);
  metrics_.stage_augmentation = reg->GetHistogram(
      "grasp_engine_stage_duration_seconds", stage_help,
      {{"stage", "augmentation"}}, kMicros);
  metrics_.stage_exploration = reg->GetHistogram(
      "grasp_engine_stage_duration_seconds", stage_help,
      {{"stage", "exploration"}}, kMicros);
  metrics_.stage_mapping = reg->GetHistogram(
      "grasp_engine_stage_duration_seconds", stage_help,
      {{"stage", "mapping"}}, kMicros);
  metrics_.search_duration = reg->GetHistogram(
      "grasp_engine_search_duration_seconds",
      "End-to-end Search() latency, all stages included", {}, kMicros);
  metrics_.searches = reg->GetCounter("grasp_engine_searches_total",
                                      "Search() calls completed");
  metrics_.degraded = reg->GetCounter(
      "grasp_engine_degraded_total",
      "Searches that stopped early (deadline, budget, or cancellation) and "
      "returned a verified prefix");
  metrics_.cache_hits = reg->GetCounter(
      "grasp_engine_augmentation_cache_hits_total",
      "Searches that reused a cached augmented graph");
  metrics_.cache_misses = reg->GetCounter(
      "grasp_engine_augmentation_cache_misses_total",
      "Searches that built their augmented graph");
}

void KeywordSearchEngine::RecordSearchMetrics(const SearchResult& result) const {
  if (metrics_.searches == nullptr) return;
  metrics_.stage_keyword->RecordMicros(result.keyword_millis * 1e3);
  metrics_.stage_augmentation->RecordMicros(result.augmentation_millis * 1e3);
  metrics_.stage_exploration->RecordMicros(result.exploration_millis * 1e3);
  metrics_.stage_mapping->RecordMicros(result.mapping_millis * 1e3);
  metrics_.search_duration->RecordMicros(result.total_millis * 1e3);
  metrics_.searches->Increment();
  if (result.degraded) metrics_.degraded->Increment();
  (result.augmentation_cache_hit ? metrics_.cache_hits : metrics_.cache_misses)
      ->Increment();
}

Status KeywordSearchEngine::SaveIndex(
    const std::string& path, std::span<const std::uint32_t> shard_plan) const {
  snapshot::EngineParts parts;
  parts.dictionary = dictionary_;
  parts.store = store_;
  parts.data_graph = &data_graph_;
  parts.summary = &summary_;
  parts.keyword_index = &keyword_index_;
  parts.shard_plan = shard_plan;
  return snapshot::WriteEngineSnapshot(parts, path);
}

std::span<const std::uint32_t> KeywordSearchEngine::loaded_shard_plan() const {
  return loaded_ != nullptr ? loaded_->shard_plan
                            : std::span<const std::uint32_t>{};
}

Result<std::unique_ptr<KeywordSearchEngine>> KeywordSearchEngine::Open(
    const std::string& path, Options options) {
  // Transient I/O failures (a file momentarily unavailable, an interrupted
  // mmap) retry with exponential backoff; anything else — above all a
  // corrupt or truncated image — fails immediately, since re-reading the
  // same bytes cannot change the outcome.
  const int attempts = std::max(1, options.snapshot_open_attempts);
  Result<snapshot::LoadedEngineParts> loaded_result =
      snapshot::ReadEngineSnapshot(path);
  for (int attempt = 1;
       attempt < attempts && !loaded_result.ok() &&
       loaded_result.status().code() == StatusCode::kIoError;
       ++attempt) {
    const double backoff_ms =
        options.snapshot_open_backoff_millis *
        static_cast<double>(1 << (attempt - 1));
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::max(0.0, backoff_ms)));
    loaded_result = snapshot::ReadEngineSnapshot(path);
  }
  if (!loaded_result.ok()) return loaded_result.status();
  snapshot::LoadedEngineParts loaded = std::move(loaded_result).value();
  options.analyzer = loaded.analyzer_options;
  Prebuilt prebuilt{std::move(*loaded.data_graph), std::move(*loaded.summary),
                    std::move(*loaded.keyword_index), loaded.load_millis};
  // Heap-pin the loaded state first: the engine keeps raw pointers to the
  // store and dictionary and borrowed spans into the mapping, so their
  // addresses must survive the move into the engine.
  auto owned = std::make_unique<snapshot::LoadedEngineParts>(std::move(loaded));
  std::unique_ptr<KeywordSearchEngine> engine(new KeywordSearchEngine(
      *owned->store, *owned->dictionary, options, std::move(prebuilt)));
  engine->index_stats_.mapped_snapshot_bytes = owned->mapping.size();
  engine->loaded_ = std::move(owned);
  return engine;
}

KeywordSearchEngine::IndexStats KeywordSearchEngine::index_stats() const {
  // Race-free against in-flight Search() calls: the pools sum atomic byte
  // hints recorded at release time and the cache counts under its mutex —
  // no pooled object is ever inspected while another thread may mutate it.
  IndexStats stats = index_stats_;
  stats.scratch_pool_bytes = scratch_pool_.PooledBytes();
  stats.overlay_pool_bytes = overlay_pool_.PooledBytes();
  stats.scratch_pool_overflows = scratch_pool_.overflow_count();
  stats.overlay_pool_overflows = overlay_pool_.overflow_count();
  stats.augmentation_cache_bytes =
      augmentation_cache_ != nullptr ? augmentation_cache_->MemoryUsageBytes()
                                     : 0;
  {
    std::lock_guard<std::mutex> lock(scope_mutex_);
    for (const auto& [key, filter] : scope_cache_) {
      stats.scope_cache_bytes += key.capacity() + filter->MemoryUsageBytes();
    }
  }
  return stats;
}

std::shared_ptr<const KeywordSearchEngine::ScopeFilter>
KeywordSearchEngine::AcquireScopeFilter(
    std::span<const std::string> scope) const {
  // Canonical key: sorted, deduplicated scope strings, length-prefixed so
  // no concatenation of components can collide with a different set.
  // Views into the caller's strings, not copies — a repeated scope's
  // cache hit costs the key build plus one hash lookup, no per-string
  // allocations. Resolution depends only on the immutable
  // dictionary/summary, so equal keys always produce equal masks.
  std::vector<std::string_view> canonical(scope.begin(), scope.end());
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  std::string key;
  for (std::string_view s : canonical) {
    key += std::to_string(s.size());
    key += ':';
    key += s;
  }
  {
    std::lock_guard<std::mutex> lock(scope_mutex_);
    auto it = scope_cache_.find(key);
    if (it != scope_cache_.end()) return it->second;
  }

  // Miss: resolve outside the lock (a racing same-scope build produces an
  // identical filter; the loser's copy is simply dropped). Exact-IRI
  // lookups are O(1); all local-name fallbacks of the scope share one
  // dictionary sweep, paid once per cached scope.
  auto filter = std::make_shared<ScopeFilter>();
  std::set<std::string_view> unresolved;
  for (std::string_view s : canonical) {
    const rdf::TermId exact = dictionary_->Find(rdf::TermKind::kIri, s);
    if (exact != rdf::kInvalidTermId) {
      filter->terms.push_back(exact);
    } else {
      unresolved.insert(s);
    }
  }
  if (!unresolved.empty()) {
    for (rdf::TermId t = 0; t < dictionary_->size(); ++t) {
      if (dictionary_->kind(t) == rdf::TermKind::kIri &&
          unresolved.count(rdf::IriLocalName(dictionary_->text(t))) > 0) {
        filter->terms.push_back(t);
      }
    }
  }
  std::sort(filter->terms.begin(), filter->terms.end());
  filter->terms.erase(
      std::unique(filter->terms.begin(), filter->terms.end()),
      filter->terms.end());
  filter->summary_mask = summary_.PredicateScopeFilter(filter->terms);

  std::lock_guard<std::mutex> lock(scope_mutex_);
  if (scope_cache_.size() >= kScopeCacheCap) scope_cache_.clear();
  auto [it, inserted] = scope_cache_.emplace(std::move(key), std::move(filter));
  return it->second;
}

std::shared_ptr<const summary::AugmentedGraph>
KeywordSearchEngine::AcquireAugmentation(
    const std::vector<std::vector<keyword::KeywordMatch>>& matches,
    bool* cache_hit) const {
  auto build_pooled = [this,
                       &matches]() -> std::shared_ptr<const summary::AugmentedGraph> {
    // RAII over the lease until ownership transfers to the shared_ptr:
    // a throwing Rebuild (bad_alloc) must hand the slot back, not leak it
    // out of the 256-slot pool forever.
    struct LeaseGuard {
      FreeListPool<summary::AugmentedGraph>& pool;
      FreeListPool<summary::AugmentedGraph>::Lease lease;
      bool armed = true;
      ~LeaseGuard() {
        if (armed) pool.Release(lease);
      }
    };
    LeaseGuard guard{overlay_pool_, overlay_pool_.Acquire([this] {
                       return std::make_unique<summary::AugmentedGraph>(
                           summary::AugmentedGraph::MakeOverlayShell(summary_));
                     })};
    guard.lease.object->Rebuild(matches);
    // The deleter runs when the last user is done: the query itself on the
    // uncached path, or the final pin of an evicted cache entry. Either way
    // the shell (with all its warmed capacity) goes back to the pool. If
    // the shared_ptr constructor itself throws, it invokes the deleter —
    // hence the guard is disarmed first, so the slot is released exactly
    // once on every path.
    guard.armed = false;
    return std::shared_ptr<const summary::AugmentedGraph>(
        guard.lease.object,
        [this, slot = guard.lease.slot](const summary::AugmentedGraph* g) {
          overlay_pool_.Release(
              {const_cast<summary::AugmentedGraph*>(g), slot},
              g->OverlayMemoryUsageBytes());
        });
  };
  if (augmentation_cache_ == nullptr) {
    *cache_hit = false;
    return build_pooled();
  }
  return augmentation_cache_->GetOrBuild(
      summary::AugmentationCacheKey(matches), build_pooled, cache_hit);
}

KeywordSearchEngine::SearchResult KeywordSearchEngine::SearchImpl(
    const std::vector<std::string>& keywords, std::size_t k,
    const ExplorationOptions& exploration,
    std::span<const std::string> predicate_scope, bool shard_payload) const {
  SearchResult result;
  WallTimer total;

  // Step 1: keyword-to-element mapping (keyword index lookup). Lookups run
  // with headroom above max_matches_per_keyword; the final per-keyword
  // truncation then prefers elements that several of the query's keywords
  // hit. This keeps e.g. a long title matched by two keywords available to
  // both, so the exploration can merge them into one element — truncating
  // each keyword's list by score alone would drop the shared label in
  // favour of shorter single-keyword labels.
  WallTimer step;
  text::InvertedIndex::SearchOptions search_options = options_.keyword_search;
  search_options.thesaurus = options_.use_thesaurus ? &thesaurus_ : nullptr;
  // Unbounded during lookup; the coverage-aware truncation below applies
  // max_matches_per_keyword afterwards.
  search_options.max_results = 0;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  matches.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    // Operator keywords (">2000", "<=1995", ...) resolve through the
    // filter extension instead of the inverted index (Sec. IX).
    if (const auto filter = ParseFilterKeyword(kw)) {
      auto match = keyword_index_.LookupFilter(*filter);
      matches.push_back(match.has_value()
                            ? std::vector<keyword::KeywordMatch>{*match}
                            : std::vector<keyword::KeywordMatch>{});
    } else {
      matches.push_back(keyword_index_.Lookup(kw, search_options));
    }
  }
  if (keywords.size() > 1) {
    std::map<std::pair<int, rdf::TermId>, int> keyword_hits;
    for (const auto& list : matches) {
      for (const keyword::KeywordMatch& m : list) {
        ++keyword_hits[{static_cast<int>(m.kind), m.term}];
      }
    }
    // Query-coverage boost (the TF/IDF adoption Sec. V suggests for
    // multi-term labels): an element hit by h of the query's keywords gets
    // each of those match scores scaled by sqrt(h), so a title covering two
    // keywords outranks two separate titles covering one keyword each.
    for (auto& list : matches) {
      for (keyword::KeywordMatch& m : list) {
        const int hits = keyword_hits[{static_cast<int>(m.kind), m.term}];
        if (hits > 1) {
          m.score = std::min(
              1.0, m.score * std::sqrt(static_cast<double>(hits)));
        }
      }
      std::stable_sort(list.begin(), list.end(),
                       [&keyword_hits](const keyword::KeywordMatch& a,
                                       const keyword::KeywordMatch& b) {
                         const int ha =
                             keyword_hits[{static_cast<int>(a.kind), a.term}];
                         const int hb =
                             keyword_hits[{static_cast<int>(b.kind), b.term}];
                         if (ha != hb) return ha > hb;
                         return a.score > b.score;
                       });
    }
  }
  for (auto& list : matches) {
    if (list.size() > options_.max_matches_per_keyword) {
      list.resize(options_.max_matches_per_keyword);
    }
    result.matches_per_keyword.push_back(list.size());
  }
  result.keyword_millis = step.ElapsedMillis();

  // Step 2: augmentation of the graph index (Def. 5) — a cache hit for a
  // repeated keyword-element set, otherwise a build into a pooled overlay.
  step.Reset();
  const std::shared_ptr<const summary::AugmentedGraph> augmented_ptr =
      AcquireAugmentation(matches, &result.augmentation_cache_hit);
  const summary::AugmentedGraph& augmented = *augmented_ptr;

  // Predicate scope: the base summary mask comes from the per-scope cache
  // (the shared_ptr pins it for the exploration's lifetime); only the
  // O(augmentation) overlay bits are built per query. Scope does not enter
  // the augmentation-cache key: the augmented graph itself is
  // scope-independent — the scope restricts traversal, not construction —
  // so a cached augmentation serves scoped and unscoped queries alike.
  std::shared_ptr<const ScopeFilter> scope_filter;
  std::optional<graph::OverlayEdgeFilter> scoped_view;
  if (!predicate_scope.empty()) {
    scope_filter = AcquireScopeFilter(predicate_scope);
    scoped_view.emplace(augmented.ScopedFilter(&scope_filter->summary_mask,
                                               scope_filter->terms));
  }
  result.augmentation_millis = step.ElapsedMillis();

  // Step 3: top-k graph exploration (Alg. 1 + Alg. 2), with overfetch to
  // absorb query-level deduplication. Exploration state is checked out of
  // the lock-free scratch pool: concurrent Search() calls each run on their
  // own pooled scratch, and the steady state allocates nothing.
  step.Reset();
  ExplorationOptions explore = exploration;
  if (scoped_view.has_value()) explore.edge_filter = &*scoped_view;
  explore.k = std::max<std::size_t>(
      k, static_cast<std::size_t>(
             std::ceil(static_cast<double>(k) * options_.subgraph_overfetch)));
  result.explored_k = explore.k;
  struct ScratchLease {  // returns the scratch to the pool on every exit path
    FreeListPool<ExplorationScratch>& pool;
    FreeListPool<ExplorationScratch>::Lease lease;
    explicit ScratchLease(FreeListPool<ExplorationScratch>& pool)
        : pool(pool), lease(pool.Acquire([] {
            return std::make_unique<ExplorationScratch>();
          })) {}
    ~ScratchLease() { pool.Release(lease, lease.object->CapacityBytes()); }
  };
  std::vector<MatchingSubgraph> subgraphs;
  {
    // The lease spans only the exploration, so a long mapping step does not
    // keep the warm scratch away from concurrent queries.
    ScratchLease scratch(scratch_pool_);
    SubgraphExplorer explorer(augmented, explore, scratch.lease.object);
    subgraphs = explorer.FindTopK();
    result.exploration_stats = explorer.stats();
  }
  result.exploration_millis = step.ElapsedMillis();

  // Graceful degradation: a stopped exploration yields a verified prefix of
  // the full ranking, never a silent hole. Deadline and budget stops stay
  // OK — the partial result is a successful answer to a bounded question —
  // while a caller-cancelled query is marked as such. The flag also covers
  // the combination safety valve, whose clamped events may or may not have
  // altered the ranking (no prefix guarantee there; the status message says
  // which valve fired via exploration_stats).
  {
    const ExplorationStats& es = result.exploration_stats;
    result.degraded = es.cancelled || es.deadline_expired || es.budget_exceeded;
    if (es.cancelled) {
      result.status = Status::Cancelled(
          "query cancelled during exploration; results are the verified "
          "prefix computed before the stop");
    }
  }

  // Step 4: element-to-query mapping + isomorphism-level deduplication.
  step.Reset();
  QueryMappingContext context;
  context.type_term = data_graph_.type_term();
  // Tie-break keys (structural popularity cost, constant count, canonical
  // serialization) are computed once per kept candidate here — the final
  // sort used to recompute all three inside its comparator, paying
  // O(n log n) canonical-string rebuilds on tie-heavy rankings. They also
  // ride along in the shard payload so the gather merges on exactly the
  // keys the unsharded sort would have used.
  const CostFunction popularity(CostModel::kPopularity, augmented);
  auto structure_cost = [&popularity](const MatchingSubgraph& sg) {
    double cost = 0.0;
    for (summary::NodeId n : sg.nodes) {
      cost += popularity.ElementCost(summary::ElementId::Node(n));
    }
    for (summary::EdgeId e : sg.edges) {
      cost += popularity.ElementCost(summary::ElementId::Edge(e));
    }
    return cost;
  };
  // On remaining exact ties, prefer the less committed interpretation (the
  // one pinning fewer constants): name(x, ?v) should precede the otherwise
  // identically-priced name(x, 'some value') guesses.
  auto constant_count = [](const query::ConjunctiveQuery& q) {
    std::size_t constants = 0;
    for (const query::Atom& atom : q.atoms()) {
      if (!atom.subject.is_variable) ++constants;
      if (!atom.object.is_variable) ++constants;
    }
    return constants;
  };
  auto make_ranked = [&](query::ConjunctiveQuery q, std::string canonical,
                         MatchingSubgraph subgraph) {
    RankedQuery rq;
    rq.cost = subgraph.cost;
    rq.structure_cost = structure_cost(subgraph);
    rq.constant_count = constant_count(q);
    rq.canonical = std::move(canonical);
    rq.query = std::move(q);
    rq.subgraph = std::move(subgraph);
    return rq;
  };
  std::map<std::string, std::size_t> seen;  // canonical form -> queries index
  for (MatchingSubgraph& subgraph : subgraphs) {
    query::ConjunctiveQuery q = MapToQuery(augmented, subgraph, context);
    if (q.empty()) continue;
    std::string canonical = q.CanonicalString();
    if (shard_payload) {
      // Raw payload for the sharded gather: every mapped candidate, in
      // explorer ranked order; canonical dedup, final sort, and truncation
      // are replayed by the merge over all shards' payloads.
      result.queries.push_back(make_ranked(std::move(q), std::move(canonical),
                                           std::move(subgraph)));
      continue;
    }
    auto it = seen.find(canonical);
    if (it != seen.end()) {
      // Keep the cheaper representative.
      if (q.cost() < result.queries[it->second].cost) {
        result.queries[it->second] = make_ranked(
            std::move(q), std::move(canonical), std::move(subgraph));
      }
      continue;
    }
    seen.emplace(canonical, result.queries.size());
    result.queries.push_back(
        make_ranked(std::move(q), std::move(canonical), std::move(subgraph)));
  }
  // Primary order: subgraph cost. Path costs ignore structure elements that
  // no path visits (e.g. the class endpoint of a matched attribute edge), so
  // interpretations differing only in such elements tie; the popularity of
  // the whole structure breaks those ties in favour of the more common
  // classes. The tie-break chain is part of the engine and identical for
  // all cost models — the models differ only in the path costs themselves.
  if (!shard_payload) {
    std::sort(result.queries.begin(), result.queries.end(),
              [](const RankedQuery& a, const RankedQuery& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.structure_cost != b.structure_cost) {
                  return a.structure_cost < b.structure_cost;
                }
                if (a.constant_count != b.constant_count) {
                  return a.constant_count < b.constant_count;
                }
                return a.canonical < b.canonical;
              });
    if (result.queries.size() > k) result.queries.resize(k);
  }
  result.mapping_millis = step.ElapsedMillis();
  result.total_millis = total.ElapsedMillis();
  RecordSearchMetrics(result);
  return result;
}

std::vector<KeywordSearchEngine::SearchResult>
KeywordSearchEngine::SearchBatch(std::span<const KeywordQuery> queries,
                                 std::size_t num_threads) const {
  std::vector<SearchResult> results(queries.size());
  if (queries.empty()) return results;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, queries.size());

  auto run_one = [this, queries, &results](std::size_t i) {
    results[i] = Search(queries[i]);
  };
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < queries.size(); ++i) run_one(i);
    return results;
  }

  // Dynamic sharding over an atomic ticket: queries vary wildly in cost
  // (cache hits vs cold augmentations, early-terminating vs exhaustive
  // explorations), so static partitioning would straggle.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      // Drain fast once any query failed: the batch is going to rethrow
      // and drop all results, so serving the remainder is wasted work.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) return;
      try {
        run_one(i);
      } catch (...) {
        // An exception escaping a std::thread entry would std::terminate
        // the whole process; capture it and rethrow like the serial path.
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return results;
}

Result<query::EvalResult> KeywordSearchEngine::Answers(
    const query::ConjunctiveQuery& query, std::size_t limit) const {
  query::EvalOptions options;
  options.limit = limit;
  options.dictionary = dictionary_;  // FILTER conditions compare literal text
  return query::Evaluate(*store_, query, options);
}

}  // namespace grasp::core
