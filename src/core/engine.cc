#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/filter_op.h"
#include "common/timer.h"
#include "summary/augmented_graph.h"

namespace grasp::core {

KeywordSearchEngine::Prebuilt KeywordSearchEngine::Preprocess(
    const rdf::TripleStore& store, const rdf::Dictionary& dictionary,
    const Options& options) {
  WallTimer timer;
  rdf::DataGraph graph = rdf::DataGraph::Build(store, dictionary);
  summary::SummaryGraph summary = summary::SummaryGraph::Build(graph);
  keyword::KeywordIndex index =
      keyword::KeywordIndex::Build(graph, options.analyzer);
  return Prebuilt{std::move(graph), std::move(summary), std::move(index),
                  timer.ElapsedMillis()};
}

KeywordSearchEngine::KeywordSearchEngine(const rdf::TripleStore& store,
                                         const rdf::Dictionary& dictionary,
                                         Options options)
    : KeywordSearchEngine(store, dictionary, options,
                          Preprocess(store, dictionary, options)) {}

KeywordSearchEngine::KeywordSearchEngine(const rdf::TripleStore& store,
                                         const rdf::Dictionary& dictionary,
                                         Options options, Prebuilt prebuilt)
    : store_(&store),
      dictionary_(&dictionary),
      options_(options),
      thesaurus_(text::Thesaurus::BuiltIn()),
      data_graph_(std::move(prebuilt.graph)),
      summary_(std::move(prebuilt.summary)),
      keyword_index_(std::move(prebuilt.index)) {
  index_stats_.keyword_index_bytes = keyword_index_.MemoryUsageBytes();
  index_stats_.summary_graph_bytes = summary_.MemoryUsageBytes();
  index_stats_.summary_nodes = summary_.NumNodes();
  index_stats_.summary_edges = summary_.NumEdges();
  index_stats_.keyword_elements = keyword_index_.num_elements();
  index_stats_.build_millis = prebuilt.millis;
}

KeywordSearchEngine::SearchResult KeywordSearchEngine::Search(
    const std::vector<std::string>& keywords, std::size_t k,
    const ExplorationOptions& exploration) const {
  SearchResult result;
  WallTimer total;

  // Step 1: keyword-to-element mapping (keyword index lookup). Lookups run
  // with headroom above max_matches_per_keyword; the final per-keyword
  // truncation then prefers elements that several of the query's keywords
  // hit. This keeps e.g. a long title matched by two keywords available to
  // both, so the exploration can merge them into one element — truncating
  // each keyword's list by score alone would drop the shared label in
  // favour of shorter single-keyword labels.
  WallTimer step;
  text::InvertedIndex::SearchOptions search_options = options_.keyword_search;
  search_options.thesaurus = options_.use_thesaurus ? &thesaurus_ : nullptr;
  // Unbounded during lookup; the coverage-aware truncation below applies
  // max_matches_per_keyword afterwards.
  search_options.max_results = 0;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  matches.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    // Operator keywords (">2000", "<=1995", ...) resolve through the
    // filter extension instead of the inverted index (Sec. IX).
    if (const auto filter = ParseFilterKeyword(kw)) {
      auto match = keyword_index_.LookupFilter(*filter);
      matches.push_back(match.has_value()
                            ? std::vector<keyword::KeywordMatch>{*match}
                            : std::vector<keyword::KeywordMatch>{});
    } else {
      matches.push_back(keyword_index_.Lookup(kw, search_options));
    }
  }
  if (keywords.size() > 1) {
    std::map<std::pair<int, rdf::TermId>, int> keyword_hits;
    for (const auto& list : matches) {
      for (const keyword::KeywordMatch& m : list) {
        ++keyword_hits[{static_cast<int>(m.kind), m.term}];
      }
    }
    // Query-coverage boost (the TF/IDF adoption Sec. V suggests for
    // multi-term labels): an element hit by h of the query's keywords gets
    // each of those match scores scaled by sqrt(h), so a title covering two
    // keywords outranks two separate titles covering one keyword each.
    for (auto& list : matches) {
      for (keyword::KeywordMatch& m : list) {
        const int hits = keyword_hits[{static_cast<int>(m.kind), m.term}];
        if (hits > 1) {
          m.score = std::min(
              1.0, m.score * std::sqrt(static_cast<double>(hits)));
        }
      }
      std::stable_sort(list.begin(), list.end(),
                       [&keyword_hits](const keyword::KeywordMatch& a,
                                       const keyword::KeywordMatch& b) {
                         const int ha =
                             keyword_hits[{static_cast<int>(a.kind), a.term}];
                         const int hb =
                             keyword_hits[{static_cast<int>(b.kind), b.term}];
                         if (ha != hb) return ha > hb;
                         return a.score > b.score;
                       });
    }
  }
  for (auto& list : matches) {
    if (list.size() > options_.max_matches_per_keyword) {
      list.resize(options_.max_matches_per_keyword);
    }
    result.matches_per_keyword.push_back(list.size());
  }
  result.keyword_millis = step.ElapsedMillis();

  // Step 2: augmentation of the graph index (Def. 5).
  step.Reset();
  summary::AugmentedGraph augmented =
      summary::AugmentedGraph::Build(summary_, matches);
  result.augmentation_millis = step.ElapsedMillis();

  // Step 3: top-k graph exploration (Alg. 1 + Alg. 2), with overfetch to
  // absorb query-level deduplication. The engine's scratch is reused across
  // queries so the steady state allocates nothing; if another thread holds
  // it (Search is const and may run concurrently), fall back to a local one.
  step.Reset();
  ExplorationOptions explore = exploration;
  explore.k = std::max<std::size_t>(
      k, static_cast<std::size_t>(
             std::ceil(static_cast<double>(k) * options_.subgraph_overfetch)));
  struct ScratchLease {  // releases the flag on every exit path
    std::atomic_flag& busy;
    const bool acquired;
    explicit ScratchLease(std::atomic_flag& busy)
        : busy(busy), acquired(!busy.test_and_set(std::memory_order_acquire)) {}
    ~ScratchLease() {
      if (acquired) busy.clear(std::memory_order_release);
    }
  };
  std::vector<MatchingSubgraph> subgraphs;
  {
    // The lease spans only the exploration, so a concurrent Search in the
    // later mapping steps does not keep others off the pooled scratch.
    ScratchLease lease(exploration_scratch_busy_);
    ExplorationScratch local_scratch;
    SubgraphExplorer explorer(
        augmented, explore,
        lease.acquired ? &exploration_scratch_ : &local_scratch);
    subgraphs = explorer.FindTopK();
    result.exploration_stats = explorer.stats();
  }
  result.exploration_millis = step.ElapsedMillis();

  // Step 4: element-to-query mapping + isomorphism-level deduplication.
  step.Reset();
  QueryMappingContext context;
  context.type_term = data_graph_.type_term();
  std::map<std::string, std::size_t> seen;  // canonical form -> queries index
  for (MatchingSubgraph& subgraph : subgraphs) {
    query::ConjunctiveQuery q = MapToQuery(augmented, subgraph, context);
    if (q.empty()) continue;
    const std::string canonical = q.CanonicalString();
    auto it = seen.find(canonical);
    if (it != seen.end()) {
      // Keep the cheaper representative.
      if (q.cost() < result.queries[it->second].cost) {
        result.queries[it->second] =
            RankedQuery{std::move(q), subgraph.cost, std::move(subgraph)};
      }
      continue;
    }
    seen.emplace(canonical, result.queries.size());
    result.queries.push_back(
        RankedQuery{std::move(q), subgraph.cost, std::move(subgraph)});
  }
  // Primary order: subgraph cost. Path costs ignore structure elements that
  // no path visits (e.g. the class endpoint of a matched attribute edge), so
  // interpretations differing only in such elements tie; the popularity of
  // the whole structure breaks those ties in favour of the more common
  // classes. The tie-break chain is part of the engine and identical for
  // all cost models — the models differ only in the path costs themselves.
  const CostFunction popularity(CostModel::kPopularity, augmented);
  auto structure_cost = [&popularity](const MatchingSubgraph& sg) {
    double cost = 0.0;
    for (summary::NodeId n : sg.nodes) {
      cost += popularity.ElementCost(summary::ElementId::Node(n));
    }
    for (summary::EdgeId e : sg.edges) {
      cost += popularity.ElementCost(summary::ElementId::Edge(e));
    }
    return cost;
  };
  // On remaining exact ties, prefer the less committed interpretation (the
  // one pinning fewer constants): name(x, ?v) should precede the otherwise
  // identically-priced name(x, 'some value') guesses.
  auto constant_count = [](const query::ConjunctiveQuery& q) {
    int constants = 0;
    for (const query::Atom& atom : q.atoms()) {
      if (!atom.subject.is_variable) ++constants;
      if (!atom.object.is_variable) ++constants;
    }
    return constants;
  };
  std::sort(result.queries.begin(), result.queries.end(),
            [&](const RankedQuery& a, const RankedQuery& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              const double sa = structure_cost(a.subgraph);
              const double sb = structure_cost(b.subgraph);
              if (sa != sb) return sa < sb;
              const int ca = constant_count(a.query);
              const int cb = constant_count(b.query);
              if (ca != cb) return ca < cb;
              return a.query.CanonicalString() < b.query.CanonicalString();
            });
  if (result.queries.size() > k) result.queries.resize(k);
  result.mapping_millis = step.ElapsedMillis();
  result.total_millis = total.ElapsedMillis();
  return result;
}

Result<query::EvalResult> KeywordSearchEngine::Answers(
    const query::ConjunctiveQuery& query, std::size_t limit) const {
  query::EvalOptions options;
  options.limit = limit;
  options.dictionary = dictionary_;  // FILTER conditions compare literal text
  return query::Evaluate(*store_, query, options);
}

}  // namespace grasp::core
