#ifndef GRASP_CORE_EXPLORATION_SCRATCH_H_
#define GRASP_CORE_EXPLORATION_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/subgraph.h"
#include "summary/augmented_graph.h"

namespace grasp::core {

/// Flat containers backing SubgraphExplorer's hot loop. Everything here is
/// poolable: Reset() clears logical contents but keeps every allocation, so
/// an engine that runs many queries through one scratch reaches a steady
/// state with no per-query heap traffic (tracked by `grow_events`).

/// One exploration cursor (Alg. 1). Cursors live in a flat arena and refer
/// to their parent by index, so a path is a parent chain, never a vector.
struct FlatCursor {
  summary::ElementId element;
  std::int32_t parent = -1;  ///< arena index of the parent cursor, -1 = root
  std::uint32_t keyword = 0;
  std::uint32_t distance = 0;
  double cost = 0.0;
  /// Bloom signature of the elements on the root path (self included): one
  /// bit per element hash. A miss proves the element is NOT an ancestor, so
  /// the exact parent-chain walk runs only on (rare) signature hits.
  std::uint64_t ancestor_sig = 0;

  static std::uint64_t SigBit(summary::ElementId element) {
    return 1ull << ((element.raw() * 0x9e3779b97f4a7c15ULL) >> 58);
  }
};

/// Implicit d-ary (d=4) min-heap of (cost, cursor) over all keywords; the
/// keyword lives in the cursor record, so one global heap replaces the
/// per-keyword heaps plus the per-pop linear min-scan across them. 4-ary
/// trades slightly more comparisons per level for half the depth and much
/// better locality than binary — the classic layout for decrease-key-free
/// Dijkstra-style loops. Ties break on the cursor index, preserving the
/// deterministic pop order of the per-keyword formulation.
class CursorHeap {
 public:
  struct Entry {
    double cost;
    std::uint32_t cursor;
  };

  bool empty() const { return slots_.empty(); }
  std::size_t size() const { return slots_.size(); }
  void Clear() { slots_.clear(); }
  const Entry& Top() const { return slots_.front(); }

  void Push(double cost, std::uint32_t cursor) {
    slots_.push_back(Entry{cost, cursor});
    SiftUp(slots_.size() - 1);
  }

  Entry Pop() {
    Entry top = slots_.front();
    slots_.front() = slots_.back();
    slots_.pop_back();
    if (!slots_.empty()) SiftDown(0);
    return top;
  }

  std::size_t CapacityBytes() const {
    return slots_.capacity() * sizeof(Entry);
  }

 private:
  static constexpr std::size_t kArity = 4;

  static bool Less(const Entry& a, const Entry& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.cursor < b.cursor;
  }

  void SiftUp(std::size_t i) {
    Entry moved = slots_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!Less(moved, slots_[parent])) break;
      slots_[i] = slots_[parent];
      i = parent;
    }
    slots_[i] = moved;
  }

  void SiftDown(std::size_t i) {
    Entry moved = slots_[i];
    const std::size_t n = slots_.size();
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (Less(slots_[c], slots_[best])) best = c;
      }
      if (!Less(slots_[best], moved)) break;
      slots_[i] = slots_[best];
      i = best;
    }
    slots_[i] = moved;
  }

  std::vector<Entry> slots_;
};

/// Sparse replacement for the seed's dense `paths_at_` (a num_elements x
/// num_keywords vector-of-vectors, almost entirely empty): an open-addressing
/// table keyed by (dense element, keyword), each entry holding a small
/// inline-capacity cursor list that spills into a pooled chunk arena. Only
/// (element, keyword) pairs that actually record a path cost memory, and the
/// chunk pool is one flat vector reused across queries.
class PathListTable {
 public:
  static constexpr std::uint32_t kInlineCap = 4;
  static constexpr std::uint32_t kChunkCap = 6;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  void Reset() {
    if (used_ > 0) {
      for (Slot& s : slots_) s.key = kEmptyKey;
    }
    used_ = 0;
    chunks_.clear();
  }

  struct Slot {
    std::uint64_t key = kEmptyKey;
    std::uint32_t count = 0;
    std::uint32_t head = kNil;  ///< first overflow chunk (count > kInlineCap)
    std::uint32_t tail = kNil;
    std::uint32_t inline_items[kInlineCap];
  };

  /// Number of cursors recorded under `key` (0 when absent).
  std::uint32_t CountOf(std::uint64_t key) const {
    const Slot* s = Find(key);
    return s == nullptr ? 0 : s->count;
  }

  /// Finds or creates the list of `key`. The reference is valid until the
  /// next Acquire (which may rehash); pair with AppendTo so the hot path
  /// pays one probe per pop, not one per inspect-then-append.
  Slot& Acquire(std::uint64_t key) {
    if (slots_.empty() || (used_ + 1) * 4 >= slots_.size() * 3) Grow();
    return FindOrInsert(key);
  }

  void AppendTo(Slot& s, std::uint32_t cursor) {
    if (s.count < kInlineCap) {
      s.inline_items[s.count] = cursor;
    } else {
      if (s.count == kInlineCap) {
        s.head = s.tail = NewChunk();
      } else if (chunks_[s.tail].count == kChunkCap) {
        const std::uint32_t fresh = NewChunk();
        chunks_[s.tail].next = fresh;
        s.tail = fresh;
      }
      Chunk& t = chunks_[s.tail];
      t.items[t.count++] = cursor;
    }
    ++s.count;
  }

  /// Appends the list of `key` to `out`, oldest first (insertion order).
  void FlattenTo(std::uint64_t key, std::vector<std::uint32_t>* out) const {
    const Slot* s = Find(key);
    if (s == nullptr) return;
    const std::uint32_t inline_n = std::min(s->count, kInlineCap);
    for (std::uint32_t i = 0; i < inline_n; ++i) {
      out->push_back(s->inline_items[i]);
    }
    for (std::uint32_t c = s->count > kInlineCap ? s->head : kNil; c != kNil;
         c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      for (std::uint32_t i = 0; i < chunk.count; ++i) {
        out->push_back(chunk.items[i]);
      }
    }
  }

  std::size_t CapacityBytes() const {
    return slots_.capacity() * sizeof(Slot) + chunks_.capacity() * sizeof(Chunk);
  }

 private:
  struct Chunk {
    std::uint32_t items[kChunkCap];
    std::uint32_t count = 0;
    std::uint32_t next = kNil;
  };

  const Slot* Find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmptyKey) return nullptr;
    }
  }

  Slot& FindOrInsert(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) return s;
      if (s.key == kEmptyKey) {
        s.key = key;
        s.count = 0;
        s.head = s.tail = kNil;
        ++used_;
        return s;
      }
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 256 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = Mix64(s.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::uint32_t NewChunk() {
    chunks_.emplace_back();
    return static_cast<std::uint32_t>(chunks_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;
};

/// Candidate bookkeeping (Alg. 2's k-best list): subgraphs live in a slot
/// pool, a sorted POD ranking (cost, slot) provides O(1) k-th/worst cost and
/// bounded eviction, and an open-addressing table keyed by the 64-bit
/// canonical structure hash replaces the seed's string-keyed std::map. Like
/// the seed's map, table entries survive eviction from the ranking (with
/// `candidate` = kEvicted), so an evicted structure re-enters only with a
/// strictly cheaper decomposition.
class CandidateStore {
 public:
  static constexpr std::uint32_t kEvicted = 0xffffffffu;

  struct TableSlot {
    std::uint64_t key = 0;
    double best_cost = 0.0;
    std::uint32_t candidate = kEvicted;  ///< pool slot, kEvicted when absent
    bool used = false;
  };
  struct RankEntry {
    double cost;
    std::uint32_t slot;
  };

  void Reset() {
    if (used_ > 0) {
      for (TableSlot& s : table_) s.used = false;
    }
    used_ = 0;
    ranked_.clear();
    free_slots_.clear();
    for (std::size_t i = pool_.size(); i-- > 0;) {
      free_slots_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  /// Looks up the structure hash, inserting an unused entry when absent
  /// (*inserted reports which). The pointer is valid until the next call.
  TableSlot* FindOrInsert(std::uint64_t key, bool* inserted) {
    if (table_.empty() || (used_ + 1) * 4 >= table_.size() * 3) Grow();
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      TableSlot& s = table_[i];
      if (s.used && s.key == key) {
        *inserted = false;
        return &s;
      }
      if (!s.used) {
        s.key = key;
        s.candidate = kEvicted;
        s.used = true;
        ++used_;
        *inserted = true;
        return &s;
      }
    }
  }

  TableSlot* Find(std::uint64_t key) {
    if (table_.empty()) return nullptr;
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      TableSlot& s = table_[i];
      if (s.used && s.key == key) return &s;
      if (!s.used) return nullptr;
    }
  }

  /// Acquires a pool slot (reusing capacity of a previously freed subgraph).
  std::uint32_t AcquireSlot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    pool_.emplace_back();
    pool_hash_.resize(pool_.size());
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void ReleaseSlot(std::uint32_t slot) { free_slots_.push_back(slot); }

  /// Inserts (cost, slot) into the ranking after all equal costs — the same
  /// stable position std::upper_bound gave the seed's sorted vector, so
  /// tie-breaks are byte-identical. The ranking is small (4k + 16 entries)
  /// and POD, so the shifting insert beats a heap that would need an extra
  /// sequence number to preserve tie order.
  void Rank(double cost, std::uint32_t slot) {
    std::size_t i = ranked_.size();
    ranked_.emplace_back();
    while (i > 0 && cost < ranked_[i - 1].cost) {
      ranked_[i] = ranked_[i - 1];
      --i;
    }
    ranked_[i] = RankEntry{cost, slot};
  }

  /// Removes the ranking entry of `slot` (linear over <= 4k+16 PODs).
  void Unrank(std::uint32_t slot) {
    for (std::size_t i = 0; i < ranked_.size(); ++i) {
      if (ranked_[i].slot == slot) {
        ranked_.erase(ranked_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    GRASP_CHECK(false);  // every live candidate is ranked
  }

  std::vector<RankEntry>& ranked() { return ranked_; }
  const std::vector<RankEntry>& ranked() const { return ranked_; }
  MatchingSubgraph& subgraph(std::uint32_t slot) { return pool_[slot]; }
  std::uint64_t& hash_of(std::uint32_t slot) { return pool_hash_[slot]; }

  std::size_t CapacityBytes() const {
    std::size_t bytes = table_.capacity() * sizeof(TableSlot) +
                        ranked_.capacity() * sizeof(RankEntry) +
                        free_slots_.capacity() * sizeof(std::uint32_t) +
                        pool_.capacity() * sizeof(MatchingSubgraph) +
                        pool_hash_.capacity() * sizeof(std::uint64_t);
    // Inner vectors of pooled subgraphs count too: the steady-state
    // assertion must see re-materialization growth, not just shell growth.
    for (const MatchingSubgraph& sg : pool_) {
      bytes += sg.nodes.capacity() * sizeof(summary::NodeId) +
               sg.edges.capacity() * sizeof(summary::EdgeId) +
               sg.paths.capacity() * sizeof(std::vector<summary::ElementId>);
      for (const auto& path : sg.paths) {
        bytes += path.capacity() * sizeof(summary::ElementId);
      }
    }
    return bytes;
  }

 private:
  void Grow() {
    std::vector<TableSlot> old = std::move(table_);
    table_.assign(old.empty() ? 256 : old.size() * 2, TableSlot{});
    const std::size_t mask = table_.size() - 1;
    for (const TableSlot& s : old) {
      if (!s.used) continue;
      std::size_t i = Mix64(s.key) & mask;
      while (table_[i].used) i = (i + 1) & mask;
      table_[i] = s;
    }
  }

  std::vector<TableSlot> table_;
  std::size_t used_ = 0;
  std::vector<RankEntry> ranked_;
  /// Slot pool: subgraphs are materialized in place and keep their vector
  /// capacities when freed, so steady-state candidate churn is copy-only.
  std::vector<MatchingSubgraph> pool_;
  std::vector<std::uint64_t> pool_hash_;  ///< structure hash per pool slot
  std::vector<std::uint32_t> free_slots_;
};

/// All reusable exploration state, owned by the engine (one per
/// KeywordSearchEngine) and lent to each SubgraphExplorer run. Repeated
/// queries clear logical contents but keep allocations; `grow_events`
/// counts the queries that had to enlarge any pooled structure, so tests
/// can assert the steady state allocates nothing.
struct ExplorationScratch {
  std::vector<FlatCursor> cursors;
  CursorHeap heap;
  PathListTable paths;
  CandidateStore candidates;

  // Per-connecting-element event scratch (GenerateCandidates).
  std::vector<std::uint32_t> event_cursors;  ///< flattened per-keyword lists
  std::vector<std::uint32_t> event_offsets;  ///< per keyword into event_cursors
  std::vector<std::uint32_t> dims;    ///< keyword dimensions other than kw
  std::vector<std::uint32_t> dim_of;  ///< keyword -> position in dims
  struct Combo {
    double cost;
    std::uint32_t choice_begin;  ///< offset into choice_arena, dims-strided
  };
  std::vector<Combo> frontier;
  std::vector<std::uint32_t> choice_arena;
  AlignedVector<summary::NodeId> cand_nodes;  ///< 64-byte aligned: struct_hash input
  AlignedVector<summary::EdgeId> cand_edges;

  std::vector<double> pop_trace;  ///< recorded only when record_pop_trace
  std::vector<double> min_root_cost;

  /// Generation-stamped per-query element-cost cache, indexed by
  /// AugmentedGraph::DenseIndex. Element costs are query-constant, so each
  /// is computed once per query instead of once per cursor expansion (the
  /// C3 model's score lookup is a hash probe); the epoch bump makes the
  /// per-query clear free.
  std::vector<double> element_cost;
  std::vector<std::uint64_t> element_cost_epoch;
  std::uint64_t cost_epoch = 0;

  /// Number of FindTopK runs through this scratch, and how many of them had
  /// to grow a pooled allocation. In the steady state (same-shaped queries)
  /// only the first run grows.
  std::size_t queries_run = 0;
  std::size_t grow_events = 0;

  void Reset() {
    cursors.clear();
    heap.Clear();
    paths.Reset();
    candidates.Reset();
    event_cursors.clear();
    event_offsets.clear();
    dims.clear();
    dim_of.clear();
    frontier.clear();
    choice_arena.clear();
    cand_nodes.clear();
    cand_edges.clear();
    pop_trace.clear();
    min_root_cost.clear();
    ++cost_epoch;  // invalidates element_cost without touching it
  }

  /// Total bytes currently reserved by the pooled structures (capacities,
  /// not sizes). Stable across same-shaped queries once warmed up.
  std::size_t CapacityBytes() const {
    return cursors.capacity() * sizeof(FlatCursor) + heap.CapacityBytes() +
           paths.CapacityBytes() + candidates.CapacityBytes() +
           event_cursors.capacity() * sizeof(std::uint32_t) +
           event_offsets.capacity() * sizeof(std::uint32_t) +
           dims.capacity() * sizeof(std::uint32_t) +
           dim_of.capacity() * sizeof(std::uint32_t) +
           frontier.capacity() * sizeof(Combo) +
           choice_arena.capacity() * sizeof(std::uint32_t) +
           cand_nodes.capacity() * sizeof(summary::NodeId) +
           cand_edges.capacity() * sizeof(summary::EdgeId) +
           pop_trace.capacity() * sizeof(double) +
           min_root_cost.capacity() * sizeof(double) +
           element_cost.capacity() * sizeof(double) +
           element_cost_epoch.capacity() * sizeof(std::uint64_t);
  }
};

}  // namespace grasp::core

#endif  // GRASP_CORE_EXPLORATION_SCRATCH_H_
