#ifndef GRASP_CORE_EXPLORATION_REFERENCE_H_
#define GRASP_CORE_EXPLORATION_REFERENCE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/exploration.h"
#include "core/subgraph.h"
#include "summary/augmented_graph.h"
#include "summary/distance_index.h"

namespace grasp::core {

/// The straightforward pre-optimization top-k explorer: per-keyword binary
/// heaps with a linear min-scan across queues, a dense per-(element,
/// keyword) path matrix, string structure keys with a std::map dedup table,
/// and a sorted-vector candidate list. Behaviorally identical to
/// SubgraphExplorer (same pop order, tie-breaks, and results, byte for
/// byte); retained as the oracle for the randomized differential tests and
/// as the baseline the exploration microbenchmark compares against.
class ReferenceExplorer {
 public:
  ReferenceExplorer(const summary::AugmentedGraph& graph,
                    const ExplorationOptions& options);

  ReferenceExplorer(const ReferenceExplorer&) = delete;
  ReferenceExplorer& operator=(const ReferenceExplorer&) = delete;

  std::vector<MatchingSubgraph> FindTopK();

  const ExplorationStats& stats() const { return stats_; }
  const std::vector<double>& pop_cost_trace() const { return pop_cost_trace_; }

 private:
  struct Cursor {
    summary::ElementId element;
    std::int32_t parent = -1;
    std::uint32_t keyword = 0;
    std::uint32_t distance = 0;
    double cost = 0.0;
  };

  std::vector<std::uint32_t>& PathsAt(summary::ElementId element,
                                      std::uint32_t keyword);
  bool InAncestors(std::uint32_t cursor, summary::ElementId element) const;
  void CollectNeighbors(summary::ElementId element,
                        std::vector<summary::ElementId>* out) const;
  std::vector<summary::ElementId> ReconstructPath(std::uint32_t cursor) const;
  void GenerateCandidates(summary::ElementId n, std::uint32_t new_cursor);
  void InsertCandidate(MatchingSubgraph subgraph);
  std::size_t CandidateCap() const;
  double CandidatePruneCost() const;
  double RemainingLowerBound() const;
  double KthCandidateCost() const;
  /// Verified-prefix bound for early stops; same formula, same semantics as
  /// SubgraphExplorer::StopBound — the differential suite pins both.
  double StopBound(double pending_cost) const;

  const summary::AugmentedGraph* graph_;
  ExplorationOptions options_;
  CostFunction cost_fn_;
  ExplorationStats stats_;
  double stop_bound_ = std::numeric_limits<double>::infinity();

  std::vector<Cursor> cursors_;
  std::vector<std::vector<std::pair<double, std::uint32_t>>> queues_;
  std::vector<std::vector<std::uint32_t>> paths_at_;
  std::size_t num_keywords_ = 0;

  std::vector<MatchingSubgraph> candidates_;
  std::vector<std::string> candidate_keys_;
  std::map<std::string, double> best_cost_by_key_;

  std::vector<double> min_root_cost_;
  std::unique_ptr<summary::KeywordDistanceIndex> distance_index_;
  std::vector<double> pop_cost_trace_;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_EXPLORATION_REFERENCE_H_
