#ifndef GRASP_CORE_ENGINE_H_
#define GRASP_CORE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "core/exploration.h"
#include "core/exploration_scratch.h"
#include "core/query_mapping.h"
#include "core/subgraph.h"
#include "keyword/keyword_index.h"
#include "query/conjunctive_query.h"
#include "query/evaluator.h"
#include "rdf/data_graph.h"
#include "rdf/triple_store.h"
#include "summary/summary_graph.h"
#include "text/thesaurus.h"

namespace grasp::core {

/// End-to-end facade implementing the pipeline of Fig. 2: off-line
/// preprocessing (data graph, keyword index, summary graph) at construction,
/// then per query: keyword-to-element mapping, summary-graph augmentation,
/// top-k exploration, and element-to-query mapping.
class KeywordSearchEngine {
 public:
  struct Options {
    /// Lexical analysis configuration shared by indexing and querying.
    text::AnalyzerOptions analyzer;
    /// Keyword-to-element matching configuration. The thesaurus pointer is
    /// managed by the engine (see use_thesaurus).
    text::InvertedIndex::SearchOptions keyword_search;
    /// Exploration / top-k parameters.
    ExplorationOptions exploration;
    /// Keep only the best-scoring graph elements per keyword; bounds the
    /// number of root cursors (and the augmentation size).
    std::size_t max_matches_per_keyword = 16;
    /// Enables the built-in thesaurus for semantic matching.
    bool use_thesaurus = true;
    /// Explore k * overfetch subgraphs so that query-level deduplication
    /// (distinct subgraphs can map to isomorphic queries) still leaves k
    /// queries.
    double subgraph_overfetch = 2.0;
  };

  /// One computed interpretation: a conjunctive query with its subgraph.
  struct RankedQuery {
    query::ConjunctiveQuery query;
    double cost = 0.0;
    MatchingSubgraph subgraph;
  };

  /// Search output plus step timings (the quantities Figs. 5/6a measure).
  struct SearchResult {
    std::vector<RankedQuery> queries;
    ExplorationStats exploration_stats;
    std::vector<std::size_t> matches_per_keyword;
    double keyword_millis = 0.0;
    double augmentation_millis = 0.0;
    double exploration_millis = 0.0;
    double mapping_millis = 0.0;
    double total_millis = 0.0;
  };

  /// Index footprints and preprocessing time (Fig. 6b).
  struct IndexStats {
    std::size_t keyword_index_bytes = 0;
    std::size_t summary_graph_bytes = 0;
    std::size_t summary_nodes = 0;
    std::size_t summary_edges = 0;
    std::size_t keyword_elements = 0;
    double build_millis = 0.0;
  };

  /// Preprocesses `store` (must be finalized and must outlive the engine).
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary, Options options);
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary)
      : KeywordSearchEngine(store, dictionary, Options()) {}

  KeywordSearchEngine(const KeywordSearchEngine&) = delete;
  KeywordSearchEngine& operator=(const KeywordSearchEngine&) = delete;

  /// Computes the top-k conjunctive queries for a keyword query. `k`
  /// overrides options.exploration.k. Queries are sorted by ascending cost
  /// and deduplicated up to isomorphism.
  SearchResult Search(const std::vector<std::string>& keywords,
                      std::size_t k) const {
    return Search(keywords, k, options_.exploration);
  }
  SearchResult Search(const std::vector<std::string>& keywords) const {
    return Search(keywords, options_.exploration.k);
  }
  /// Full-control variant: per-call exploration parameters (cost model,
  /// dmax, pruning, ...) without rebuilding the engine's indexes. Used by
  /// the benchmark harness to sweep configurations.
  SearchResult Search(const std::vector<std::string>& keywords, std::size_t k,
                      const ExplorationOptions& exploration) const;

  /// Evaluates a computed query against the store ("query processing" in
  /// Fig. 5): the step delegated to the underlying database engine.
  Result<query::EvalResult> Answers(const query::ConjunctiveQuery& query,
                                    std::size_t limit = 0) const;

  const rdf::DataGraph& data_graph() const { return data_graph_; }
  const summary::SummaryGraph& summary_graph() const { return summary_; }
  const keyword::KeywordIndex& keyword_index() const { return keyword_index_; }
  const rdf::Dictionary& dictionary() const { return *dictionary_; }
  const Options& options() const { return options_; }
  const IndexStats& index_stats() const { return index_stats_; }

  /// The reusable exploration state: repeated Search() calls clear it
  /// instead of reallocating (scratch.grow_events stops advancing once the
  /// engine has seen the query shape). Concurrent Search() calls stay safe
  /// among themselves — a call that finds the scratch busy runs on a
  /// private one — but this accessor is unsynchronized: only read it when
  /// no Search() is in flight (tests and single-threaded stats reporting).
  const ExplorationScratch& exploration_scratch() const {
    return exploration_scratch_;
  }

 private:
  /// Result of the timed off-line preprocessing pass.
  struct Prebuilt {
    rdf::DataGraph graph;
    summary::SummaryGraph summary;
    keyword::KeywordIndex index;
    double millis;
  };
  static Prebuilt Preprocess(const rdf::TripleStore& store,
                             const rdf::Dictionary& dictionary,
                             const Options& options);
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary, Options options,
                      Prebuilt prebuilt);

  const rdf::TripleStore* store_;
  const rdf::Dictionary* dictionary_;
  Options options_;
  text::Thesaurus thesaurus_;
  rdf::DataGraph data_graph_;
  summary::SummaryGraph summary_;
  keyword::KeywordIndex keyword_index_;
  IndexStats index_stats_;
  mutable ExplorationScratch exploration_scratch_;
  mutable std::atomic_flag exploration_scratch_busy_ = ATOMIC_FLAG_INIT;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_ENGINE_H_
