#ifndef GRASP_CORE_ENGINE_H_
#define GRASP_CORE_ENGINE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/free_list_pool.h"
#include "common/metrics.h"
#include "core/exploration.h"
#include "graph/edge_filter.h"
#include "core/exploration_scratch.h"
#include "core/query_mapping.h"
#include "core/subgraph.h"
#include "keyword/keyword_index.h"
#include "query/conjunctive_query.h"
#include "query/evaluator.h"
#include "rdf/data_graph.h"
#include "rdf/triple_store.h"
#include "summary/augmentation_cache.h"
#include "summary/summary_graph.h"
#include "text/thesaurus.h"

namespace grasp::snapshot {
struct LoadedEngineParts;
}  // namespace grasp::snapshot

namespace grasp::core {

/// End-to-end facade implementing the pipeline of Fig. 2: off-line
/// preprocessing (data graph, keyword index, summary graph) at construction,
/// then per query: keyword-to-element mapping, summary-graph augmentation,
/// top-k exploration, and element-to-query mapping.
///
/// Search() is safe to call from any number of threads concurrently: the
/// per-query mutable state (exploration scratch, augmentation overlays)
/// comes from lock-free free-list pools over the shared immutable indexes,
/// and repeated keyword-element sets share one cached augmentation.
/// SearchBatch() shards a whole workload across a worker pool.
class KeywordSearchEngine {
 public:
  struct Options {
    /// Lexical analysis configuration shared by indexing and querying.
    text::AnalyzerOptions analyzer;
    /// Keyword-to-element matching configuration. The thesaurus pointer is
    /// managed by the engine (see use_thesaurus).
    text::InvertedIndex::SearchOptions keyword_search;
    /// Exploration / top-k parameters.
    ExplorationOptions exploration;
    /// Keep only the best-scoring graph elements per keyword; bounds the
    /// number of root cursors (and the augmentation size).
    std::size_t max_matches_per_keyword = 16;
    /// Enables the built-in thesaurus for semantic matching.
    bool use_thesaurus = true;
    /// Explore k * overfetch subgraphs so that query-level deduplication
    /// (distinct subgraphs can map to isomorphic queries) still leaves k
    /// queries.
    double subgraph_overfetch = 2.0;
    /// Byte budget of the augmentation cache (LRU over canonical matched
    /// keyword-element sets). Queries repeating a keyword set skip
    /// augmentation entirely on a hit; 0 disables caching, in which case
    /// every query rebuilds into a pooled overlay. Hits and misses return
    /// element-for-element identical graphs, so results never depend on
    /// this setting.
    std::size_t augmentation_cache_bytes = 8u << 20;
    /// Open() retries transient snapshot failures (kIoError — a file
    /// temporarily unavailable, an interrupted mmap) this many times in
    /// total, with exponential backoff between attempts. Corrupt images
    /// (parse/validation failures) never retry: re-reading the same bytes
    /// cannot fix them.
    int snapshot_open_attempts = 3;
    /// Backoff before the first retry; doubles per subsequent attempt.
    double snapshot_open_backoff_millis = 1.0;
    /// Optional metrics registry (not owned; must outlive the engine).
    /// When set, every Search() records its per-stage timing breakdown
    /// into `grasp_engine_*` histograms/counters. nullptr = no-op: the
    /// query path pays nothing beyond one branch.
    metrics::Registry* metrics = nullptr;
  };

  /// One computed interpretation: a conjunctive query with its subgraph.
  struct RankedQuery {
    query::ConjunctiveQuery query;
    double cost = 0.0;
    MatchingSubgraph subgraph;
    /// Final-ranking tie-break keys, precomputed once at mapping time (the
    /// sort comparator used to recompute all three per comparison):
    /// canonical query serialization, structural (constant-free) cost, and
    /// the number of constant terms. The sharded gather merges on exactly
    /// these keys, so merged order is the unsharded order by construction.
    std::string canonical;
    double structure_cost = 0.0;
    std::size_t constant_count = 0;
  };

  /// Search output plus step timings (the quantities Figs. 5/6a measure).
  struct SearchResult {
    std::vector<RankedQuery> queries;
    /// OK for complete and deadline/budget-degraded runs alike (partial
    /// results are a successful, verified prefix — see `degraded`);
    /// kCancelled when the query's control was cancelled mid-run. The
    /// serving layer layers queue-level codes (kOverloaded,
    /// kDeadlineExceeded for queries that never ran) on top of this.
    Status status;
    /// True when exploration stopped before its natural end — deadline,
    /// cancellation, or a safety-valve budget — so `queries` is a verified
    /// prefix of the full ranking (every entry is exactly what the
    /// unbounded run would have returned in that position), possibly
    /// shorter than k and possibly empty. Never silently dropped:
    /// SearchBatch propagates it per entry.
    bool degraded = false;
    ExplorationStats exploration_stats;
    /// The exploration's effective k — max(k, k * subgraph_overfetch) — the
    /// number of ranked structures the explorer was asked for. The sharded
    /// gather truncates the merged candidate list at this depth before
    /// applying the completeness cut, mirroring the unsharded pipeline.
    std::size_t explored_k = 0;
    std::vector<std::size_t> matches_per_keyword;
    bool augmentation_cache_hit = false;
    double keyword_millis = 0.0;
    double augmentation_millis = 0.0;
    double exploration_millis = 0.0;
    double mapping_millis = 0.0;
    double total_millis = 0.0;
  };

  /// One entry of a SearchBatch workload.
  struct KeywordQuery {
    std::vector<std::string> keywords;
    /// 0 falls back to the engine's options.exploration.k.
    std::size_t k = 0;
    /// Optional predicate scope: interpretations may only traverse edges
    /// whose predicate resolves from these strings (exact IRI first, then
    /// IRI local name), plus subclass edges (schema structure). Empty =
    /// unscoped. The resolved scope mask is cached across queries, so a
    /// repeated scope costs one hash lookup.
    std::vector<std::string> predicate_scope;
    /// Optional cooperative control (deadline + cancel) polled by the
    /// exploration; must outlive the query. Shared by serving: the
    /// admission layer sets the deadline, the caller may cancel. nullptr =
    /// uncontrolled.
    const serve::QueryControl* control = nullptr;
    /// Sharding: restricts candidate generation to owned connecting
    /// elements (see CandidateScope). Must outlive the query. nullptr =
    /// own everything.
    const CandidateScope* candidate_scope = nullptr;
    /// Sharding: return the raw per-candidate payload for the gatherer —
    /// every mapped candidate in explorer ranked order, without the final
    /// canonical dedup, final sort, or truncation to k. Only the sharded
    /// engine sets this; its gather replays those pipeline steps on the
    /// merged list.
    bool shard_payload = false;
  };

  /// Index footprints and preprocessing time (Fig. 6b). The serving-state
  /// fields (pools, cache) track memory the engine accretes while running;
  /// index_stats() refreshes them on access.
  struct IndexStats {
    std::size_t keyword_index_bytes = 0;
    std::size_t summary_graph_bytes = 0;
    std::size_t summary_nodes = 0;
    std::size_t summary_edges = 0;
    std::size_t keyword_elements = 0;
    double build_millis = 0.0;
    /// ExplorationScratch capacity parked in the pool (as recorded at each
    /// scratch's last release; scratches held by in-flight queries count
    /// zero until released).
    std::size_t scratch_pool_bytes = 0;
    /// Augmentation-overlay shells parked in the pool. Shells checked out
    /// or resident in the augmentation cache count zero here until
    /// released; their marginal query content shows up in
    /// augmentation_cache_bytes meanwhile, so the fields sum without
    /// double-counting.
    std::size_t overlay_pool_bytes = 0;
    /// Bytes charged to the augmentation cache (resident entries' query
    /// content + keys + LRU/index overhead).
    std::size_t augmentation_cache_bytes = 0;
    /// Resolved predicate-scope masks cached for reuse (summary-edge mask
    /// words + resolved term lists + keys).
    std::size_t scope_cache_bytes = 0;
    /// Size of the mmap-ed snapshot a warm-started engine serves from
    /// (0 for cold-built engines). Kept separate from the owned-heap
    /// counters above: mapped pages are file-backed and evictable, so
    /// folding them into the index byte counts would overstate resident
    /// memory. In warm mode the flat arrays live here and the owned
    /// counters shrink to the rebuilt hash maps and string tables.
    std::size_t mapped_snapshot_bytes = 0;
    /// Name of the SIMD kernel tier the engine dispatches its hot loops to
    /// ("scalar", "sse42", "avx2"), resolved at construction from the CPU
    /// and the GRASP_SIMD override.
    const char* simd_kernel_level = "";
    /// Acquire() calls the per-query pools served by a transient heap
    /// allocation because every pooled slot was live and checked out.
    /// Monotonic since construction; a steadily climbing figure means
    /// concurrency has outgrown kPoolCapacity and each overflow pays an
    /// allocation instead of reuse — the serving layer's early-warning
    /// overload signal.
    std::uint64_t scratch_pool_overflows = 0;
    std::uint64_t overlay_pool_overflows = 0;
  };

  /// Preprocesses `store` (must be finalized and must outlive the engine).
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary, Options options);
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary)
      : KeywordSearchEngine(store, dictionary, Options()) {}

  KeywordSearchEngine(const KeywordSearchEngine&) = delete;
  KeywordSearchEngine& operator=(const KeywordSearchEngine&) = delete;
  ~KeywordSearchEngine();  // out-of-line: snapshot state is incomplete here

  /// Serializes the engine's full immutable index state (dictionary, triple
  /// table, data graph, summary graph, keyword index) into one mmap-able
  /// snapshot image at `path`. A later Open() serves its first query
  /// without re-parsing or rebuilding anything.
  Status SaveIndex(const std::string& path) const {
    return SaveIndex(path, {});
  }

  /// As above, additionally persisting a serialized shard plan (see
  /// shard::ShardPlan::Serialize — [num_shards, per-vertex block ids...])
  /// as an optional snapshot section. Readers without sharding ignore it;
  /// ShardedEngine::Open requires it. Empty span = no plan section.
  Status SaveIndex(const std::string& path,
                   std::span<const std::uint32_t> shard_plan) const;

  /// Warm start: maps a SaveIndex() image and constructs an engine whose
  /// flat index arrays point zero-copy into the mapping. The returned
  /// engine owns the mapping and the loaded dictionary/store; its results
  /// are byte-identical to a cold-built engine over the same data. The
  /// analyzer options baked into the snapshot override `options.analyzer`
  /// (querying with different lexical rules than the index was built with
  /// would mis-tokenize keywords). Corrupt or truncated images are
  /// rejected with a Status, never partial state.
  static Result<std::unique_ptr<KeywordSearchEngine>> Open(
      const std::string& path, Options options);
  static Result<std::unique_ptr<KeywordSearchEngine>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  /// Computes the top-k conjunctive queries for a keyword query. `k`
  /// overrides options.exploration.k. Queries are sorted by ascending cost
  /// and deduplicated up to isomorphism. Thread-safe.
  SearchResult Search(const std::vector<std::string>& keywords,
                      std::size_t k) const {
    return Search(keywords, k, options_.exploration);
  }
  SearchResult Search(const std::vector<std::string>& keywords) const {
    return Search(keywords, options_.exploration.k);
  }
  /// Full-control variant: per-call exploration parameters (cost model,
  /// dmax, pruning, ...) without rebuilding the engine's indexes. Used by
  /// the benchmark harness to sweep configurations. A non-empty
  /// `predicate_scope` restricts the exploration to a filtered view of the
  /// (augmented) summary — see KeywordQuery::predicate_scope.
  SearchResult Search(const std::vector<std::string>& keywords, std::size_t k,
                      const ExplorationOptions& exploration,
                      std::span<const std::string> predicate_scope = {}) const {
    return SearchImpl(keywords, k, exploration, predicate_scope,
                      /*shard_payload=*/false);
  }

  /// Sharding building block: the full-control Search, but returning the
  /// raw per-candidate payload — every mapped candidate in explorer ranked
  /// order with precomputed tie-break keys, no final dedup/sort/truncation
  /// (see KeywordQuery::shard_payload). The shard's candidate scope rides
  /// in `exploration.candidate_scope`. ShardedEngine's gather replays the
  /// skipped pipeline steps on the merged lists.
  SearchResult SearchShardPayload(
      const std::vector<std::string>& keywords, std::size_t k,
      const ExplorationOptions& exploration,
      std::span<const std::string> predicate_scope = {}) const {
    return SearchImpl(keywords, k, exploration, predicate_scope,
                      /*shard_payload=*/true);
  }

  /// Scope-aware entry point: runs `query` with its predicate scope (and
  /// its per-query k). SearchBatch serves every workload entry through
  /// this, so scoped and unscoped queries mix freely in one batch. The
  /// shard fields (candidate_scope, shard_payload) pass through — this is
  /// the entry point ShardedEngine scatters on.
  SearchResult Search(const KeywordQuery& query) const {
    const std::size_t k = query.k > 0 ? query.k : options_.exploration.k;
    ExplorationOptions exploration = options_.exploration;
    exploration.control = query.control;
    exploration.candidate_scope = query.candidate_scope;
    return SearchImpl(query.keywords, k, exploration, query.predicate_scope,
                      query.shard_payload);
  }

  /// Serves `queries` on `num_threads` workers (0 = hardware concurrency)
  /// sharding independent queries over the shared immutable summary;
  /// results[i] corresponds to queries[i] and is byte-identical to a serial
  /// Search(queries[i]). The per-thread state comes from the engine's
  /// scratch/overlay pools, so a steady-state batch allocates per result,
  /// not per query step.
  std::vector<SearchResult> SearchBatch(std::span<const KeywordQuery> queries,
                                        std::size_t num_threads = 0) const;

  /// Evaluates a computed query against the store ("query processing" in
  /// Fig. 5): the step delegated to the underlying database engine.
  Result<query::EvalResult> Answers(const query::ConjunctiveQuery& query,
                                    std::size_t limit = 0) const;

  const rdf::DataGraph& data_graph() const { return data_graph_; }
  /// The shard plan loaded from a warm-started snapshot (serialized form —
  /// see SaveIndex(path, shard_plan)); empty for cold-built engines and
  /// for snapshots written without a plan. Valid while the engine lives.
  std::span<const std::uint32_t> loaded_shard_plan() const;
  const summary::SummaryGraph& summary_graph() const { return summary_; }
  const keyword::KeywordIndex& keyword_index() const { return keyword_index_; }
  const rdf::Dictionary& dictionary() const { return *dictionary_; }
  const Options& options() const { return options_; }
  /// The construction-time index figures plus a snapshot of the
  /// serving-state byte counters (pools, cache). Safe to call from any
  /// thread while Search() calls are in flight (atomic release-time hints
  /// + the cache mutex); the serving figures lag work still checked out
  /// of the pools.
  IndexStats index_stats() const;

  /// The warmest pooled exploration scratch (slot 0 — the one serial
  /// Search() calls keep reusing, LIFO). Repeated queries clear it instead
  /// of reallocating: scratch.grow_events stops advancing once the engine
  /// has seen the query shape. Unsynchronized: only read it when no
  /// Search() is in flight (tests and single-threaded stats reporting).
  const ExplorationScratch& exploration_scratch() const {
    return *scratch_pool_.PeekSlot(0);
  }

  /// Augmentation-cache observability (hit/miss/eviction counters); zeros
  /// when the cache is disabled.
  summary::AugmentationCache::Stats augmentation_cache_stats() const {
    return augmentation_cache_ != nullptr ? augmentation_cache_->stats()
                                          : summary::AugmentationCache::Stats{};
  }

 private:
  /// Result of the timed off-line preprocessing pass.
  struct Prebuilt {
    rdf::DataGraph graph;
    summary::SummaryGraph summary;
    keyword::KeywordIndex index;
    double millis;
  };
  static Prebuilt Preprocess(const rdf::TripleStore& store,
                             const rdf::Dictionary& dictionary,
                             const Options& options);
  KeywordSearchEngine(const rdf::TripleStore& store,
                      const rdf::Dictionary& dictionary, Options options,
                      Prebuilt prebuilt);

  /// The whole search pipeline. `shard_payload` switches the mapping step
  /// into raw-candidate mode (no canonical dedup, no final sort, no
  /// truncation to k) for the sharded gather.
  SearchResult SearchImpl(const std::vector<std::string>& keywords,
                          std::size_t k, const ExplorationOptions& exploration,
                          std::span<const std::string> predicate_scope,
                          bool shard_payload) const;

  /// Registers the `grasp_engine_*` instruments when options_.metrics is
  /// set; called once at construction so Search() only loads cached
  /// pointers.
  void InitMetrics();
  /// Folds one finished search into the histograms/counters; no-op
  /// without a registry.
  void RecordSearchMetrics(const SearchResult& result) const;

  /// Cached instrument handles (stable for the registry's lifetime); all
  /// nullptr when no registry is configured.
  struct EngineMetrics {
    metrics::Histogram* stage_keyword = nullptr;
    metrics::Histogram* stage_augmentation = nullptr;
    metrics::Histogram* stage_exploration = nullptr;
    metrics::Histogram* stage_mapping = nullptr;
    metrics::Histogram* search_duration = nullptr;
    metrics::Counter* searches = nullptr;
    metrics::Counter* degraded = nullptr;
    metrics::Counter* cache_hits = nullptr;
    metrics::Counter* cache_misses = nullptr;
  };

  /// The augmented graph for `matches`: a cache hit when enabled and seen
  /// before, otherwise a build into a pooled overlay shell. The shared_ptr
  /// keeps the graph alive across concurrent users; its deleter returns the
  /// shell to the pool once the last user (query or cache entry) lets go.
  std::shared_ptr<const summary::AugmentedGraph> AcquireAugmentation(
      const std::vector<std::vector<keyword::KeywordMatch>>& matches,
      bool* cache_hit) const;

  /// A resolved predicate scope: the terms the scope strings name and the
  /// base mask over the summary's edges. Immutable once built; shared by
  /// every query repeating the scope (the shared_ptr also pins the base
  /// mask while a scoped exploration is in flight).
  struct ScopeFilter {
    std::vector<rdf::TermId> terms;  ///< sorted ascending, deduplicated
    graph::EdgeFilter summary_mask;
    std::size_t MemoryUsageBytes() const {
      return terms.capacity() * sizeof(rdf::TermId) +
             summary_mask.MemoryUsageBytes();
    }
  };

  /// Resolves `scope` (cached per canonical scope-string set). Scope
  /// strings resolve by exact IRI, falling back to a one-time dictionary
  /// scan for IRI local names; unresolvable strings contribute no terms,
  /// which scopes their predicate out entirely.
  std::shared_ptr<const ScopeFilter> AcquireScopeFilter(
      std::span<const std::string> scope) const;

  /// Warm-start state: the snapshot mapping plus the loaded dictionary and
  /// store the engine's borrowed spans point into. Null for cold-built
  /// engines. Declared first so it is destroyed last — every other member
  /// may hold views into the mapping.
  std::unique_ptr<snapshot::LoadedEngineParts> loaded_;
  const rdf::TripleStore* store_;
  const rdf::Dictionary* dictionary_;
  Options options_;
  text::Thesaurus thesaurus_;
  rdf::DataGraph data_graph_;
  summary::SummaryGraph summary_;
  keyword::KeywordIndex keyword_index_;
  IndexStats index_stats_;  ///< static fields only; set once at construction

  /// Capacity of the per-query object pools. The cache's residency bound
  /// is half of this (see the constructor): a resident cache entry pins
  /// its overlay shell's pool slot until eviction, and the bound keeps a
  /// byte budget worth thousands of tiny augmentations from exhausting the
  /// pool and degrading every miss to a transient allocation.
  static constexpr std::size_t kPoolCapacity = 256;

  /// Per-query reusable state, checked out lock-free per Search() call.
  /// Declaration order doubles as destruction order: the cache holds
  /// shared_ptrs whose deleters return overlays to overlay_pool_, so the
  /// pools must outlive (be declared before) the cache.
  EngineMetrics metrics_;
  mutable FreeListPool<ExplorationScratch> scratch_pool_{kPoolCapacity};
  mutable FreeListPool<summary::AugmentedGraph> overlay_pool_{kPoolCapacity};
  std::unique_ptr<summary::AugmentationCache> augmentation_cache_;

  /// Resolved scope masks, keyed by the canonical (sorted, deduplicated)
  /// scope-string set — the mask-per-scope cache that keeps repeated
  /// scoped queries from re-resolving predicates or re-sweeping the
  /// summary's edges. Real workloads use a handful of scopes; if churn
  /// ever exceeds kScopeCacheCap distinct scopes the cache resets
  /// wholesale (in-flight queries keep their entries via shared_ptr).
  static constexpr std::size_t kScopeCacheCap = 64;
  mutable std::mutex scope_mutex_;
  mutable std::unordered_map<std::string, std::shared_ptr<const ScopeFilter>>
      scope_cache_;
};

/// What the serving layer needs from whatever answers queries — one engine
/// or the sharded scatter-gather engine. Implementations must be
/// thread-safe; Search carries the same verified-prefix contract as
/// KeywordSearchEngine::Search (OK + degraded, kCancelled on cancel).
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;
  /// The exploration defaults the admission layer derives per-request
  /// options (k, pop budget, control) from.
  virtual const ExplorationOptions& default_exploration() const = 0;
  /// The registry the backend records into, for the serving layer's
  /// fallback registry resolution. May be nullptr.
  virtual metrics::Registry* metrics_registry() const = 0;
  virtual KeywordSearchEngine::SearchResult Search(
      const std::vector<std::string>& keywords, std::size_t k,
      const ExplorationOptions& exploration,
      std::span<const std::string> predicate_scope) const = 0;
};

/// SearchBackend over a single KeywordSearchEngine (the unsharded
/// deployment). The engine must outlive the backend.
class EngineBackend final : public SearchBackend {
 public:
  explicit EngineBackend(const KeywordSearchEngine& engine)
      : engine_(&engine) {}
  const ExplorationOptions& default_exploration() const override {
    return engine_->options().exploration;
  }
  metrics::Registry* metrics_registry() const override {
    return engine_->options().metrics;
  }
  KeywordSearchEngine::SearchResult Search(
      const std::vector<std::string>& keywords, std::size_t k,
      const ExplorationOptions& exploration,
      std::span<const std::string> predicate_scope) const override {
    return engine_->Search(keywords, k, exploration, predicate_scope);
  }

 private:
  const KeywordSearchEngine* engine_;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_ENGINE_H_
