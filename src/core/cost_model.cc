#include "core/cost_model.h"

#include <algorithm>

namespace grasp::core {

double CostFunction::PopularityCost(summary::ElementId element) const {
  double popularity = 0.0;
  if (element.is_node()) {
    const summary::SummaryNode& n = graph_->node(element.index());
    const double total =
        static_cast<double>(std::max<std::uint64_t>(1, graph_->total_entities()));
    popularity = static_cast<double>(n.agg_count) / total;
  } else {
    const summary::SummaryEdge& e = graph_->edge(element.index());
    const double total = static_cast<double>(
        std::max<std::uint64_t>(1, graph_->total_relation_edges()));
    popularity = static_cast<double>(e.agg_count) / total;
  }
  return std::max(kMinElementCost, 1.0 - std::min(1.0, popularity));
}

double CostFunction::ElementCost(summary::ElementId element) const {
  switch (model_) {
    case CostModel::kPathLength:
      return 1.0;
    case CostModel::kPopularity:
      return PopularityCost(element);
    case CostModel::kMatching: {
      // sm(n) is in (0, 1]; non-keyword elements have sm = 1, so C3
      // coincides with C2 on them and discounts well-matched keyword
      // elements relative to poorly-matched ones.
      const double sm = std::max(1e-6, graph_->MatchScore(element));
      return PopularityCost(element) / sm;
    }
  }
  return 1.0;
}

}  // namespace grasp::core
