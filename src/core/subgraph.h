#ifndef GRASP_CORE_SUBGRAPH_H_
#define GRASP_CORE_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "summary/augmented_graph.h"

namespace grasp::core {

/// 64-bit canonical hash of a structure given its sorted, deduplicated
/// element sets. The exploration hot path deduplicates candidates on this
/// hash instead of materializing per-candidate key strings; a collision
/// between distinct structures within one query is a ~n^2/2^64 event.
std::uint64_t StructureHashOf(std::span<const summary::NodeId> nodes,
                              std::span<const summary::EdgeId> edges);

/// A K-matching subgraph (Definition 6) of the augmented summary graph: the
/// merge of one path per keyword, all ending at a common connecting element.
/// The structure may be a general graph — keyword elements can be edges and
/// paths may close cycles.
struct MatchingSubgraph {
  /// Sorted, deduplicated node/edge sets of the merged paths.
  std::vector<summary::NodeId> nodes;
  std::vector<summary::EdgeId> edges;

  /// Aggregated cost C_G = sum of path costs. Elements shared by several
  /// paths are counted once per path (Sec. V: tighter connections win).
  double cost = 0.0;

  /// The element where the merged paths meet.
  summary::ElementId connecting_element;

  /// Per keyword, the path from its keyword element to the connecting
  /// element, as the visited element sequence (origin first).
  std::vector<std::vector<summary::ElementId>> paths;

  /// Discovery coordinate of the decomposition that achieved `cost`:
  /// (cursors_popped << 20) | combination-index at the generating event.
  /// Both explorers enumerate combinations identically, so the coordinate
  /// is a total order on generation events that is stable across runs —
  /// the sharded gather uses it to pick the same winning decomposition the
  /// unsharded run would keep when two shards discover one structure.
  std::uint64_t discovery = 0;

  /// Identity of the subgraph as a structure (independent of path
  /// decomposition and cost): the sorted element sets. Used by tests and
  /// differential harnesses; the hot path dedups on StructureHash().
  std::string StructureKey() const;

  /// StructureHashOf() over this subgraph's element sets.
  std::uint64_t StructureHash() const;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_SUBGRAPH_H_
