#include "core/query_mapping.h"

#include <set>
#include <unordered_map>

#include "common/filter_op.h"
#include "common/logging.h"

namespace grasp::core {

query::ConjunctiveQuery MapToQuery(const summary::AugmentedGraph& graph,
                                   const MatchingSubgraph& subgraph,
                                   const QueryMappingContext& context) {
  query::ConjunctiveQuery q;
  q.set_cost(subgraph.cost);

  std::unordered_map<summary::NodeId, query::VarId> var_of_node;
  auto var_of = [&](summary::NodeId n) {
    auto it = var_of_node.find(n);
    if (it != var_of_node.end()) return it->second;
    const query::VarId v = q.NewVariable();
    var_of_node.emplace(n, v);
    // Filter-operator extension: an artificial node introduced by an
    // operator keyword constrains its variable with a FILTER condition.
    if (const FilterSpec* filter = graph.FilterOf(n)) {
      q.AddFilter(query::FilterCondition{v, filter->op, filter->value});
    }
    return v;
  };
  auto emit_type = [&](summary::NodeId n) {
    const summary::SummaryNode& node = graph.node(n);
    if (node.kind != summary::NodeKind::kClass) return;  // Thing: no atom
    if (context.type_term == rdf::kInvalidTermId) return;
    q.AddAtom(query::Atom{context.type_term,
                          query::QueryTerm::Variable(var_of(n)),
                          query::QueryTerm::Constant(node.term)});
  };

  std::set<summary::NodeId> covered;
  for (summary::EdgeId e : subgraph.edges) {
    const summary::SummaryEdge& edge = graph.edge(e);
    covered.insert(edge.from);
    covered.insert(edge.to);
    switch (edge.kind) {
      case summary::SummaryEdgeKind::kAttribute: {
        emit_type(edge.from);
        const summary::SummaryNode& to = graph.node(edge.to);
        const query::QueryTerm object =
            to.kind == summary::NodeKind::kArtificial
                ? query::QueryTerm::Variable(var_of(edge.to))
                : query::QueryTerm::Constant(to.term);
        q.AddAtom(query::Atom{edge.label,
                              query::QueryTerm::Variable(var_of(edge.from)),
                              object});
        break;
      }
      case summary::SummaryEdgeKind::kRelation: {
        emit_type(edge.from);
        if (edge.from == edge.to) {
          // Self-loop at a class node: the two endpoints stand for two
          // *distinct* entities of that class (e.g. cites(Publication,
          // Publication)), so the object gets a fresh variable with its own
          // type atom rather than repeating var(v).
          const query::VarId object_var = q.NewVariable();
          const summary::SummaryNode& node = graph.node(edge.to);
          if (node.kind == summary::NodeKind::kClass &&
              context.type_term != rdf::kInvalidTermId) {
            q.AddAtom(query::Atom{context.type_term,
                                  query::QueryTerm::Variable(object_var),
                                  query::QueryTerm::Constant(node.term)});
          }
          q.AddAtom(query::Atom{edge.label,
                                query::QueryTerm::Variable(var_of(edge.from)),
                                query::QueryTerm::Variable(object_var)});
          break;
        }
        emit_type(edge.to);
        q.AddAtom(query::Atom{edge.label,
                              query::QueryTerm::Variable(var_of(edge.from)),
                              query::QueryTerm::Variable(var_of(edge.to))});
        break;
      }
      case summary::SummaryEdgeKind::kSubclass: {
        // Ground assertion between class constants; it joins nothing but
        // keeps the query faithful to the matched structure.
        q.AddAtom(query::Atom{
            edge.label,
            query::QueryTerm::Constant(graph.node(edge.from).term),
            query::QueryTerm::Constant(graph.node(edge.to).term)});
        break;
      }
    }
  }

  // Nodes not incident to any subgraph edge (single-element subgraphs or
  // keyword elements that already coincide with the connecting element).
  for (summary::NodeId n : subgraph.nodes) {
    if (covered.count(n) > 0) continue;
    const summary::SummaryNode& node = graph.node(n);
    if (node.kind == summary::NodeKind::kClass) {
      emit_type(n);
      continue;
    }
    if (node.kind == summary::NodeKind::kValue) {
      // Re-attach the value through one of its augmented A-edges so the
      // query can mention it (a V-vertex alone is not a triple pattern).
      for (summary::EdgeId e : graph.IncidentEdges(n)) {
        const summary::SummaryEdge& edge = graph.edge(e);
        if (edge.kind != summary::SummaryEdgeKind::kAttribute ||
            edge.to != n) {
          continue;
        }
        emit_type(edge.from);
        q.AddAtom(query::Atom{edge.label,
                              query::QueryTerm::Variable(var_of(edge.from)),
                              query::QueryTerm::Constant(node.term)});
        break;
      }
    }
    // Thing / artificial nodes in isolation constrain nothing.
  }

  q.DeduplicateAtoms();
  return q;
}

}  // namespace grasp::core
