#ifndef GRASP_CORE_EXPLORATION_H_
#define GRASP_CORE_EXPLORATION_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/exploration_scratch.h"
#include "core/subgraph.h"
#include "graph/edge_filter.h"
#include "serve/query_control.h"
#include "summary/augmented_graph.h"
#include "summary/distance_index.h"

namespace grasp::core {

/// Restricts which connecting elements may generate candidates. A sharded
/// deployment runs the full exploration on every shard — identical pops,
/// identical path recording — but each shard only *emits* candidates at the
/// connecting elements it owns, so the per-structure work (combination
/// enumeration, dedup, materialization, ranking) partitions across shards
/// while the traversal stays byte-identical to the unsharded run. Must be
/// pure (same answer for the same element every time) and thread-safe.
class CandidateScope {
 public:
  virtual ~CandidateScope() = default;
  /// True when this scope generates candidates at connecting element `n`.
  virtual bool OwnsConnector(const summary::AugmentedGraph& graph,
                             summary::ElementId n) const = 0;
};

/// Parameters of Algorithms 1 and 2 (Sec. VI).
struct ExplorationOptions {
  /// Number of matching subgraphs to compute (the paper's k).
  std::size_t k = 10;
  /// Maximum path length d_max, counted in visited elements (a relation hop
  /// crosses one edge and one node, i.e. distance 2).
  std::uint32_t dmax = 12;
  /// Scoring scheme (Sec. V).
  CostModel cost_model = CostModel::kMatching;
  /// Keep only the k cheapest paths per (element, keyword) pair — the space
  /// bound k*|K|*|G| of Sec. VI-C. Disable for the ablation benchmark.
  bool prune_paths_per_element = true;
  /// Use the tightened TA bound (min cursor cost plus the cheapest possible
  /// completion for the remaining keywords) instead of the paper's plain
  /// min-cursor-cost bound. Both are sound; this one terminates earlier.
  bool tightened_bound = false;
  /// Guided exploration via per-keyword BFS distances on the augmented
  /// graph (the paper's future-work connectivity indexing, Sec. IX):
  /// cursors provably unable to take part in any matching subgraph of
  /// radius dmax are never created. Sound — the top-k result is unchanged.
  bool distance_pruning = false;
  /// Record the per-pop cost trace (pop_cost_trace()). Off by default so
  /// the hot loop does not grow a vector on every pop; the Theorem 1
  /// property tests switch it on.
  bool record_pop_trace = false;
  /// Optional edge scope over the augmented graph (predicate- or
  /// kind-restricted search): only edges whose mask bit is set are
  /// traversable, and keyword elements that are masked edges never root a
  /// cursor — they are not part of the scoped graph at all. The mask spans
  /// base summary edges (shared, cacheable) plus per-query overlay bits
  /// (see summary::AugmentedGraph::ScopedFilter) and must outlive the
  /// exploration. The distance-pruning index stays unfiltered: unfiltered
  /// distances lower-bound scoped ones, so pruning remains sound and both
  /// explorers remain byte-identical. nullptr = full graph.
  const graph::OverlayEdgeFilter* edge_filter = nullptr;
  /// Safety valve: stop after this many cursor pops (0 = unlimited).
  std::size_t max_cursor_pops = 0;
  /// Safety valve: cap on path combinations generated per connecting-element
  /// event, relevant only when prune_paths_per_element is off.
  std::size_t max_combinations_per_event = 100000;
  /// Cooperative cancellation + deadline, polled every control_poll_interval
  /// pops (one relaxed load; the deadline adds a clock read). Must outlive
  /// the exploration. A control that is cancelled or expired stops the run
  /// at a pop count that depends only on the poll interval and the flag
  /// state at each poll — for a pre-cancelled/pre-expired control the stop
  /// point is fully deterministic, which is what the differential suite
  /// pins flat ≡ reference on. nullptr = uncontrolled.
  const serve::QueryControl* control = nullptr;
  /// Pops between control polls. Small enough that a cancel lands within
  /// microseconds of work, large enough that the poll (and its clock read)
  /// stays invisible next to a pop's graph traffic.
  std::uint32_t control_poll_interval = 32;
  /// Candidate-generation ownership for sharded runs: when non-null, only
  /// connecting elements the scope owns generate candidates. Exploration —
  /// pops, recording, expansion, termination bookkeeping other than the
  /// candidate list — is unaffected, so a scoped run pops a superset of the
  /// unsharded run's stream (it can only terminate later, never earlier).
  /// Must outlive the exploration. nullptr = own everything (unsharded).
  const CandidateScope* candidate_scope = nullptr;
};

/// Counters exposed for benchmarks and tests.
struct ExplorationStats {
  std::size_t cursors_created = 0;
  std::size_t cursors_popped = 0;
  std::size_t cursors_distance_pruned = 0;  ///< skipped by distance_pruning
  std::size_t paths_recorded = 0;
  std::size_t subgraphs_generated = 0;   ///< candidate insertions attempted
  std::size_t subgraphs_deduplicated = 0;
  bool early_terminated = false;  ///< the top-k bound fired (Alg. 2 line 11)
  bool exhausted = false;         ///< all queues drained
  bool budget_exceeded = false;   ///< a safety valve fired
  bool cancelled = false;         ///< the QueryControl cancel flag stopped it
  bool deadline_expired = false;  ///< the QueryControl deadline stopped it
  /// Completeness certificate: every matching subgraph of the *full* graph
  /// with cost strictly below this bound either is in the returned ranking
  /// or dedups against a returned structure of equal-or-lower cost. On a
  /// run-to-completion this is the final remaining-cost lower bound; on an
  /// early stop it is the verified stop bound. The sharded gather cuts the
  /// merged ranking at the minimum of the shards' certificates — that
  /// prefix is provably identical to the unsharded ranking's prefix.
  double complete_below = std::numeric_limits<double>::infinity();
  /// True when the run stopped before either natural end state — on budget,
  /// cancel, or deadline — so the returned ranking is the verified prefix
  /// of the full one (possibly empty), not the complete top-k.
  bool stopped_early() const {
    return cancelled || deadline_expired ||
           (budget_exceeded && !early_terminated && !exhausted);
  }
};

/// Cursor-based top-k exploration of the augmented summary graph: the
/// paper's central contribution. Explores all distinct paths from every
/// keyword element in non-decreasing cost order (Theorem 1), detects
/// connecting elements, merges paths into candidate subgraphs, and stops as
/// soon as the k best candidates are provably cheaper than anything still
/// discoverable (Threshold Algorithm adaptation, Alg. 2).
///
/// The engine is flat and allocation-free in the steady state: cursors live
/// in an arena and chain parents by index, one global 4-ary heap orders all
/// cursors (the keyword lives in the cursor), recorded paths sit in a
/// sparse slab table, and candidates are deduplicated by 64-bit structure
/// hash in an open-addressing table over a slot pool. All of that state is
/// an ExplorationScratch: pass one in to reuse its allocations across
/// queries (the engine does), or omit it for a self-contained run.
/// Results — pop order, tie-breaks, costs, structures — are byte-identical
/// to ReferenceExplorer, the retained straightforward formulation.
class SubgraphExplorer {
 public:
  /// `graph` must outlive the explorer; a non-null `scratch` must too.
  SubgraphExplorer(const summary::AugmentedGraph& graph,
                   const ExplorationOptions& options,
                   ExplorationScratch* scratch);
  SubgraphExplorer(const summary::AugmentedGraph& graph,
                   const ExplorationOptions& options)
      : SubgraphExplorer(graph, options, nullptr) {}

  SubgraphExplorer(const SubgraphExplorer&) = delete;
  SubgraphExplorer& operator=(const SubgraphExplorer&) = delete;

  /// Runs the exploration to completion and returns the k minimal matching
  /// subgraphs, sorted by ascending cost. Returns an empty vector when some
  /// keyword has no elements (then no K-matching subgraph exists).
  std::vector<MatchingSubgraph> FindTopK();

  const ExplorationStats& stats() const { return stats_; }

  /// Cost-ordered pop trace recorded during FindTopK when
  /// options.record_pop_trace is set; used by the Theorem 1 property test.
  /// Valid until the owning scratch runs its next query.
  const std::vector<double>& pop_cost_trace() const {
    return scratch_->pop_trace;
  }

 private:
  /// Key of a (element, keyword) path list in the slab table.
  std::uint64_t PathKey(summary::ElementId element,
                        std::uint32_t keyword) const {
    return static_cast<std::uint64_t>(graph_->DenseIndex(element)) *
               num_keywords_ +
           keyword;
  }

  bool InAncestors(std::uint32_t cursor, summary::ElementId element) const;
  /// ElementCost through the scratch's per-query cache (costs are
  /// query-constant; cursors revisit elements constantly).
  double CachedElementCost(summary::ElementId element) const;
  /// The cursor a combination chose for keyword `j` (`choice` is indexed by
  /// dims position; the just-recorded cursor covers its own keyword).
  std::uint32_t ChosenCursor(std::uint32_t j, std::uint32_t kw,
                             std::uint32_t new_cursor,
                             const std::uint32_t* choice) const;
  void GenerateCandidates(summary::ElementId n, std::uint32_t new_cursor);
  /// Dedups by structure hash and, when the candidate survives, materializes
  /// it from the scratch element sets + the chosen cursors' parent chains.
  /// `discovery` stamps the generating event (see MatchingSubgraph).
  void InsertCandidate(std::uint64_t hash, double cost, summary::ElementId n,
                       std::uint32_t kw, std::uint32_t new_cursor,
                       const std::uint32_t* choice, std::uint64_t discovery);
  /// Capacity of the candidate list (k plus dedup slack).
  std::size_t CandidateCap() const;
  /// Cost above which a new combination cannot reach the top k distinct
  /// structures (+inf while the candidate list is below capacity).
  double CandidatePruneCost() const;
  /// Smallest cost any not-yet-generated candidate could have.
  double RemainingLowerBound() const;
  /// Cost of the current k-th best candidate (+inf while fewer than k).
  double KthCandidateCost() const;
  /// Lower bound on any candidate the continued run could still produce,
  /// given that `pending_cost` is the cheapest unprocessed cursor (the one
  /// whose pop the stop interrupted). Ranked candidates strictly below this
  /// bound are provably final — the verified prefix returned on a stop.
  double StopBound(double pending_cost) const;

  const summary::AugmentedGraph* graph_;
  ExplorationOptions options_;
  CostFunction cost_fn_;
  ExplorationStats stats_;
  std::size_t num_keywords_ = 0;
  /// +inf on a complete run; set by early-stop paths (budget / cancel /
  /// deadline) to truncate the returned ranking to its verified prefix.
  double stop_bound_ = std::numeric_limits<double>::infinity();

  /// Self-owned scratch for callers that did not pass one.
  std::unique_ptr<ExplorationScratch> owned_scratch_;
  ExplorationScratch* scratch_;

  /// Per-keyword BFS distances; built only when distance_pruning is on.
  std::unique_ptr<summary::KeywordDistanceIndex> distance_index_;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_EXPLORATION_H_
