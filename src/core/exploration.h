#ifndef GRASP_CORE_EXPLORATION_H_
#define GRASP_CORE_EXPLORATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "core/cost_model.h"
#include "core/subgraph.h"
#include "summary/augmented_graph.h"
#include "summary/distance_index.h"

namespace grasp::core {

/// Parameters of Algorithms 1 and 2 (Sec. VI).
struct ExplorationOptions {
  /// Number of matching subgraphs to compute (the paper's k).
  std::size_t k = 10;
  /// Maximum path length d_max, counted in visited elements (a relation hop
  /// crosses one edge and one node, i.e. distance 2).
  std::uint32_t dmax = 12;
  /// Scoring scheme (Sec. V).
  CostModel cost_model = CostModel::kMatching;
  /// Keep only the k cheapest paths per (element, keyword) pair — the space
  /// bound k*|K|*|G| of Sec. VI-C. Disable for the ablation benchmark.
  bool prune_paths_per_element = true;
  /// Use the tightened TA bound (min cursor cost plus the cheapest possible
  /// completion for the remaining keywords) instead of the paper's plain
  /// min-cursor-cost bound. Both are sound; this one terminates earlier.
  bool tightened_bound = false;
  /// Guided exploration via per-keyword BFS distances on the augmented
  /// graph (the paper's future-work connectivity indexing, Sec. IX):
  /// cursors provably unable to take part in any matching subgraph of
  /// radius dmax are never created. Sound — the top-k result is unchanged.
  bool distance_pruning = false;
  /// Safety valve: stop after this many cursor pops (0 = unlimited).
  std::size_t max_cursor_pops = 0;
  /// Safety valve: cap on path combinations generated per connecting-element
  /// event, relevant only when prune_paths_per_element is off.
  std::size_t max_combinations_per_event = 100000;
};

/// Counters exposed for benchmarks and tests.
struct ExplorationStats {
  std::size_t cursors_created = 0;
  std::size_t cursors_popped = 0;
  std::size_t cursors_distance_pruned = 0;  ///< skipped by distance_pruning
  std::size_t paths_recorded = 0;
  std::size_t subgraphs_generated = 0;   ///< candidate insertions attempted
  std::size_t subgraphs_deduplicated = 0;
  bool early_terminated = false;  ///< the top-k bound fired (Alg. 2 line 11)
  bool exhausted = false;         ///< all queues drained
  bool budget_exceeded = false;   ///< a safety valve fired
};

/// Cursor-based top-k exploration of the augmented summary graph: the
/// paper's central contribution. Explores all distinct paths from every
/// keyword element in non-decreasing cost order (Theorem 1), detects
/// connecting elements, merges paths into candidate subgraphs, and stops as
/// soon as the k best candidates are provably cheaper than anything still
/// discoverable (Threshold Algorithm adaptation, Alg. 2).
class SubgraphExplorer {
 public:
  /// `graph` must outlive the explorer.
  SubgraphExplorer(const summary::AugmentedGraph& graph,
                   const ExplorationOptions& options);

  SubgraphExplorer(const SubgraphExplorer&) = delete;
  SubgraphExplorer& operator=(const SubgraphExplorer&) = delete;

  /// Runs the exploration to completion and returns the k minimal matching
  /// subgraphs, sorted by ascending cost. Returns an empty vector when some
  /// keyword has no elements (then no K-matching subgraph exists).
  std::vector<MatchingSubgraph> FindTopK();

  const ExplorationStats& stats() const { return stats_; }

  /// Cost-ordered pop trace (element, cost) recorded during FindTopK; used
  /// by the Theorem 1 property test.
  const std::vector<double>& pop_cost_trace() const { return pop_cost_trace_; }

 private:
  struct Cursor {
    summary::ElementId element;
    std::int32_t parent = -1;  ///< arena index of the parent cursor, -1 = root
    std::uint32_t keyword = 0;
    std::uint32_t distance = 0;
    double cost = 0.0;
  };

  std::size_t DenseIndex(summary::ElementId element) const;
  std::vector<std::uint32_t>& PathsAt(summary::ElementId element,
                                      std::uint32_t keyword);
  bool InAncestors(std::uint32_t cursor, summary::ElementId element) const;
  void CollectNeighbors(summary::ElementId element,
                        std::vector<summary::ElementId>* out) const;
  std::vector<summary::ElementId> ReconstructPath(std::uint32_t cursor) const;
  void GenerateCandidates(summary::ElementId n, std::uint32_t new_cursor);
  void InsertCandidate(MatchingSubgraph subgraph);
  /// Capacity of the candidate list (k plus dedup slack).
  std::size_t CandidateCap() const;
  /// Cost above which a new combination cannot reach the top k distinct
  /// structures (+inf while the candidate list is below capacity).
  double CandidatePruneCost() const;
  /// Smallest cost any not-yet-generated candidate could have.
  double RemainingLowerBound() const;
  /// Cost of the current k-th best candidate (+inf while fewer than k).
  double KthCandidateCost() const;

  const summary::AugmentedGraph* graph_;
  ExplorationOptions options_;
  CostFunction cost_fn_;
  ExplorationStats stats_;

  std::vector<Cursor> cursors_;
  /// Per keyword: min-heap of (cost, cursor index).
  std::vector<std::vector<std::pair<double, std::uint32_t>>> queues_;
  /// paths_at_[dense_element * m + keyword] = cursor indices, in insertion
  /// (hence cost) order.
  std::vector<std::vector<std::uint32_t>> paths_at_;
  std::size_t num_keywords_ = 0;

  /// Candidate subgraphs: best cost per structure, capped to the k best.
  /// candidate_keys_[i] caches candidates_[i].StructureKey().
  std::vector<MatchingSubgraph> candidates_;
  std::vector<std::string> candidate_keys_;
  std::map<std::string, double> best_cost_by_key_;

  /// Precomputed cheapest root cost per keyword (tightened bound).
  std::vector<double> min_root_cost_;

  /// Per-keyword BFS distances; built only when distance_pruning is on.
  std::unique_ptr<summary::KeywordDistanceIndex> distance_index_;

  std::vector<double> pop_cost_trace_;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_EXPLORATION_H_
