#include "core/subgraph.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace grasp::core {

std::uint64_t StructureHashOf(std::span<const summary::NodeId> nodes,
                              std::span<const summary::EdgeId> edges) {
  // Sequence-sensitive chain over the sorted sets; nodes and edges are
  // salted differently so {n1}|{} and {}|{e1} cannot collide trivially.
  std::uint64_t h = 0x6b7a5c3d2e1f0908ULL;
  for (summary::NodeId n : nodes) h = Mix64(h ^ (n | 0x100000000ULL));
  h = Mix64(h ^ 0xa5a5a5a5a5a5a5a5ULL);  // set separator
  for (summary::EdgeId e : edges) h = Mix64(h ^ (e | 0x200000000ULL));
  return h;
}

std::string MatchingSubgraph::StructureKey() const {
  std::string key;
  key.reserve(8 * (nodes.size() + edges.size()) + 2);
  for (summary::NodeId n : nodes) key += StrFormat("n%u,", n);
  key.push_back('|');
  for (summary::EdgeId e : edges) key += StrFormat("e%u,", e);
  return key;
}

std::uint64_t MatchingSubgraph::StructureHash() const {
  return StructureHashOf(nodes, edges);
}

}  // namespace grasp::core
