#include "core/subgraph.h"

#include <cstdint>
#include <type_traits>

#include "common/string_util.h"
#include "simd/kernels.h"

namespace grasp::core {

std::uint64_t StructureHashOf(std::span<const summary::NodeId> nodes,
                              std::span<const summary::EdgeId> edges) {
  // Sequence-sensitive digest of the sorted sets: four interleaved splitmix
  // lanes with per-stream salts (so {n1}|{} and {}|{e1} cannot collide
  // trivially), folded with both counts. The lane scheme exists so the
  // 4-wide kernel tier computes the identical value; this hash is purely an
  // in-memory dedup key (candidate store, augmentation cache), never
  // serialized, so its definition is free to follow the kernels.
  static_assert(std::is_same_v<summary::NodeId, std::uint32_t>);
  static_assert(std::is_same_v<summary::EdgeId, std::uint32_t>);
  return simd::ActiveKernels().struct_hash(nodes.data(), nodes.size(),
                                           edges.data(), edges.size());
}

std::string MatchingSubgraph::StructureKey() const {
  std::string key;
  key.reserve(8 * (nodes.size() + edges.size()) + 2);
  for (summary::NodeId n : nodes) key += StrFormat("n%u,", n);
  key.push_back('|');
  for (summary::EdgeId e : edges) key += StrFormat("e%u,", e);
  return key;
}

std::uint64_t MatchingSubgraph::StructureHash() const {
  return StructureHashOf(nodes, edges);
}

}  // namespace grasp::core
