#include "core/subgraph.h"

#include "common/string_util.h"

namespace grasp::core {

std::string MatchingSubgraph::StructureKey() const {
  std::string key;
  key.reserve(8 * (nodes.size() + edges.size()) + 2);
  for (summary::NodeId n : nodes) key += StrFormat("n%u,", n);
  key.push_back('|');
  for (summary::EdgeId e : edges) key += StrFormat("e%u,", e);
  return key;
}

}  // namespace grasp::core
