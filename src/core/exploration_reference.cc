#include "core/exploration_reference.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace grasp::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Min-heap helpers over (cost, cursor index) pairs; ties break on the
/// cursor index so runs are deterministic.
struct HeapGreater {
  bool operator()(const std::pair<double, std::uint32_t>& a,
                  const std::pair<double, std::uint32_t>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};

}  // namespace

ReferenceExplorer::ReferenceExplorer(const summary::AugmentedGraph& graph,
                                   const ExplorationOptions& options)
    : graph_(&graph),
      options_(options),
      cost_fn_(options.cost_model, graph),
      num_keywords_(graph.num_keywords()) {
  GRASP_CHECK_GT(options_.k, 0u);
  queues_.resize(num_keywords_);
  paths_at_.resize(graph_->num_elements() * std::max<std::size_t>(1, num_keywords_));
}

std::vector<std::uint32_t>& ReferenceExplorer::PathsAt(
    summary::ElementId element, std::uint32_t keyword) {
  return paths_at_[graph_->DenseIndex(element) * num_keywords_ + keyword];
}

bool ReferenceExplorer::InAncestors(std::uint32_t cursor,
                                   summary::ElementId element) const {
  std::int32_t i = static_cast<std::int32_t>(cursor);
  while (i >= 0) {
    const Cursor& c = cursors_[static_cast<std::size_t>(i)];
    if (c.element == element) return true;
    i = c.parent;
  }
  return false;
}

void ReferenceExplorer::CollectNeighbors(
    summary::ElementId element, std::vector<summary::ElementId>* out) const {
  out->clear();
  if (element.is_node()) {
    for (summary::EdgeId e : graph_->IncidentEdges(element.index())) {
      // Edge-scope reference semantics: explore the full incident chain
      // and reject masked edges with a plain per-edge branch — the
      // formulation the flat explorer's word-scanned path is pinned
      // against by the filtered differential suite.
      if (options_.edge_filter != nullptr &&
          !options_.edge_filter->Contains(e)) {
        continue;
      }
      out->push_back(summary::ElementId::Edge(e));
    }
  } else {
    const summary::SummaryEdge& e = graph_->edge(element.index());
    out->push_back(summary::ElementId::Node(e.from));
    if (e.to != e.from) out->push_back(summary::ElementId::Node(e.to));
  }
}

std::vector<summary::ElementId> ReferenceExplorer::ReconstructPath(
    std::uint32_t cursor) const {
  std::vector<summary::ElementId> path;
  std::int32_t i = static_cast<std::int32_t>(cursor);
  while (i >= 0) {
    const Cursor& c = cursors_[static_cast<std::size_t>(i)];
    path.push_back(c.element);
    i = c.parent;
  }
  std::reverse(path.begin(), path.end());  // origin (keyword element) first
  return path;
}

double ReferenceExplorer::KthCandidateCost() const {
  if (candidates_.size() < options_.k) return kInf;
  return candidates_[options_.k - 1].cost;
}

double ReferenceExplorer::RemainingLowerBound() const {
  double min_cursor = kInf;
  for (const auto& q : queues_) {
    if (!q.empty()) min_cursor = std::min(min_cursor, q.front().first);
  }
  if (min_cursor == kInf) return kInf;
  if (!options_.tightened_bound) return min_cursor;
  // A future candidate consists of one path that is still on some queue
  // (cost >= min_cursor) plus, for every other keyword, some path that costs
  // at least that keyword's cheapest root. Minimizing over the choice of the
  // queue keyword yields: min_cursor + sum(min roots) - max(min root).
  double sum = 0.0, worst = 0.0;
  for (double r : min_root_cost_) {
    sum += r;
    worst = std::max(worst, r);
  }
  return min_cursor + (sum - worst);
}

double ReferenceExplorer::StopBound(double pending_cost) const {
  // Same reasoning as RemainingLowerBound, anchored on the popped-but-
  // unprocessed cursor (at least as cheap as every queued one): any
  // candidate the continued run could still produce costs at least this
  // much, so ranked candidates strictly below it are final.
  if (!options_.tightened_bound) return pending_cost;
  double sum = 0.0, worst = 0.0;
  for (double r : min_root_cost_) {
    sum += r;
    worst = std::max(worst, r);
  }
  return pending_cost + (sum - worst);
}

std::size_t ReferenceExplorer::CandidateCap() const {
  // k-best(LG') of Alg. 2, line 8, with a slack factor so that structures
  // evicted here can still reappear with a cheaper decomposition.
  return options_.k * 4 + 16;
}

double ReferenceExplorer::CandidatePruneCost() const {
  if (candidates_.size() < CandidateCap()) return kInf;
  return candidates_.back().cost;
}

void ReferenceExplorer::InsertCandidate(MatchingSubgraph subgraph) {
  ++stats_.subgraphs_generated;
  std::string key = subgraph.StructureKey();
  auto it = best_cost_by_key_.find(key);
  if (it != best_cost_by_key_.end()) {
    ++stats_.subgraphs_deduplicated;
    if (subgraph.cost >= it->second) return;
    // A cheaper decomposition of a known structure: replace it. The key
    // cache avoids rebuilding every candidate's key during the scan.
    it->second = subgraph.cost;
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (candidate_keys_[i] == key) {
        candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(i));
        candidate_keys_.erase(candidate_keys_.begin() +
                              static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  } else {
    best_cost_by_key_.emplace(key, subgraph.cost);
  }
  auto pos = std::upper_bound(
      candidates_.begin(), candidates_.end(), subgraph,
      [](const MatchingSubgraph& a, const MatchingSubgraph& b) {
        return a.cost < b.cost;
      });
  const std::size_t index =
      static_cast<std::size_t>(pos - candidates_.begin());
  candidates_.insert(pos, std::move(subgraph));
  candidate_keys_.insert(candidate_keys_.begin() +
                             static_cast<std::ptrdiff_t>(index),
                         std::move(key));
  const std::size_t cap = CandidateCap();
  if (candidates_.size() > cap) {
    candidates_.resize(cap);
    candidate_keys_.resize(cap);
  }
}

void ReferenceExplorer::GenerateCandidates(summary::ElementId n,
                                          std::uint32_t new_cursor) {
  const std::uint32_t kw = cursors_[new_cursor].keyword;
  // n is a connecting element iff every keyword has at least one recorded
  // path ending here (Alg. 2, line 1).
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    if (j == kw) continue;
    if (PathsAt(n, j).empty()) return;
  }

  // Reconstruct every recorded path at n once up front; combinations below
  // reuse these instead of re-walking parent chains per combination.
  std::vector<std::vector<std::vector<summary::ElementId>>> prebuilt(
      num_keywords_);
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    if (j == kw) continue;
    for (std::uint32_t cursor : PathsAt(n, j)) {
      prebuilt[j].push_back(ReconstructPath(cursor));
    }
  }
  const std::vector<summary::ElementId> new_path = ReconstructPath(new_cursor);

  // Enumerate cursorCombinations(n) incrementally: every new combination
  // must include the cursor that was just recorded; combinations of older
  // cursors were produced when their last member arrived.
  //
  // The enumeration is best-first over the combination lattice. Each
  // per-keyword path list is in ascending cost order, so the successors of a
  // combination (one index advanced) only cost more; a frontier heap
  // therefore yields combinations in ascending total cost, and the whole
  // event stops as soon as the cheapest remaining combination exceeds the
  // candidate-cap threshold — anything beyond it can never reach the top k
  // distinct structures. With m keywords and per-element path lists capped
  // at k, this materializes O(cap) combinations instead of k^(m-1).
  std::vector<const std::vector<std::uint32_t>*> path_lists(num_keywords_,
                                                            nullptr);
  std::vector<std::uint32_t> dims;  // keyword dimensions other than kw
  for (std::uint32_t j = 0; j < num_keywords_; ++j) {
    if (j == kw) continue;
    dims.push_back(j);
    path_lists[j] = &PathsAt(n, j);
  }

  struct Combo {
    double cost;
    std::vector<std::uint32_t> choice;  // indexed by dims position
  };
  auto combo_greater = [](const Combo& a, const Combo& b) {
    return a.cost > b.cost;
  };
  auto combo_cost = [&](const std::vector<std::uint32_t>& choice) {
    double cost = cursors_[new_cursor].cost;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      cost += cursors_[(*path_lists[dims[d]])[choice[d]]].cost;
    }
    return cost;
  };

  std::vector<Combo> frontier;
  frontier.push_back(
      Combo{combo_cost(std::vector<std::uint32_t>(dims.size(), 0)),
            std::vector<std::uint32_t>(dims.size(), 0)});
  std::size_t combinations = 0;
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), combo_greater);
    Combo combo = std::move(frontier.back());
    frontier.pop_back();
    if (combo.cost > CandidatePruneCost()) break;  // nothing cheaper remains
    if (++combinations > options_.max_combinations_per_event) {
      stats_.budget_exceeded = true;
      break;
    }

    MatchingSubgraph subgraph;
    subgraph.connecting_element = n;
    subgraph.paths.resize(num_keywords_);
    subgraph.cost = combo.cost;
    // Same discovery coordinate as SubgraphExplorer: pop ordinal + 1-based
    // combination index (the enumeration order is identical). Stored only
    // when the candidate is accepted, so a structure's stamp is always the
    // event that achieved its current best cost.
    subgraph.discovery =
        (static_cast<std::uint64_t>(stats_.cursors_popped) << 20) |
        static_cast<std::uint64_t>(
            std::min<std::size_t>(combinations, 0xFFFFF));
    for (std::uint32_t j = 0; j < num_keywords_; ++j) {
      if (j == kw) {
        subgraph.paths[j] = new_path;
      } else {
        const std::size_t d = static_cast<std::size_t>(
            std::find(dims.begin(), dims.end(), j) - dims.begin());
        subgraph.paths[j] = prebuilt[j][combo.choice[d]];
      }
      for (summary::ElementId el : subgraph.paths[j]) {
        if (el.is_edge()) {
          subgraph.edges.push_back(el.index());
          // Close the structure: an edge brings both endpoints.
          const summary::SummaryEdge& e = graph_->edge(el.index());
          subgraph.nodes.push_back(e.from);
          subgraph.nodes.push_back(e.to);
        } else {
          subgraph.nodes.push_back(el.index());
        }
      }
    }
    std::sort(subgraph.nodes.begin(), subgraph.nodes.end());
    subgraph.nodes.erase(
        std::unique(subgraph.nodes.begin(), subgraph.nodes.end()),
        subgraph.nodes.end());
    std::sort(subgraph.edges.begin(), subgraph.edges.end());
    subgraph.edges.erase(
        std::unique(subgraph.edges.begin(), subgraph.edges.end()),
        subgraph.edges.end());
    InsertCandidate(std::move(subgraph));

    // Successors: advance one dimension each. Advancing only dimensions at
    // or after the last non-zero one visits every combination exactly once
    // (the lexicographic successor rule), so no visited-set is needed.
    std::size_t first = 0;
    for (std::size_t d = dims.size(); d-- > 0;) {
      if (combo.choice[d] != 0) {
        first = d;
        break;
      }
    }
    for (std::size_t d = first; d < dims.size(); ++d) {
      if (combo.choice[d] + 1 < path_lists[dims[d]]->size()) {
        Combo next = combo;
        ++next.choice[d];
        next.cost = combo_cost(next.choice);
        frontier.push_back(std::move(next));
        std::push_heap(frontier.begin(), frontier.end(), combo_greater);
      }
    }
  }
}

std::vector<MatchingSubgraph> ReferenceExplorer::FindTopK() {
  const auto& keyword_elements = graph_->keyword_elements();
  if (keyword_elements.empty()) return {};
  for (const auto& k_i : keyword_elements) {
    if (k_i.empty()) return {};  // some keyword cannot be interpreted
  }

  if (options_.distance_pruning) {
    distance_index_ = std::make_unique<summary::KeywordDistanceIndex>(
        summary::KeywordDistanceIndex::Build(*graph_));
  }
  auto distance_admissible = [this](std::uint32_t keyword,
                                    summary::ElementId element,
                                    std::uint32_t distance) {
    if (distance_index_ == nullptr) return true;
    if (distance_index_->CanStillConnect(keyword, element, distance,
                                         options_.dmax)) {
      return true;
    }
    ++stats_.cursors_distance_pruned;
    return false;
  };

  // Alg. 1, lines 1-6: one root cursor per keyword element. Keyword
  // elements that are scope-masked edges are not part of the scoped graph
  // (same rule as SubgraphExplorer, which the differential suite pins).
  min_root_cost_.assign(num_keywords_, kInf);
  for (std::uint32_t i = 0; i < num_keywords_; ++i) {
    bool any_in_scope = false;
    for (const summary::ScoredElement& se : keyword_elements[i]) {
      if (options_.edge_filter != nullptr && se.element.is_edge() &&
          !options_.edge_filter->Contains(se.element.index())) {
        continue;
      }
      any_in_scope = true;
      const double w = cost_fn_.ElementCost(se.element);
      min_root_cost_[i] = std::min(min_root_cost_[i], w);
      if (!distance_admissible(i, se.element, 0)) continue;
      const std::uint32_t idx = static_cast<std::uint32_t>(cursors_.size());
      cursors_.push_back(Cursor{se.element, -1, i, 0, w});
      queues_[i].emplace_back(w, idx);
      std::push_heap(queues_[i].begin(), queues_[i].end(), HeapGreater{});
      ++stats_.cursors_created;
    }
    if (!any_in_scope) return {};
  }

  std::vector<summary::ElementId> neighbors;
  while (true) {
    // Alg. 1, line 8: cheapest cursor across all queues.
    std::size_t best_queue = queues_.size();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (queues_[i].empty()) continue;
      if (best_queue == queues_.size() ||
          HeapGreater{}(queues_[best_queue].front(), queues_[i].front())) {
        best_queue = i;
      }
    }
    if (best_queue == queues_.size()) {
      stats_.exhausted = true;
      break;
    }
    auto& q = queues_[best_queue];
    std::pop_heap(q.begin(), q.end(), HeapGreater{});
    const std::uint32_t cursor_idx = q.back().second;
    q.pop_back();
    const Cursor cursor = cursors_[cursor_idx];
    ++stats_.cursors_popped;
    if (options_.record_pop_trace) pop_cost_trace_.push_back(cursor.cost);
    if (options_.max_cursor_pops > 0 &&
        stats_.cursors_popped > options_.max_cursor_pops) {
      stats_.budget_exceeded = true;
      stop_bound_ = StopBound(cursor.cost);
      break;
    }
    // Cooperative cancel/deadline poll — identical placement, order, and
    // interval arithmetic to SubgraphExplorer so controlled stops land on
    // the same pop in both explorers.
    if (options_.control != nullptr && options_.control_poll_interval != 0 &&
        stats_.cursors_popped % options_.control_poll_interval == 0) {
      if (options_.control->cancel_requested()) {
        stats_.cancelled = true;
        stop_bound_ = StopBound(cursor.cost);
        break;
      }
      if (options_.control->Expired()) {
        stats_.deadline_expired = true;
        stop_bound_ = StopBound(cursor.cost);
        break;
      }
    }

    const summary::ElementId n = cursor.element;
    auto& paths = PathsAt(n, cursor.keyword);
    const bool record =
        !options_.prune_paths_per_element || paths.size() < options_.k;
    if (record) {
      paths.push_back(cursor_idx);  // Alg. 1, line 11: n.addCursor(c)
      ++stats_.paths_recorded;
      // Same ownership gate as SubgraphExplorer: sharded runs emit
      // candidates only at owned connecting elements.
      if (options_.candidate_scope == nullptr ||
          options_.candidate_scope->OwnsConnector(*graph_, n)) {
        GenerateCandidates(n, cursor_idx);  // Alg. 2 body
      }

      // Alg. 1, lines 13-22: expand to all neighbors except the parent,
      // refusing cyclic paths.
      if (cursor.distance < options_.dmax) {
        CollectNeighbors(n, &neighbors);
        const summary::ElementId parent_element =
            cursor.parent >= 0
                ? cursors_[static_cast<std::size_t>(cursor.parent)].element
                : summary::ElementId();
        for (summary::ElementId nb : neighbors) {
          if (nb == parent_element) continue;
          if (InAncestors(cursor_idx, nb)) continue;
          if (!distance_admissible(cursor.keyword, nb, cursor.distance + 1)) {
            continue;
          }
          const double w = cursor.cost + cost_fn_.ElementCost(nb);
          const std::uint32_t child = static_cast<std::uint32_t>(cursors_.size());
          cursors_.push_back(
              Cursor{nb, static_cast<std::int32_t>(cursor_idx),
                     cursor.keyword, cursor.distance + 1, w});
          queues_[cursor.keyword].emplace_back(w, child);
          std::push_heap(queues_[cursor.keyword].begin(),
                         queues_[cursor.keyword].end(), HeapGreater{});
          ++stats_.cursors_created;
        }
      }
    }

    // Alg. 2, lines 9-16: stop once the k-th candidate is provably minimal.
    if (KthCandidateCost() < RemainingLowerBound()) {
      stats_.early_terminated = true;
      break;
    }
  }

  // Completeness certificate — see ExplorationStats::complete_below.
  stats_.complete_below = std::min(stop_bound_, RemainingLowerBound());

  // Early stop: keep only the verified prefix (see SubgraphExplorer).
  // Complete runs leave stop_bound_ at +inf, dropping nothing.
  while (!candidates_.empty() && candidates_.back().cost >= stop_bound_) {
    candidates_.pop_back();
  }
  if (candidates_.size() > options_.k) candidates_.resize(options_.k);
  return std::move(candidates_);
}

}  // namespace grasp::core
