#ifndef GRASP_CORE_QUERY_MAPPING_H_
#define GRASP_CORE_QUERY_MAPPING_H_

#include "core/subgraph.h"
#include "query/conjunctive_query.h"
#include "summary/augmented_graph.h"

namespace grasp::core {

/// Context the mapping rules need beyond the subgraph itself.
struct QueryMappingContext {
  /// Interned id of the `type` predicate (DataGraph::type_term()); atoms
  /// type(var, class) use it. kInvalidTermId suppresses type atoms (only
  /// possible for data without any class assertions).
  rdf::TermId type_term = rdf::kInvalidTermId;
};

/// Translates a matching subgraph of the augmented summary graph into a
/// conjunctive query via the deterministic rules of Sec. VI-D:
///
///  - every subgraph node receives a distinct variable var(v);
///  - A-edge e(c, value-vertex v2): emits type(var(c), c) and
///    e(var(c), constant(v2)); for artificial `value` nodes the object stays
///    a fresh variable e(var(c), var(value));
///  - R-edge e(c1, c2): emits type atoms for both class endpoints plus
///    e(var(c1), var(c2));
///  - subclass edges between classes become the ground atom
///    subclass(c1, c2) (checkable against the data, joins nothing);
///  - `Thing` nodes emit no type atom (they stand for untyped entities);
///  - a subgraph consisting of a single class node maps to type(x, c); a
///    single keyword V-vertex maps through its cheapest incident A-edge.
///
/// The query's cost is set to the subgraph's cost. Duplicate atoms emitted
/// by adjacent rules are removed.
query::ConjunctiveQuery MapToQuery(const summary::AugmentedGraph& graph,
                                   const MatchingSubgraph& subgraph,
                                   const QueryMappingContext& context);

}  // namespace grasp::core

#endif  // GRASP_CORE_QUERY_MAPPING_H_
