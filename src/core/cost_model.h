#ifndef GRASP_CORE_COST_MODEL_H_
#define GRASP_CORE_COST_MODEL_H_

#include "summary/augmented_graph.h"

namespace grasp::core {

/// The three scoring schemes of Sec. V. Graph cost = sum of path costs;
/// path cost = sum of element costs; lower is better.
enum class CostModel {
  /// C1: c(n) = 1 — path length.
  kPathLength = 1,
  /// C2: c(v) = 1 - |v_agg|/|V_E|, c(e) = 1 - |e_agg|/|E_R| — popularity.
  /// (The paper's text says |V| is "the total number of vertices in the
  /// summary graph", which would make the ratio exceed 1 for any aggregated
  /// class; we read it as the number of aggregated data elements, the only
  /// interpretation under which the formula yields a cost in [0, 1].)
  kPopularity = 2,
  /// C3: C2's element cost divided by the matching score sm(n).
  kMatching = 3,
};

/// Evaluates element costs c(n) (resp. c(n)/sm(n)) against one augmented
/// summary graph. All costs are clamped to [kMinElementCost, +inf) so that
/// every cost model is strictly monotone under path extension — the
/// precondition for the TA-style termination proof (Theorem 1).
class CostFunction {
 public:
  CostFunction(CostModel model, const summary::AugmentedGraph& graph)
      : model_(model), graph_(&graph) {}

  /// Cost contribution of one graph element to a path through it.
  double ElementCost(summary::ElementId element) const;

  CostModel model() const { return model_; }

  /// Lower bound of any element cost; keeps costs strictly positive.
  static constexpr double kMinElementCost = 0.01;

 private:
  double PopularityCost(summary::ElementId element) const;

  CostModel model_;
  const summary::AugmentedGraph* graph_;
};

}  // namespace grasp::core

#endif  // GRASP_CORE_COST_MODEL_H_
