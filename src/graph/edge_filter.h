#ifndef GRASP_GRAPH_EDGE_FILTER_H_
#define GRASP_GRAPH_EDGE_FILTER_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>

#include "common/flat_storage.h"
#include "common/logging.h"
#include "simd/kernels.h"

namespace grasp::graph {

/// One bit per edge id: the membership mask of a restricted graph view
/// (predicate scopes, A- vs R-edge partitions, direction experiments).
/// Built once per filter shape and shared read-only by any number of
/// concurrent traversals; a FilteredGraph pairs it with a CsrGraph into a
/// copy-free scoped adjacency (osrm FilteredGraph-style).
///
/// The words live in FlatStorage<uint64_t>, the same storage every index
/// array uses, so a mask is snapshot-compatible: it can be serialized as-is
/// and adopted zero-copy from a mapping (FromParts).
class EdgeFilter {
 public:
  EdgeFilter() = default;

  /// Builds the mask by evaluating `admit` once per edge id in order. The
  /// final word is explicitly tail-masked, so padding bits past num_edges
  /// are zero regardless of the predicate — the invariant every word-wise
  /// sweep (CountSet, ForEachSet, the compose ops) relies on.
  template <typename Pred>
  static EdgeFilter Build(std::uint32_t num_edges, Pred&& admit) {
    AlignedVector<std::uint64_t> words(NumWords(num_edges), 0);
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (admit(e)) words[e >> 6] |= std::uint64_t{1} << (e & 63);
    }
    if (!words.empty()) words.back() &= TailMask(num_edges);
    return EdgeFilter(FlatStorage<std::uint64_t>(std::move(words)), num_edges);
  }

  static EdgeFilter MakeFull(std::uint32_t num_edges) {
    return Build(num_edges, [](std::uint32_t) { return true; });
  }
  static EdgeFilter MakeEmpty(std::uint32_t num_edges) {
    return Build(num_edges, [](std::uint32_t) { return false; });
  }

  /// Adopts prebuilt words (owned or borrowed from a snapshot mapping).
  /// The caller guarantees words.size() == NumWords(num_edges) and zero
  /// padding bits past num_edges.
  static EdgeFilter FromParts(FlatStorage<std::uint64_t> words,
                              std::uint32_t num_edges) {
    return EdgeFilter(std::move(words), num_edges);
  }

  /// Word-wise mask composition over two filters of the same edge-id space.
  /// The result owns its words and is tail-masked explicitly, so composed
  /// masks uphold the zero-padding invariant even if an input violated it.
  static EdgeFilter And(const EdgeFilter& a, const EdgeFilter& b) {
    return Compose(a, b, simd::ActiveKernels().mask_and);
  }
  static EdgeFilter Or(const EdgeFilter& a, const EdgeFilter& b) {
    return Compose(a, b, simd::ActiveKernels().mask_or);
  }
  /// Edges admitted by `a` but not `b`.
  static EdgeFilter AndNot(const EdgeFilter& a, const EdgeFilter& b) {
    return Compose(a, b, simd::ActiveKernels().mask_andnot);
  }

  std::uint32_t num_edges() const { return num_edges_; }
  bool empty() const { return num_edges_ == 0; }

  bool Contains(std::uint32_t e) const {
    return (words_[e >> 6] >> (e & 63)) & 1u;
  }

  /// Number of admitted edges; dispatched word-popcount sweep.
  std::size_t CountSet() const {
    return static_cast<std::size_t>(simd::ActiveKernels().popcount_words(
        words_.data(), words_.size()));
  }

  /// Enumeration of every admitted edge id, ascending. The dispatched
  /// collect_set kernel extracts each 8-word chunk's set bits into a stack
  /// buffer (zero blocks cost one vector test), and `fn` consumes the ids
  /// from there. This is the sweep the mask builders and the view-mode
  /// baseline index construction use instead of a per-edge branch over the
  /// full edge array.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    const std::span<const std::uint64_t> words = words_.view();
    const auto collect = simd::ActiveKernels().collect_set;
    constexpr std::size_t kChunkWords = 8;
    std::uint32_t ids[kChunkWords * 64];
    for (std::size_t w = 0; w < words.size(); w += kChunkWords) {
      const std::size_t chunk = std::min(kChunkWords, words.size() - w);
      const std::size_t got = collect(words.data() + w, chunk,
                                      static_cast<std::uint32_t>(w << 6), ids);
      for (std::size_t i = 0; i < got; ++i) fn(ids[i]);
    }
  }

  /// Membership probe for ascending id scans (CSR adjacency runs are built
  /// in ascending edge-id order): the current 64-id window's word is cached,
  /// so a run probes one load per window instead of one per edge. State is
  /// scan-local — make one cursor per traversal, not per probe.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const EdgeFilter& filter) : words_(filter.words_.data()) {}

    bool Contains(std::uint32_t e) {
      const std::uint32_t w = e >> 6;
      if (w != word_index_) {
        word_index_ = w;
        word_ = words_[w];
      }
      return (word_ >> (e & 63)) & 1u;
    }

   private:
    const std::uint64_t* words_ = nullptr;
    std::uint32_t word_index_ = 0xffffffffu;
    std::uint64_t word_ = 0;
  };

  /// The raw mask words, for snapshot serialization.
  std::span<const std::uint64_t> words() const { return words_.view(); }

  static std::size_t NumWords(std::uint32_t num_edges) {
    return (static_cast<std::size_t>(num_edges) + 63) / 64;
  }

  /// Mask of the valid bits in the final word: all-ones when num_edges is a
  /// multiple of 64, otherwise just the low num_edges % 64 bits.
  static std::uint64_t TailMask(std::uint32_t num_edges) {
    const std::uint32_t rem = num_edges & 63;
    return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
  }

  /// Heap bytes owned by this mask; borrowed (mapped) words count zero.
  std::size_t MemoryUsageBytes() const { return words_.OwnedBytes(); }

 private:
  EdgeFilter(FlatStorage<std::uint64_t> words, std::uint32_t num_edges)
      : words_(std::move(words)), num_edges_(num_edges) {}

  using ComposeFn = void (*)(const std::uint64_t*, const std::uint64_t*,
                             std::uint64_t*, std::size_t);
  static EdgeFilter Compose(const EdgeFilter& a, const EdgeFilter& b,
                            ComposeFn op) {
    GRASP_CHECK_EQ(a.num_edges_, b.num_edges_)
        << "EdgeFilter compose over mismatched edge-id spaces";
    AlignedVector<std::uint64_t> out(NumWords(a.num_edges_));
    op(a.words_.data(), b.words_.data(), out.data(), out.size());
    if (!out.empty()) out.back() &= TailMask(a.num_edges_);
    return EdgeFilter(FlatStorage<std::uint64_t>(std::move(out)),
                      a.num_edges_);
  }

  FlatStorage<std::uint64_t> words_;
  std::uint32_t num_edges_ = 0;
};

/// A filtered view of one adjacency run: iterates the ids of `ids` whose
/// filter bit is set, skipping the rest inside the iterator (no copy, no
/// per-call allocation). Ids are probed through a word-caching cursor, so
/// an ascending CSR run loads each 64-id mask window once.
class FilteredIds {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    iterator(const std::uint32_t* cur, const std::uint32_t* end,
             const EdgeFilter* filter)
        : cur_(cur), end_(end), bits_(*filter) {
      SkipMasked();
    }
    /// End sentinel.
    explicit iterator(const std::uint32_t* end) : cur_(end), end_(end) {}

    std::uint32_t operator*() const { return *cur_; }
    iterator& operator++() {
      ++cur_;
      SkipMasked();
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    void SkipMasked() {
      while (cur_ != end_ && !bits_.Contains(*cur_)) ++cur_;
    }

    const std::uint32_t* cur_;
    const std::uint32_t* end_;
    EdgeFilter::Cursor bits_;
  };

  FilteredIds(std::span<const std::uint32_t> ids, const EdgeFilter& filter)
      : ids_(ids), filter_(&filter) {}

  iterator begin() const {
    return iterator(ids_.data(), ids_.data() + ids_.size(), filter_);
  }
  iterator end() const { return iterator(ids_.data() + ids_.size()); }
  bool empty() const { return begin() == end(); }

  /// Admitted ids in the run; O(run length).
  std::size_t count() const {
    std::size_t n = 0;
    for (auto it = begin(); it != end(); ++it) ++n;
    return n;
  }

 private:
  std::span<const std::uint32_t> ids_;
  const EdgeFilter* filter_;
};

/// Mask over an overlaid graph's edge-id space (graph::OverlayGraph /
/// summary::AugmentedGraph): ids below `base_count` test against a borrowed
/// long-lived base mask, overlay ids against a per-query local mask whose
/// bit i covers overlay edge base_count + i. This is how a predicate scope
/// composes with per-query augmentation without copying the base mask: the
/// base half is shared across queries (and cacheable), the overlay half is
/// O(augmentation) to build.
class OverlayEdgeFilter {
 public:
  /// `base` must outlive this object (it is typically owned by a scope
  /// cache entry); `overlay` is adopted.
  OverlayEdgeFilter(const EdgeFilter* base, EdgeFilter overlay,
                    std::uint32_t base_count)
      : base_(base), overlay_(std::move(overlay)), base_count_(base_count) {}

  bool Contains(std::uint32_t id) const {
    return id < base_count_ ? base_->Contains(id)
                            : overlay_.Contains(id - base_count_);
  }
  /// Overlay-id probe for callers that already know id >= base_count.
  bool ContainsOverlay(std::uint32_t id) const {
    return overlay_.Contains(id - base_count_);
  }

  const EdgeFilter& base() const { return *base_; }
  const EdgeFilter& overlay() const { return overlay_; }
  std::uint32_t base_count() const { return base_count_; }

 private:
  const EdgeFilter* base_;
  EdgeFilter overlay_;
  std::uint32_t base_count_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_EDGE_FILTER_H_
