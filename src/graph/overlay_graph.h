#ifndef GRASP_GRAPH_OVERLAY_GRAPH_H_
#define GRASP_GRAPH_OVERLAY_GRAPH_H_

#include <cstdint>
#include <iterator>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace grasp::graph {

/// Concatenation of two id spans, iterable with range-for. Adjacency of an
/// overlaid graph chains the base CSR run with the overlay extension list
/// without copying either.
class ChainedIds {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    iterator(const std::uint32_t* first, const std::uint32_t* first_end,
             const std::uint32_t* second)
        : cur_(first), first_end_(first_end), second_(second) {
      if (cur_ == first_end_) {
        cur_ = second_;
        in_second_ = true;
      }
    }

    std::uint32_t operator*() const { return *cur_; }
    iterator& operator++() {
      ++cur_;
      // The span flag keeps the end-of-first check from comparing pointers
      // of unrelated allocations: without it, a second-span element whose
      // address aliases first's one-past-end pointer would reset iteration.
      if (!in_second_ && cur_ == first_end_) {
        cur_ = second_;
        in_second_ = true;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_ && a.in_second_ == b.in_second_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    const std::uint32_t* cur_;
    const std::uint32_t* first_end_;
    const std::uint32_t* second_;
    bool in_second_ = false;
  };

  ChainedIds() = default;
  ChainedIds(std::span<const std::uint32_t> first,
             std::span<const std::uint32_t> second)
      : first_(first), second_(second) {}

  iterator begin() const {
    return iterator(first_.data(), first_.data() + first_.size(),
                    second_.data());
  }
  iterator end() const {
    return iterator(second_.data() + second_.size(),
                    second_.data() + second_.size(),
                    second_.data() + second_.size());
  }
  std::size_t size() const { return first_.size() + second_.size(); }
  bool empty() const { return first_.empty() && second_.empty(); }

 private:
  std::span<const std::uint32_t> first_;
  std::span<const std::uint32_t> second_;
};

/// A mutable per-query view over a borrowed immutable CsrGraph: overlay
/// nodes and edges are appended with ids past base.NumNodes() /
/// base.NumEdges(), base elements keep their ids, and incident iteration
/// chains the base CSR run with the overlay extension list. Building a view
/// costs O(added elements) — the base graph is never copied or touched.
///
/// The base graph must outlive the overlay. Only incidence (undirected,
/// self-loops once) is maintained: that is the iteration the summary-layer
/// exploration uses. Overlay edges may connect base nodes, overlay nodes,
/// or a mix.
template <typename NodeT, typename EdgeT>
class OverlayGraph {
 public:
  using Base = CsrGraph<NodeT, EdgeT>;

  explicit OverlayGraph(const Base& base)
      : base_(&base),
        base_nodes_(static_cast<std::uint32_t>(base.NumNodes())),
        base_edges_(static_cast<std::uint32_t>(base.NumEdges())) {}

  const Base& base() const { return *base_; }

  std::size_t NumNodes() const { return base_nodes_ + extra_nodes_.size(); }
  std::size_t NumEdges() const { return base_edges_ + extra_edges_.size(); }
  std::uint32_t base_nodes() const { return base_nodes_; }
  std::uint32_t base_edges() const { return base_edges_; }
  bool IsOverlayNode(std::uint32_t id) const { return id >= base_nodes_; }
  bool IsOverlayEdge(std::uint32_t id) const { return id >= base_edges_; }

  const NodeT& node(std::uint32_t id) const {
    return id < base_nodes_ ? base_->node(id) : extra_nodes_[id - base_nodes_];
  }
  const EdgeT& edge(std::uint32_t id) const {
    return id < base_edges_ ? base_->edge(id) : extra_edges_[id - base_edges_];
  }

  /// Mutable access to an overlay element (base elements are immutable).
  NodeT& overlay_node(std::uint32_t id) { return extra_nodes_[id - base_nodes_]; }
  EdgeT& overlay_edge(std::uint32_t id) { return extra_edges_[id - base_edges_]; }

  std::uint32_t AddNode(NodeT node) {
    const std::uint32_t id =
        base_nodes_ + static_cast<std::uint32_t>(extra_nodes_.size());
    extra_nodes_.push_back(std::move(node));
    overlay_incident_.emplace_back();
    return id;
  }

  /// Appends an edge and registers it in the incidence extension lists of
  /// both endpoints (once for a self-loop), mirroring the base contract.
  std::uint32_t AddEdge(EdgeT edge) {
    const std::uint32_t id =
        base_edges_ + static_cast<std::uint32_t>(extra_edges_.size());
    const std::uint32_t from = static_cast<std::uint32_t>(edge.from);
    const std::uint32_t to = static_cast<std::uint32_t>(edge.to);
    extra_edges_.push_back(std::move(edge));
    ExtensionOf(from).push_back(id);
    if (to != from) ExtensionOf(to).push_back(id);
    return id;
  }

  /// All edges touching `node`: the base run (for base nodes) chained with
  /// the overlay extension list.
  ChainedIds IncidentEdges(std::uint32_t node) const {
    if (node >= base_nodes_) {
      return ChainedIds({}, overlay_incident_[node - base_nodes_]);
    }
    auto it = base_incident_extra_.find(node);
    return ChainedIds(base_->IncidentEdges(node),
                      it == base_incident_extra_.end()
                          ? std::span<const std::uint32_t>{}
                          : std::span<const std::uint32_t>(it->second));
  }

  std::span<const NodeT> overlay_nodes() const { return extra_nodes_; }
  std::span<const EdgeT> overlay_edges() const { return extra_edges_; }

  /// Footprint of the overlay itself (the base is shared and accounted for
  /// where it is owned).
  std::size_t MemoryUsageBytes() const {
    std::size_t bytes = extra_nodes_.capacity() * sizeof(NodeT) +
                        extra_edges_.capacity() * sizeof(EdgeT);
    for (const auto& v : overlay_incident_) {
      bytes += v.capacity() * sizeof(std::uint32_t);
    }
    for (const auto& [node, v] : base_incident_extra_) {
      bytes += sizeof(node) + v.capacity() * sizeof(std::uint32_t);
    }
    return bytes;
  }

 private:
  std::vector<std::uint32_t>& ExtensionOf(std::uint32_t node) {
    if (node >= base_nodes_) return overlay_incident_[node - base_nodes_];
    return base_incident_extra_[node];
  }

  const Base* base_;
  std::uint32_t base_nodes_ = 0;
  std::uint32_t base_edges_ = 0;
  std::vector<NodeT> extra_nodes_;
  std::vector<EdgeT> extra_edges_;
  /// Incidence extension lists: dense for overlay nodes (indexed by
  /// id - base_nodes_), sparse for the base nodes overlay edges touch.
  std::vector<std::vector<std::uint32_t>> overlay_incident_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
      base_incident_extra_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_OVERLAY_GRAPH_H_
