#ifndef GRASP_GRAPH_OVERLAY_GRAPH_H_
#define GRASP_GRAPH_OVERLAY_GRAPH_H_

#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace grasp::graph {

/// Concatenation of two id spans, iterable with range-for. Adjacency of an
/// overlaid graph chains the base CSR run with the overlay extension list
/// without copying either. Hot loops that expand every neighbor should
/// iterate `first()` and `second()` back-to-back instead: the chained
/// iterator pays an end-of-first branch on every ++, which shows up at
/// cursor-pop frequency in the exploration.
class ChainedIds {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    iterator(const std::uint32_t* first, const std::uint32_t* first_end,
             const std::uint32_t* second)
        : cur_(first), first_end_(first_end), second_(second) {
      if (cur_ == first_end_) {
        cur_ = second_;
        in_second_ = true;
      }
    }

    std::uint32_t operator*() const { return *cur_; }
    iterator& operator++() {
      ++cur_;
      // The span flag keeps the end-of-first check from comparing pointers
      // of unrelated allocations: without it, a second-span element whose
      // address aliases first's one-past-end pointer would reset iteration.
      if (!in_second_ && cur_ == first_end_) {
        cur_ = second_;
        in_second_ = true;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_ && a.in_second_ == b.in_second_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    const std::uint32_t* cur_;
    const std::uint32_t* first_end_;
    const std::uint32_t* second_;
    bool in_second_ = false;
  };

  ChainedIds() = default;
  ChainedIds(std::span<const std::uint32_t> first,
             std::span<const std::uint32_t> second)
      : first_(first), second_(second) {}

  iterator begin() const {
    return iterator(first_.data(), first_.data() + first_.size(),
                    second_.data());
  }
  iterator end() const {
    return iterator(second_.data() + second_.size(),
                    second_.data() + second_.size(),
                    second_.data() + second_.size());
  }
  std::size_t size() const { return first_.size() + second_.size(); }
  bool empty() const { return first_.empty() && second_.empty(); }

  /// The two underlying spans, for callers that iterate them back-to-back.
  std::span<const std::uint32_t> first() const { return first_; }
  std::span<const std::uint32_t> second() const { return second_; }

 private:
  std::span<const std::uint32_t> first_;
  std::span<const std::uint32_t> second_;
};

/// A mutable per-query view over a borrowed immutable CsrGraph: overlay
/// nodes and edges are appended with ids past base.NumNodes() /
/// base.NumEdges(), base elements keep their ids, and incident iteration
/// chains the base CSR run with the overlay extension list. Building a view
/// costs O(added elements) — the base graph is never copied or touched.
///
/// The base graph must outlive the overlay. Only incidence (undirected,
/// self-loops once) is maintained: that is the iteration the summary-layer
/// exploration uses. Overlay edges may connect base nodes, overlay nodes,
/// or a mix.
///
/// Incidence extensions are epoch-stamped dense arrays indexed by node id:
/// the exploration's per-pop IncidentEdges probe is one array load plus an
/// epoch compare, never a hash. Reset() logically empties the overlay in
/// O(1) (epoch bump) while keeping every allocation, so a pooled overlay
/// reused across queries reaches a steady state with no per-query heap
/// traffic.
template <typename NodeT, typename EdgeT>
class OverlayGraph {
 public:
  using Base = CsrGraph<NodeT, EdgeT>;

  explicit OverlayGraph(const Base& base)
      : base_(&base),
        base_nodes_(static_cast<std::uint32_t>(base.NumNodes())),
        base_edges_(static_cast<std::uint32_t>(base.NumEdges())) {}

  const Base& base() const { return *base_; }

  std::size_t NumNodes() const { return base_nodes_ + extra_nodes_.size(); }
  std::size_t NumEdges() const { return base_edges_ + extra_edges_.size(); }
  std::uint32_t base_nodes() const { return base_nodes_; }
  std::uint32_t base_edges() const { return base_edges_; }
  bool IsOverlayNode(std::uint32_t id) const { return id >= base_nodes_; }
  bool IsOverlayEdge(std::uint32_t id) const { return id >= base_edges_; }

  const NodeT& node(std::uint32_t id) const {
    return id < base_nodes_ ? base_->node(id) : extra_nodes_[id - base_nodes_];
  }
  const EdgeT& edge(std::uint32_t id) const {
    return id < base_edges_ ? base_->edge(id) : extra_edges_[id - base_edges_];
  }

  /// Mutable access to an overlay element (base elements are immutable).
  NodeT& overlay_node(std::uint32_t id) { return extra_nodes_[id - base_nodes_]; }
  EdgeT& overlay_edge(std::uint32_t id) { return extra_edges_[id - base_edges_]; }

  std::uint32_t AddNode(NodeT node) {
    const std::uint32_t id =
        base_nodes_ + static_cast<std::uint32_t>(extra_nodes_.size());
    extra_nodes_.push_back(std::move(node));
    if (extra_nodes_.size() > overlay_incident_.size()) {
      overlay_incident_.emplace_back();
    }
    return id;
  }

  /// Appends an edge and registers it in the incidence extension lists of
  /// both endpoints (once for a self-loop), mirroring the base contract.
  std::uint32_t AddEdge(EdgeT edge) {
    const std::uint32_t id =
        base_edges_ + static_cast<std::uint32_t>(extra_edges_.size());
    const std::uint32_t from = static_cast<std::uint32_t>(edge.from);
    const std::uint32_t to = static_cast<std::uint32_t>(edge.to);
    extra_edges_.push_back(std::move(edge));
    AppendExtension(ExtensionOf(from), id);
    if (to != from) AppendExtension(ExtensionOf(to), id);
    return id;
  }

  /// All edges touching `node`: the base run (for base nodes) chained with
  /// the overlay extension list. One array index + epoch compare; the hot
  /// exploration pop never hashes.
  ChainedIds IncidentEdges(std::uint32_t node) const {
    if (node >= base_nodes_) {
      return ChainedIds({}, SpanOf(overlay_incident_[node - base_nodes_]));
    }
    return ChainedIds(base_->IncidentEdges(node),
                      base_extra_.empty() ? std::span<const std::uint32_t>{}
                                          : SpanOf(base_extra_[node]));
  }

  std::span<const NodeT> overlay_nodes() const { return extra_nodes_; }
  std::span<const EdgeT> overlay_edges() const { return extra_edges_; }

  /// Logically empties the overlay in O(1): element vectors are cleared
  /// (capacity retained) and the epoch bump invalidates every extension
  /// list without touching it. The base binding is unchanged, so a pooled
  /// overlay can be rebuilt for the next query with zero steady-state
  /// allocations.
  void Reset() {
    extra_nodes_.clear();
    extra_edges_.clear();
    ++epoch_;
  }

  /// Footprint of the overlay itself (the base is shared and accounted for
  /// where it is owned). Pooled capacity counts: the dense extension arrays
  /// are the price of the O(1) incidence probe and must show up in
  /// Fig. 6b-style reporting. O(1) — the per-list item capacity is tracked
  /// as lists grow, so release-time byte hints don't walk the dense arrays.
  std::size_t MemoryUsageBytes() const {
    return extra_nodes_.capacity() * sizeof(NodeT) +
           extra_edges_.capacity() * sizeof(EdgeT) +
           base_extra_.capacity() * sizeof(ExtensionList) +
           overlay_incident_.capacity() * sizeof(ExtensionList) +
           extension_items_bytes_;
  }

 private:
  /// A per-node incidence extension: `items` is valid only when `epoch`
  /// matches the overlay's current epoch — stale lists read as empty and
  /// are lazily recycled (capacity kept) on first append.
  struct ExtensionList {
    std::vector<std::uint32_t> items;
    std::uint64_t epoch = 0;
  };

  std::span<const std::uint32_t> SpanOf(const ExtensionList& l) const {
    return l.epoch == epoch_ ? std::span<const std::uint32_t>(l.items)
                             : std::span<const std::uint32_t>{};
  }

  std::vector<std::uint32_t>& ExtensionOf(std::uint32_t node) {
    if (base_extra_.empty() && node < base_nodes_) {
      // First base-node extension of this overlay's lifetime: materialize
      // the dense array once; Reset() keeps it for every later query.
      base_extra_.resize(base_nodes_);
    }
    ExtensionList& l = node >= base_nodes_
                           ? overlay_incident_[node - base_nodes_]
                           : base_extra_[node];
    if (l.epoch != epoch_) {
      l.items.clear();
      l.epoch = epoch_;
    }
    return l.items;
  }

  /// push_back with capacity-growth tracking: list capacities only ever
  /// grow (clear() keeps them), so a running byte counter keeps
  /// MemoryUsageBytes O(1) instead of walking every dense-array entry.
  void AppendExtension(std::vector<std::uint32_t>& items, std::uint32_t id) {
    const std::size_t before = items.capacity();
    items.push_back(id);
    extension_items_bytes_ +=
        (items.capacity() - before) * sizeof(std::uint32_t);
  }

  const Base* base_;
  std::uint32_t base_nodes_ = 0;
  std::uint32_t base_edges_ = 0;
  std::uint64_t epoch_ = 1;  ///< 0 is the never-valid stamp of fresh lists
  std::vector<NodeT> extra_nodes_;
  std::vector<EdgeT> extra_edges_;
  /// Incidence extension lists, dense by id: overlay_incident_ is indexed
  /// by id - base_nodes_ (high-water sized, entries outlive Reset), and
  /// base_extra_ by base node id (allocated on first use).
  std::vector<ExtensionList> overlay_incident_;
  std::vector<ExtensionList> base_extra_;
  /// Sum of item capacities across both extension arrays (monotone:
  /// Reset() clears sizes, never capacities).
  std::size_t extension_items_bytes_ = 0;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_OVERLAY_GRAPH_H_
