#ifndef GRASP_GRAPH_FILTERED_GRAPH_H_
#define GRASP_GRAPH_FILTERED_GRAPH_H_

#include <cstdint>
#include <span>

#include "graph/csr_graph.h"
#include "graph/edge_filter.h"

namespace grasp::graph {

/// A copy-free restricted view over a CsrGraph: the node and edge records
/// are the base graph's, and every adjacency accessor yields only the edge
/// ids admitted by the bound EdgeFilter (the osrm FilteredGraph idiom over
/// our CSR core). Construction is O(1) — the mask is built elsewhere, once
/// per filter shape, and can be shared by any number of views and threads.
///
/// Both the base graph and the filter must outlive the view. Adjacency
/// kinds not built on the base stay empty here too.
template <typename NodeT, typename EdgeT>
class FilteredGraph {
 public:
  using Base = CsrGraph<NodeT, EdgeT>;

  FilteredGraph(const Base& base, const EdgeFilter& filter)
      : base_(&base), filter_(&filter) {}

  const Base& base() const { return *base_; }
  const EdgeFilter& filter() const { return *filter_; }

  /// Base counts: ids keep their meaning across the view, so masked edges
  /// still exist — they are just never yielded by the adjacency accessors.
  std::size_t NumNodes() const { return base_->NumNodes(); }
  std::size_t NumEdges() const { return base_->NumEdges(); }
  /// Edges admitted by the filter (one popcount per mask word).
  std::size_t NumAdmittedEdges() const { return filter_->CountSet(); }

  const NodeT& node(std::uint32_t id) const { return base_->node(id); }
  const EdgeT& edge(std::uint32_t id) const { return base_->edge(id); }

  FilteredIds OutEdges(std::uint32_t node) const {
    return FilteredIds(base_->OutEdges(node), *filter_);
  }
  FilteredIds InEdges(std::uint32_t node) const {
    return FilteredIds(base_->InEdges(node), *filter_);
  }
  FilteredIds IncidentEdges(std::uint32_t node) const {
    return FilteredIds(base_->IncidentEdges(node), *filter_);
  }

  std::size_t OutDegree(std::uint32_t node) const {
    return OutEdges(node).count();
  }
  std::size_t InDegree(std::uint32_t node) const {
    return InEdges(node).count();
  }

 private:
  const Base* base_;
  const EdgeFilter* filter_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_FILTERED_GRAPH_H_
