#ifndef GRASP_GRAPH_CSR_H_
#define GRASP_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace grasp::graph {

/// One bucketed id list in compressed-sparse-row form: `offsets_` partitions
/// `values_` into `num_buckets` contiguous runs. This is the single
/// counting-sort adjacency builder shared by every graph structure in the
/// system (data-graph out/in edges, entity->class lists, summary incidence) —
/// it replaces the three divergent copies that used to live in
/// rdf::DataGraph, summary::SummaryGraph and summary::AugmentedGraph.
class CsrArray {
 public:
  CsrArray() = default;

  /// Builds the array with two sweeps over the emitted (bucket, value)
  /// pairs. `emit` is invoked twice with a sink callable; it must produce
  /// the same sequence both times:
  ///
  ///   CsrArray::Build(n, [&](auto&& sink) {
  ///     for (const Edge& e : edges) sink(e.from, edge_id);
  ///   });
  template <typename EmitFn>
  static CsrArray Build(std::uint32_t num_buckets, EmitFn&& emit) {
    CsrArray a;
    a.offsets_.assign(static_cast<std::size_t>(num_buckets) + 1, 0);
    emit([&a](std::uint32_t bucket, std::uint32_t) { ++a.offsets_[bucket + 1]; });
    for (std::uint32_t b = 0; b < num_buckets; ++b) {
      a.offsets_[b + 1] += a.offsets_[b];
    }
    a.values_.resize(a.offsets_[num_buckets]);
    std::vector<std::uint32_t> fill(a.offsets_.begin(), a.offsets_.end() - 1);
    emit([&a, &fill](std::uint32_t bucket, std::uint32_t value) {
      a.values_[fill[bucket]++] = value;
    });
    return a;
  }

  std::span<const std::uint32_t> operator[](std::uint32_t bucket) const {
    if (offsets_.empty()) return {};  // adjacency kind not built
    return {values_.data() + offsets_[bucket],
            values_.data() + offsets_[bucket + 1]};
  }

  std::size_t num_buckets() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_values() const { return values_.size(); }

  std::size_t MemoryUsageBytes() const {
    return (offsets_.capacity() + values_.capacity()) * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> values_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_CSR_H_
