#ifndef GRASP_GRAPH_CSR_H_
#define GRASP_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_storage.h"

namespace grasp::graph {

/// One bucketed id list in compressed-sparse-row form: `offsets_` partitions
/// `values_` into `num_buckets` contiguous runs. This is the single
/// counting-sort adjacency builder shared by every graph structure in the
/// system (data-graph out/in edges, entity->class lists, summary incidence) —
/// it replaces the three divergent copies that used to live in
/// rdf::DataGraph, summary::SummaryGraph and summary::AugmentedGraph.
///
/// Both arrays live in FlatStorage, so a CsrArray can either own its data
/// (built in memory) or borrow it zero-copy from an mmap-ed index snapshot
/// (FromParts).
class CsrArray {
 public:
  CsrArray() = default;

  /// Builds the array with two sweeps over the emitted (bucket, value)
  /// pairs. `emit` is invoked twice with a sink callable; it must produce
  /// the same sequence both times:
  ///
  ///   CsrArray::Build(n, [&](auto&& sink) {
  ///     for (const Edge& e : edges) sink(e.from, edge_id);
  ///   });
  template <typename EmitFn>
  static CsrArray Build(std::uint32_t num_buckets, EmitFn&& emit) {
    AlignedVector<std::uint32_t> offsets(
        static_cast<std::size_t>(num_buckets) + 1, 0);
    emit([&offsets](std::uint32_t bucket, std::uint32_t) {
      ++offsets[bucket + 1];
    });
    for (std::uint32_t b = 0; b < num_buckets; ++b) {
      offsets[b + 1] += offsets[b];
    }
    AlignedVector<std::uint32_t> values(offsets[num_buckets]);
    std::vector<std::uint32_t> fill(offsets.begin(), offsets.end() - 1);
    emit([&values, &fill](std::uint32_t bucket, std::uint32_t value) {
      values[fill[bucket]++] = value;
    });
    CsrArray a;
    a.offsets_ = FlatStorage<std::uint32_t>(std::move(offsets));
    a.values_ = FlatStorage<std::uint32_t>(std::move(values));
    return a;
  }

  /// Adopts prebuilt arrays (owned or borrowed from a snapshot mapping).
  /// The caller is responsible for structural validity: offsets must be
  /// monotone with offsets.back() == values.size() (the snapshot loader
  /// verifies this before constructing).
  static CsrArray FromParts(FlatStorage<std::uint32_t> offsets,
                            FlatStorage<std::uint32_t> values) {
    CsrArray a;
    a.offsets_ = std::move(offsets);
    a.values_ = std::move(values);
    return a;
  }

  std::span<const std::uint32_t> operator[](std::uint32_t bucket) const {
    if (offsets_.empty()) return {};  // adjacency kind not built
    return {values_.data() + offsets_[bucket],
            values_.data() + offsets_[bucket + 1]};
  }

  std::size_t num_buckets() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_values() const { return values_.size(); }

  /// The raw arrays, for snapshot serialization.
  std::span<const std::uint32_t> offsets() const { return offsets_.view(); }
  std::span<const std::uint32_t> values() const { return values_.view(); }

  /// Heap bytes owned by this array; borrowed (mmap-backed) storage counts
  /// zero here and is reported as mapped-snapshot bytes instead.
  std::size_t MemoryUsageBytes() const {
    return offsets_.OwnedBytes() + values_.OwnedBytes();
  }

 private:
  FlatStorage<std::uint32_t> offsets_;
  FlatStorage<std::uint32_t> values_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_CSR_H_
