#ifndef GRASP_GRAPH_CSR_GRAPH_H_
#define GRASP_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_storage.h"
#include "graph/csr.h"

namespace grasp::graph {

/// Which adjacency directions a CsrGraph materializes. Directed traversals
/// (the data-graph searchers) need out/in; the undirected cursor exploration
/// of the summary layer needs incidence. Building only what a layer uses
/// keeps the memory accounting honest.
enum AdjacencyMask : unsigned {
  kNoAdjacency = 0,
  kOutAdjacency = 1u << 0,
  kInAdjacency = 1u << 1,
  /// Undirected incidence: every edge appears at both endpoints, once for a
  /// self-loop (the iteration contract the exploration relies on).
  kIncidentAdjacency = 1u << 2,
};

/// Immutable graph core in compressed-sparse-row form: node and edge
/// records plus the requested adjacency arrays, built once and then only
/// read. `EdgeT` must expose `from`/`to` members convertible to uint32.
///
/// Every storage layer of the system backs its topology with this one
/// template (rdf::DataGraph, summary::SummaryGraph); per-query extensions
/// layer an OverlayGraph on top instead of copying (summary::AugmentedGraph).
/// All arrays live in FlatStorage, so a whole graph can be adopted zero-copy
/// from an mmap-ed index snapshot (FromParts) — a warm engine's topology is
/// the file mapping itself.
template <typename NodeT, typename EdgeT>
class CsrGraph {
 public:
  CsrGraph() = default;

  static CsrGraph Build(AlignedVector<NodeT> nodes, AlignedVector<EdgeT> edges,
                        unsigned adjacency) {
    CsrGraph g;
    g.nodes_ = FlatStorage<NodeT>(std::move(nodes));
    g.edges_ = FlatStorage<EdgeT>(std::move(edges));
    const std::uint32_t n = static_cast<std::uint32_t>(g.nodes_.size());
    if (adjacency & kOutAdjacency) {
      g.out_ = CsrArray::Build(n, [&g](auto&& sink) {
        for (std::uint32_t e = 0; e < g.edges_.size(); ++e) {
          sink(static_cast<std::uint32_t>(g.edges_[e].from), e);
        }
      });
    }
    if (adjacency & kInAdjacency) {
      g.in_ = CsrArray::Build(n, [&g](auto&& sink) {
        for (std::uint32_t e = 0; e < g.edges_.size(); ++e) {
          sink(static_cast<std::uint32_t>(g.edges_[e].to), e);
        }
      });
    }
    if (adjacency & kIncidentAdjacency) {
      g.incident_ = CsrArray::Build(n, [&g](auto&& sink) {
        for (std::uint32_t e = 0; e < g.edges_.size(); ++e) {
          sink(static_cast<std::uint32_t>(g.edges_[e].from), e);
          if (g.edges_[e].to != g.edges_[e].from) {
            sink(static_cast<std::uint32_t>(g.edges_[e].to), e);
          }
        }
      });
    }
    return g;
  }

  /// Adopts prebuilt node/edge records and adjacency arrays (owned or
  /// borrowed from a snapshot mapping). Adjacency kinds that were not built
  /// at save time stay empty, exactly as after Build with the same mask.
  /// The snapshot loader validates structural invariants (id bounds, CSR
  /// offset monotonicity) before calling this.
  static CsrGraph FromParts(FlatStorage<NodeT> nodes, FlatStorage<EdgeT> edges,
                            CsrArray out, CsrArray in, CsrArray incident) {
    CsrGraph g;
    g.nodes_ = std::move(nodes);
    g.edges_ = std::move(edges);
    g.out_ = std::move(out);
    g.in_ = std::move(in);
    g.incident_ = std::move(incident);
    return g;
  }

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  const NodeT& node(std::uint32_t id) const { return nodes_[id]; }
  const EdgeT& edge(std::uint32_t id) const { return edges_[id]; }
  std::span<const NodeT> nodes() const { return nodes_.view(); }
  std::span<const EdgeT> edges() const { return edges_.view(); }

  /// Edge ids leaving / entering / touching a node. Valid only for the
  /// adjacency kinds requested at Build time (empty otherwise).
  std::span<const std::uint32_t> OutEdges(std::uint32_t node) const {
    return out_[node];
  }
  std::span<const std::uint32_t> InEdges(std::uint32_t node) const {
    return in_[node];
  }
  std::span<const std::uint32_t> IncidentEdges(std::uint32_t node) const {
    return incident_[node];
  }

  /// The raw adjacency arrays, for snapshot serialization.
  const CsrArray& out_csr() const { return out_; }
  const CsrArray& in_csr() const { return in_; }
  const CsrArray& incident_csr() const { return incident_; }

  /// Heap bytes owned by this graph; mmap-backed storage counts zero here
  /// (see IndexStats::mapped_snapshot_bytes).
  std::size_t MemoryUsageBytes() const {
    return nodes_.OwnedBytes() + edges_.OwnedBytes() + out_.MemoryUsageBytes() +
           in_.MemoryUsageBytes() + incident_.MemoryUsageBytes();
  }

 private:
  FlatStorage<NodeT> nodes_;
  FlatStorage<EdgeT> edges_;
  CsrArray out_, in_, incident_;
};

}  // namespace grasp::graph

#endif  // GRASP_GRAPH_CSR_GRAPH_H_
