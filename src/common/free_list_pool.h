#ifndef GRASP_COMMON_FREE_LIST_POOL_H_
#define GRASP_COMMON_FREE_LIST_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace grasp {

/// A lock-free LIFO free list of reusable objects, for per-query state that
/// is expensive to re-create (exploration scratch, augmentation overlays).
///
/// Design: a fixed slot table (sized at construction, never reallocated, so
/// slot addresses are stable and unsynchronized readers of *other* slots
/// are impossible) plus a Treiber stack of free slot indices. The stack
/// head packs (tag << 32 | slot + 1); the tag increments on every
/// successful push/pop, which defeats the classic ABA interleaving where a
/// slot is popped, recycled and re-pushed between another thread's load and
/// CAS. Acquire pops LIFO — serial callers keep hitting the same warm slot,
/// which is what makes pooled steady-state reuse (grow_events freezing)
/// observable.
///
/// Slots are created lazily: the first Acquire that finds the free list
/// empty claims a fresh slot index via fetch_add and runs the caller's
/// factory. Once every slot is live and busy, Acquire degrades to a
/// transient heap object (released leases delete it), so the pool bounds
/// pooled memory without ever failing a caller.
template <typename T>
class FreeListPool {
 public:
  static constexpr std::uint32_t kTransient = 0xffffffffu;

  /// A checked-out object. `slot == kTransient` marks an overflow object
  /// the pool does not own. Return it with Release().
  struct Lease {
    T* object = nullptr;
    std::uint32_t slot = kTransient;
  };

  explicit FreeListPool(std::size_t capacity = 256) : slots_(capacity) {}

  FreeListPool(const FreeListPool&) = delete;
  FreeListPool& operator=(const FreeListPool&) = delete;

  ~FreeListPool() = default;  // slots own their objects; leases must be back

  /// Pops a pooled object, creating one via `make()` (returning
  /// std::unique_ptr<T>) when the free list is empty. Exception-safe: a
  /// throwing factory pushes the claimed slot back (object still null) and
  /// propagates; the next Acquire of that slot retries the factory — a
  /// bad_alloc storm must not ratchet slots out of the pool for good.
  template <typename Factory>
  Lease Acquire(Factory&& make) {
    // Failpoint: pretend the free list and the slot table are exhausted, so
    // tests can force the transient-overflow path (and the overflow counter
    // it feeds) without actually saturating a 256-slot pool.
    if (failpoint::ShouldFail("pool.acquire")) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return Lease{std::forward<Factory>(make)().release(), kTransient};
    }
    const std::uint32_t popped = Pop();
    if (popped != kTransient) {
      if (slots_[popped].object == nullptr) FillSlot(popped, make);
      // Checked out: the slot's footprint is unknown until release (the
      // holder mutates the object freely), so it reports zero meanwhile.
      slots_[popped].bytes_hint.store(0, std::memory_order_relaxed);
      return Lease{slots_[popped].object.get(), popped};
    }
    const std::uint32_t fresh =
        created_.fetch_add(1, std::memory_order_relaxed);
    if (fresh < slots_.size()) {
      // This thread owns slot `fresh` exclusively until it is released, so
      // the plain unique_ptr store cannot race; the Release/Acquire CAS
      // pair publishes it to later owners.
      FillSlot(fresh, make);
      return Lease{slots_[fresh].object.get(), fresh};
    }
    created_.store(static_cast<std::uint32_t>(slots_.size()),
                   std::memory_order_relaxed);
    // Transient overflow: every slot is live and checked out. Counted
    // because sustained overflow is the serving layer's early-warning
    // signal that concurrency has outgrown the pool (each overflow acquire
    // pays a real allocation instead of reuse).
    overflows_.fetch_add(1, std::memory_order_relaxed);
    return Lease{std::forward<Factory>(make)().release(), kTransient};
  }

  /// Returns a lease to the pool (transient leases are destroyed).
  /// `bytes_hint` is the object's footprint as measured by the caller —
  /// release is the one moment the object is exclusively owned and
  /// quiescent, so measuring it here lets PooledBytes() stay race-free.
  void Release(Lease lease, std::size_t bytes_hint = 0) {
    if (lease.slot == kTransient) {
      delete lease.object;
      return;
    }
    slots_[lease.slot].bytes_hint.store(bytes_hint,
                                        std::memory_order_relaxed);
    Push(lease.slot);
  }

  /// Sum of the byte hints recorded at release time. Safe to call from any
  /// thread at any time (plain atomic reads); checked-out slots contribute
  /// zero until their next release, so the figure lags in-flight work.
  std::size_t PooledBytes() const {
    std::size_t total = 0;
    const std::size_t n = created();
    for (std::size_t i = 0; i < n; ++i) {
      total += slots_[i].bytes_hint.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Number of Acquire() calls served by a transient heap allocation
  /// because the pool was exhausted (all slots live and checked out).
  /// Monotonic; safe to read from any thread.
  std::uint64_t overflow_count() const {
    return overflows_.load(std::memory_order_relaxed);
  }

  /// Objects the pool has materialized (never exceeds the capacity).
  std::size_t created() const {
    return std::min<std::size_t>(created_.load(std::memory_order_acquire),
                                 slots_.size());
  }

  /// The object in `slot`, or nullptr while the slot was never created.
  /// Unsynchronized: only meaningful while no Acquire/Release is in flight
  /// (tests, idle-time stats).
  const T* PeekSlot(std::size_t slot) const {
    return slot < created() ? slots_[slot].object.get() : nullptr;
  }

 private:
  /// Runs the factory for an exclusively-owned slot, returning the slot to
  /// the free list (empty) if the factory throws.
  template <typename Factory>
  void FillSlot(std::uint32_t slot, Factory& make) {
    try {
      slots_[slot].object = make();
    } catch (...) {
      Push(slot);
      throw;
    }
  }

  struct Slot {
    std::unique_ptr<T> object;
    /// Next free slot + 1 (0 = end of list); written only while the slot is
    /// being pushed, but racing poppers may still read it — the tagged CAS
    /// discards their stale value, the atomic keeps the read defined.
    std::atomic<std::uint32_t> next{0};
    /// Footprint recorded at release; 0 while checked out (see Release).
    std::atomic<std::size_t> bytes_hint{0};
  };

  static std::uint64_t PackHead(std::uint64_t tag, std::uint32_t index_plus_1) {
    return (tag << 32) | index_plus_1;
  }

  std::uint32_t Pop() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    while ((head & 0xffffffffu) != 0) {
      const std::uint32_t slot = static_cast<std::uint32_t>(head & 0xffffffffu) - 1;
      const std::uint32_t next = slots_[slot].next.load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, PackHead((head >> 32) + 1, next),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return slot;
      }
    }
    return kTransient;
  }

  void Push(std::uint32_t slot) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      slots_[slot].next.store(static_cast<std::uint32_t>(head & 0xffffffffu),
                              std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, PackHead((head >> 32) + 1, slot + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint32_t> created_{0};
  std::atomic<std::uint64_t> overflows_{0};
};

}  // namespace grasp

#endif  // GRASP_COMMON_FREE_LIST_POOL_H_
