#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace grasp {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t begin = 0;
  while (true) {
    std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      pieces.emplace_back(text.substr(begin));
      return pieces;
    }
    pieces.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t begin = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > begin) pieces.emplace_back(text.substr(begin, i - begin));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%zu B", bytes);
  return StrFormat("%.1f %s", value, units[unit]);
}

}  // namespace grasp
