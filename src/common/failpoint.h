#ifndef GRASP_COMMON_FAILPOINT_H_
#define GRASP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace grasp::failpoint {

/// Deterministic fault injection for robustness tests: named sites in
/// production code ask Fire("name") whether they should fail this time, and
/// tests (or the GRASP_FAILPOINTS environment variable) arm sites with a
/// fire budget. Unarmed cost is one relaxed atomic load — the global armed
/// count is zero, so Fire() returns before touching any table — which is
/// cheap enough to leave the hooks compiled into release builds; failure
/// paths that only ever run in tests are failure paths that don't work.
///
/// Arming:
///   failpoint::Arm("snapshot.mmap", 2);     // fail the next 2 hits
///   failpoint::Arm("pool.acquire", kAlways);  // fail every hit
///   GRASP_FAILPOINTS="snapshot.mmap=2,pool.acquire=always" grasp_tool ...
///
/// The environment variable is parsed once, on the first Fire()/Arm()/
/// HitCount() call; ReloadFromEnv() re-reads it for tests that set it after
/// startup. All functions are thread-safe.

/// Arm count meaning "fire on every hit until disarmed".
inline constexpr int kAlways = -1;

/// True when the site named `name` should fail this call. Decrements the
/// armed budget; counts the hit either way (see HitCount).
bool Fire(const char* name);

/// Arms `name` to fire on its next `count` hits (kAlways = until disarmed).
/// count = 0 disarms.
void Arm(const std::string& name, int count);

/// Disarms one site / all sites. Hit counters survive (DisarmAll resets
/// them too, so test fixtures get a clean slate in one call).
void Disarm(const std::string& name);
void DisarmAll();

/// Number of times Fire(name) was called (fired or not) since the site was
/// first seen. Zero for never-hit sites. Sites reached through ShouldFail()
/// are only counted while at least one site is armed — the unarmed fast
/// path skips the registry entirely.
std::uint64_t HitCount(const std::string& name);

/// Re-parses GRASP_FAILPOINTS, replacing all current arming. Entries are
/// comma-separated name=count pairs; count "always" arms forever.
void ReloadFromEnv();

namespace internal {
/// Non-zero while any site is armed; the Fire() fast path.
extern std::atomic<int> armed_sites;
}  // namespace internal

/// Fast-path wrapper: callers pay one relaxed load when nothing is armed.
inline bool ShouldFail(const char* name) {
  if (internal::armed_sites.load(std::memory_order_relaxed) == 0) return false;
  return Fire(name);
}

}  // namespace grasp::failpoint

#endif  // GRASP_COMMON_FAILPOINT_H_
