#ifndef GRASP_COMMON_LOGGING_H_
#define GRASP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace grasp {

/// Severity levels for the lightweight logging facility.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Process-wide minimum severity; messages below it are discarded.
/// Defaults to kWarning so library users are not spammed.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-style message collector. Emits on destruction; kFatal aborts the
/// process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage stream when a log statement is compiled out.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace grasp

#define GRASP_LOG_INTERNAL_(severity)                                        \
  ::grasp::internal_logging::LogMessage(::grasp::LogSeverity::k##severity, \
                                        __FILE__, __LINE__)                  \
      .stream()

/// Usage: GRASP_LOG(Info) << "message" << value;
#define GRASP_LOG(severity) GRASP_LOG_INTERNAL_(severity)

/// Aborts with a message when `condition` does not hold. Always on, in all
/// build types: database-style internal invariant enforcement.
#define GRASP_CHECK(condition)                                 \
  (condition) ? (void)0                                        \
              : ::grasp::internal_logging::LogMessageVoidify() & \
                    GRASP_LOG_INTERNAL_(Fatal)                 \
                        << "Check failed: " #condition " "

#define GRASP_CHECK_OP_(a, b, op)                                     \
  GRASP_CHECK((a)op(b)) << "(" << #a << " " << #op << " " << #b << ") "
#define GRASP_CHECK_EQ(a, b) GRASP_CHECK_OP_(a, b, ==)
#define GRASP_CHECK_NE(a, b) GRASP_CHECK_OP_(a, b, !=)
#define GRASP_CHECK_LT(a, b) GRASP_CHECK_OP_(a, b, <)
#define GRASP_CHECK_LE(a, b) GRASP_CHECK_OP_(a, b, <=)
#define GRASP_CHECK_GT(a, b) GRASP_CHECK_OP_(a, b, >)
#define GRASP_CHECK_GE(a, b) GRASP_CHECK_OP_(a, b, >=)

/// Checks that a Status-returning expression is OK.
#define GRASP_CHECK_OK(expr)                                      \
  do {                                                            \
    ::grasp::Status grasp_check_status_ = (expr);                 \
    GRASP_CHECK(grasp_check_status_.ok())                         \
        << grasp_check_status_.ToString();                        \
  } while (false)

#endif  // GRASP_COMMON_LOGGING_H_
