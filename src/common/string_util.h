#ifndef GRASP_COMMON_STRING_UTIL_H_
#define GRASP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace grasp {

/// Splits `text` on any occurrence of `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on runs of ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view text);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a byte count as a human-readable string ("1.2 MB").
std::string HumanBytes(std::size_t bytes);

}  // namespace grasp

#endif  // GRASP_COMMON_STRING_UTIL_H_
