#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace grasp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieBecauseResultError(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace grasp
