#ifndef GRASP_COMMON_METRICS_H_
#define GRASP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grasp::metrics {

/// Dependency-free metrics primitives for the serving stack. Design goals,
/// in order:
///
///  1. The hot path is wait-free: Record()/Increment()/Set() are a handful
///     of relaxed atomic RMWs, safe from any thread, never taking a lock —
///     a query must never stall on observability.
///  2. Reads are safe any time: snapshots are taken with relaxed loads and
///     are internally consistent where it matters (a histogram's count is
///     *derived* from its bucket sums, so cumulative bucket counts, the
///     +Inf bucket, and _count can never disagree within one scrape).
///  3. Exposition is first-class: the Registry renders the Prometheus text
///     format (HELP/TYPE, labels, cumulative le buckets) and a JSON form
///     for /statsz, both built on std::string — no fixed buffers, no
///     silent truncation no matter how large the counters grow.
///
/// Everything registered lives for the Registry's lifetime; Get* returns
/// stable pointers that callers cache once and hammer lock-free forever.

/// Monotonic counter. Increment-only by contract (Prometheus "counter");
/// nothing enforces it beyond the API surface.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (Prometheus "gauge"). Double-valued so derived
/// figures (EWMA rates) fit alongside integral ones (connection counts).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale histogram over non-negative integer samples
/// (latencies are recorded in microseconds; the Registry applies a unit
/// scale at exposition time).
///
/// Bucket layout (HDR-style log2 with 4 linear sub-buckets per octave):
/// values below 8 get exact unit buckets; a value v >= 8 with highest set
/// bit o lands in one of four equal sub-buckets of [2^o, 2^(o+1)). The
/// relative bucket width is therefore at most 25%, and percentile
/// extraction interpolates inside the bucket, so a reported quantile is
/// deterministic and within one sub-bucket of the true sample quantile.
/// The last bucket absorbs overflow (values past ~469 seconds in µs).
///
/// Record() is wait-free: one fetch_add on the bucket and one on the value
/// sum. Snapshots are mergeable across histograms with the same layout
/// (there is only one layout), which is what per-shard aggregation will
/// lean on later.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 2;           // 4 sub-buckets/octave
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr int kNumBuckets = 112;            // incl. overflow bucket

  /// Bucket index for `value`; the top bucket absorbs overflow.
  static int BucketFor(std::uint64_t value);
  /// Inclusive [lower, upper] sample range of bucket `i`. The overflow
  /// bucket reports upper == lower (its true upper bound is unknown).
  static std::uint64_t BucketLowerBound(int i);
  static std::uint64_t BucketUpperBound(int i);

  /// Point-in-time copy of a histogram. `count` is derived from the bucket
  /// array, so it always equals the +Inf cumulative count; `sum` is read
  /// separately and may lag in-flight recordings by a few samples.
  struct Snapshot {
    std::array<std::uint64_t, kNumBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    void Merge(const Snapshot& other);

    /// Quantile extraction, p in [0, 100] (clamped). Nearest-rank walk of
    /// the cumulative buckets, linearly interpolated across the samples
    /// inside the bucket. p=0 is the low edge of the first occupied
    /// bucket, p=100 the high edge of the last (its low edge when that
    /// bucket holds a single sample); empty snapshots report 0.
    double Percentile(double p) const;
  };

  void Record(std::uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  /// Convenience for duration samples: clamps negatives to 0 and rounds.
  void RecordMicros(double micros) {
    Record(micros <= 0.0 ? 0 : static_cast<std::uint64_t>(micros + 0.5));
  }

  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Nearest-rank percentile of an ascending-sorted sample, p in [0, 100]
/// (clamped — p=0 is the minimum, p=100 the maximum, never a wrapped
/// index). The sole percentile definition for client-side tooling, so the
/// loadgen and the tests cannot drift apart.
double PercentileOfSorted(std::span<const double> sorted, double p);

/// Label set attached to one metric instance, e.g. {{"lane", "fast"}}.
/// Order is preserved in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metric families with labeled instances. Registration (Get*) takes
/// a mutex and is meant for setup paths; the returned pointers are stable
/// for the Registry's lifetime and are the lock-free hot-path handles.
/// Re-Get-ing the same (name, labels) returns the same instance, so
/// idempotent wiring is safe.
///
/// Histogram families carry a `scale` factor applied to bucket bounds,
/// sums, and percentiles at exposition time (recorded-unit -> exposed
/// unit; latency histograms record µs and expose seconds via scale=1e-6).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const Labels& labels = {}, double scale = 1.0);

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE per family,
  /// one sample line per instance, histograms as cumulative le buckets
  /// (empty buckets elided; +Inf, _sum, _count always present).
  std::string RenderPrometheus() const;

  /// Appends comma-separated `"name":value` / `"name{a=b}":{...}` JSON
  /// entries (no surrounding braces) so multiple registries can be stitched
  /// into one /statsz object. Histograms render as
  /// {"count":N,"sum":S,"p50":…,"p95":…,"p99":…} in the scaled unit.
  void AppendJsonEntries(std::string* out, bool* first) const;

 private:
  template <typename T>
  struct Family {
    std::string help;
    double scale = 1.0;  // used by histogram families only
    /// Keyed by the rendered label block ('{a="b",c="d"}' or ""), which is
    /// also exactly what the exposition emits.
    std::map<std::string, std::unique_ptr<T>> instances;
  };

  template <typename T>
  T* GetIn(std::map<std::string, Family<T>>* families, std::string_view name,
           std::string_view help, const Labels& labels, double scale);

  mutable std::mutex mutex_;
  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<Histogram>> histograms_;
};

}  // namespace grasp::metrics

#endif  // GRASP_COMMON_METRICS_H_
