#include "common/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace grasp::failpoint {
namespace internal {
std::atomic<int> armed_sites{0};
}  // namespace internal

namespace {

struct Site {
  int remaining = 0;  ///< fire budget; kAlways = unbounded
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  bool env_loaded = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

/// Number of sites with a non-zero fire budget; mirrored into the atomic
/// fast-path counter. Caller holds the registry mutex.
void RecountArmedLocked(Registry& r) {
  int armed = 0;
  for (const auto& [name, site] : r.sites) {
    if (site.remaining != 0) ++armed;
  }
  internal::armed_sites.store(armed, std::memory_order_relaxed);
}

void ParseEnvLocked(Registry& r) {
  r.env_loaded = true;
  const char* env = std::getenv("GRASP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string_view spec(env);
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // malformed
    const std::string name(entry.substr(0, eq));
    const std::string_view value = entry.substr(eq + 1);
    int count = 0;
    if (value == "always") {
      count = kAlways;
    } else {
      count = std::atoi(std::string(value).c_str());
      if (count <= 0) continue;
    }
    r.sites[name].remaining = count;
  }
  RecountArmedLocked(r);
}

void EnsureEnvLocked(Registry& r) {
  if (!r.env_loaded) ParseEnvLocked(r);
}

/// Eager bootstrap: GRASP_FAILPOINTS must arm sites before the first
/// ShouldFail(), whose unarmed fast path would otherwise never reach the
/// lazy parse — env-armed failpoints in a binary that only uses
/// ShouldFail() would silently never fire.
[[maybe_unused]] const bool env_bootstrapped = [] {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLocked(r);
  return true;
}();

}  // namespace

bool Fire(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLocked(r);
  Site& site = r.sites[name];
  ++site.hits;
  if (site.remaining == 0) return false;
  if (site.remaining > 0 && --site.remaining == 0) RecountArmedLocked(r);
  return true;
}

void Arm(const std::string& name, int count) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLocked(r);
  r.sites[name].remaining = count;
  RecountArmedLocked(r);
}

void Disarm(const std::string& name) { Arm(name, 0); }

void DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;  // an explicit reset also discards pending env spec
  r.sites.clear();
  internal::armed_sites.store(0, std::memory_order_relaxed);
}

std::uint64_t HitCount(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvLocked(r);
  auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void ReloadFromEnv() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  // "Replacing all current arming": budgets reset (hit counters survive),
  // then whatever the variable says now — including nothing — applies.
  for (auto& [name, site] : r.sites) site.remaining = 0;
  ParseEnvLocked(r);
  RecountArmedLocked(r);
}

}  // namespace grasp::failpoint
