#ifndef GRASP_COMMON_TIMER_H_
#define GRASP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace grasp {

/// Monotonic wall-clock stopwatch used by benchmarks and the engine's
/// statistics. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace grasp

#endif  // GRASP_COMMON_TIMER_H_
