#ifndef GRASP_COMMON_RNG_H_
#define GRASP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace grasp {

/// Deterministic, seedable pseudo-random generator (xoshiro256**). Used by the
/// dataset generators and property tests so every run is reproducible from a
/// seed printed in the output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`. Heavier
/// ranks (small indices) are more likely; used to model skew such as author
/// productivity in the DBLP-like generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draws one sample using the provided generator.
  std::size_t Sample(Rng* rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace grasp

#endif  // GRASP_COMMON_RNG_H_
