#ifndef GRASP_COMMON_ALIGNED_H_
#define GRASP_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace grasp {

/// Cache-line / vector-register alignment for every owned flat array. One
/// constant shared by the allocator and the SIMD kernels: 64 bytes covers a
/// full AVX-512 register and exactly one cache line, so kernels never split
/// a load across lines at the start of a buffer.
inline constexpr std::size_t kFlatAlignment = 64;

/// Minimal aligned allocator (C++17 aligned operator new). All instances
/// compare equal, so containers can move buffers between them freely.
template <typename T, std::size_t Alignment = kFlatAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{
      Alignment > alignof(T) ? Alignment : alignof(T)};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, kAlign);
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// A std::vector whose heap buffer starts on a kFlatAlignment boundary.
/// This is the owned-storage type behind FlatStorage and the pooled scratch
/// arrays the SIMD kernels sweep; mapped snapshot sections are page-aligned
/// already, so with this every kernel input is at least 64-byte aligned at
/// the buffer start (interior subspans can still start anywhere — kernels
/// use unaligned loads and win from the alignment via full-line prefetch).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace grasp

#endif  // GRASP_COMMON_ALIGNED_H_
