#ifndef GRASP_COMMON_HASH_H_
#define GRASP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace grasp {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer. Used by the
/// open-addressing tables on the exploration hot path, where std::hash (an
/// identity function for integers on common standard libraries) would cluster
/// the sequential element ids into long probe chains.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes an arbitrary pack of hashable values into one size_t.
template <typename... Ts>
std::size_t HashValues(const Ts&... values) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  ((seed = HashCombine(seed, std::hash<Ts>{}(values))), ...);
  return seed;
}

/// std::hash specialization helper for pairs (used by unordered containers
/// keyed on id pairs).
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashValues(p.first, p.second);
  }
};

}  // namespace grasp

#endif  // GRASP_COMMON_HASH_H_
