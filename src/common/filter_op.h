#ifndef GRASP_COMMON_FILTER_OP_H_
#define GRASP_COMMON_FILTER_OP_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace grasp {

/// Comparison operator of a numeric filter condition — the "special query
/// operators such as filters" extension the paper sketches in Sec. IX.
enum class FilterOp {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kNotEqual,
};

/// SPARQL spelling of the operator.
constexpr std::string_view FilterOpSymbol(FilterOp op) {
  switch (op) {
    case FilterOp::kLess:
      return "<";
    case FilterOp::kLessEqual:
      return "<=";
    case FilterOp::kGreater:
      return ">";
    case FilterOp::kGreaterEqual:
      return ">=";
    case FilterOp::kNotEqual:
      return "!=";
  }
  return "?";
}

/// Applies the comparison.
constexpr bool EvalFilterOp(FilterOp op, double lhs, double rhs) {
  switch (op) {
    case FilterOp::kLess:
      return lhs < rhs;
    case FilterOp::kLessEqual:
      return lhs <= rhs;
    case FilterOp::kGreater:
      return lhs > rhs;
    case FilterOp::kGreaterEqual:
      return lhs >= rhs;
    case FilterOp::kNotEqual:
      return lhs != rhs;
  }
  return false;
}

/// A parsed filter keyword such as ">2000" or "<=1995".
struct FilterSpec {
  FilterOp op;
  double value;
};

/// Recognizes operator-prefixed numeric keywords: `>2000`, `>=10`,
/// `<1995.5`, `<=0`, `!=3`. Whitespace between the operator and the number
/// is allowed. Returns nullopt for everything else (plain keywords).
inline std::optional<FilterSpec> ParseFilterKeyword(std::string_view keyword) {
  FilterOp op;
  std::size_t skip = 0;
  if (keyword.rfind(">=", 0) == 0) {
    op = FilterOp::kGreaterEqual;
    skip = 2;
  } else if (keyword.rfind("<=", 0) == 0) {
    op = FilterOp::kLessEqual;
    skip = 2;
  } else if (keyword.rfind("!=", 0) == 0) {
    op = FilterOp::kNotEqual;
    skip = 2;
  } else if (!keyword.empty() && keyword[0] == '>') {
    op = FilterOp::kGreater;
    skip = 1;
  } else if (!keyword.empty() && keyword[0] == '<') {
    op = FilterOp::kLess;
    skip = 1;
  } else {
    return std::nullopt;
  }
  const std::string rest(keyword.substr(skip));
  char* end = nullptr;
  const double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return std::nullopt;  // no digits at all
  while (*end != '\0') {
    if (*end != ' ' && *end != '\t') return std::nullopt;  // trailing junk
    ++end;
  }
  return FilterSpec{op, value};
}

/// Parses a literal as a double; nullopt when the text is not numeric.
inline std::optional<double> ParseNumericLiteral(std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str()) return std::nullopt;
  while (*end != '\0') {
    if (*end != ' ' && *end != '\t') return std::nullopt;
    ++end;
  }
  return value;
}

}  // namespace grasp

#endif  // GRASP_COMMON_FILTER_OP_H_
