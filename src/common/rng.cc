#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace grasp {
namespace {

// splitmix64; used only to expand the user seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  GRASP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  GRASP_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GRASP_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace grasp
