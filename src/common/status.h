#ifndef GRASP_COMMON_STATUS_H_
#define GRASP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace grasp {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  /// The caller (or the serving layer on its behalf) abandoned the work
  /// before it finished; partial results may still accompany this code.
  kCancelled,
  /// A per-query deadline expired before the work could finish.
  kDeadlineExceeded,
  /// Admission control shed the request: the serving queue is full. Retry
  /// later (responses carry a retry-after hint) — shedding is deliberate
  /// load protection, not a fault.
  kOverloaded,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier used instead of exceptions throughout the
/// library (the project follows the Google C++ style guide, which bans
/// exceptions). An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A `kOk` code
  /// produces an OK status and the message is dropped.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Modeled after
/// absl::StatusOr<T>; accessing the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status. Constructing from an OK
  /// status is a bug and is normalized to an internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the carried status; OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<Status, T> repr_;
};

namespace internal_status {
[[noreturn]] void DieBecauseResultError(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) {
    internal_status::DieBecauseResultError(std::get<Status>(repr_));
  }
}

}  // namespace grasp

/// Propagates a non-OK Status from an expression to the caller.
#define GRASP_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::grasp::Status grasp_status_tmp_ = (expr);    \
    if (!grasp_status_tmp_.ok()) return grasp_status_tmp_; \
  } while (false)

/// Evaluates a Result<T> expression, propagating an error status and
/// otherwise assigning the value to `lhs`.
#define GRASP_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  GRASP_ASSIGN_OR_RETURN_IMPL_(                              \
      GRASP_STATUS_CONCAT_(grasp_result_, __LINE__), lhs, rexpr)

#define GRASP_STATUS_CONCAT_INNER_(a, b) a##b
#define GRASP_STATUS_CONCAT_(a, b) GRASP_STATUS_CONCAT_INNER_(a, b)
#define GRASP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // GRASP_COMMON_STATUS_H_
