#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grasp::metrics {
namespace {

/// Shortest round-trippable rendering of a double that is also valid in
/// both exposition formats (no inf/nan leaks into JSON).
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest form that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      return probe;
    }
  }
  return buf;
}

void AppendEscapedLabelValue(std::string* out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// '{a="b",c="d"}' for the exposition, "" when unlabeled. Doubles as the
/// instance key inside a family.
std::string RenderLabelBlock(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendEscapedLabelValue(&out, v);
    out += '"';
  }
  out += '}';
  return out;
}

/// `{a="b"}` -> `{a=b}` — quote-free label block for /statsz JSON keys.
std::string JsonKeySuffix(const std::string& label_block) {
  std::string out;
  out.reserve(label_block.size());
  for (char c : label_block) {
    if (c != '"') out += c;
  }
  return out;
}

/// Splices extra labels (the `le` of a bucket line) into a rendered block.
std::string WithExtraLabel(const std::string& label_block,
                           const std::string& extra) {
  if (label_block.empty()) return "{" + extra + "}";
  std::string out = label_block;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

int Histogram::BucketFor(std::uint64_t value) {
  if (value < 2 * kSubBuckets) return static_cast<int>(value);
  const int octave = std::bit_width(value) - 1;  // >= kSubBucketBits + 1
  const int shift = octave - kSubBucketBits;
  const auto sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  const int bucket =
      static_cast<int>(kSubBuckets) * (shift - 1) + sub + 2 * kSubBuckets;
  return std::min(bucket, kNumBuckets - 1);
}

std::uint64_t Histogram::BucketLowerBound(int i) {
  if (i < static_cast<int>(2 * kSubBuckets)) return static_cast<std::uint64_t>(i);
  const int shift = (i - 2 * static_cast<int>(kSubBuckets)) / kSubBuckets + 1;
  const int sub = (i - 2 * static_cast<int>(kSubBuckets)) % kSubBuckets;
  return (kSubBuckets + static_cast<std::uint64_t>(sub)) << shift;
}

std::uint64_t Histogram::BucketUpperBound(int i) {
  if (i < static_cast<int>(2 * kSubBuckets)) return static_cast<std::uint64_t>(i);
  if (i >= kNumBuckets - 1) return BucketLowerBound(i);  // overflow bucket
  const int shift = (i - 2 * static_cast<int>(kSubBuckets)) / kSubBuckets + 1;
  return BucketLowerBound(i) + (std::uint64_t{1} << shift) - 1;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * count)), 1, count);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      const auto lower = static_cast<double>(BucketLowerBound(i));
      const auto upper = static_cast<double>(BucketUpperBound(i));
      const auto into = static_cast<double>(rank - cumulative - 1);
      const double span = static_cast<double>(buckets[i] - 1);
      return span > 0.0 ? lower + (upper - lower) * into / span : lower;
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
}

double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto n = sorted.size();
  const auto rank = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n))),
      1, n);
  return sorted[rank - 1];
}

template <typename T>
T* Registry::GetIn(std::map<std::string, Family<T>>* families,
                   std::string_view name, std::string_view help,
                   const Labels& labels, double scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [fit, inserted] = families->try_emplace(std::string(name));
  if (inserted) {
    fit->second.help = std::string(help);
    fit->second.scale = scale;
  }
  auto& instances = fit->second.instances;
  const std::string key = RenderLabelBlock(labels);
  auto it = instances.find(key);
  if (it == instances.end()) {
    it = instances.emplace(key, std::make_unique<T>()).first;
  }
  return it->second.get();
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              const Labels& labels) {
  return GetIn(&counters_, name, help, labels, 1.0);
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          const Labels& labels) {
  return GetIn(&gauges_, name, help, labels, 1.0);
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  const Labels& labels, double scale) {
  return GetIn(&histograms_, name, help, labels, scale);
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : counters_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " counter\n";
    for (const auto& [label_block, counter] : family.instances) {
      out += name + label_block + " " + std::to_string(counter->value()) + "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [label_block, gauge] : family.instances) {
      out += name + label_block + " " + FormatDouble(gauge->value()) + "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [label_block, histogram] : family.instances) {
      const auto snap = histogram->TakeSnapshot();
      std::uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
        if (snap.buckets[i] == 0) continue;
        cumulative += snap.buckets[i];
        const double le =
            static_cast<double>(Histogram::BucketUpperBound(i)) * family.scale;
        out += name + "_bucket" +
               WithExtraLabel(label_block, "le=\"" + FormatDouble(le) + "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket" + WithExtraLabel(label_block, "le=\"+Inf\"") +
             " " + std::to_string(snap.count) + "\n";
      out += name + "_sum" + label_block + " " +
             FormatDouble(static_cast<double>(snap.sum) * family.scale) + "\n";
      out += name + "_count" + label_block + " " + std::to_string(snap.count) +
             "\n";
    }
  }
  return out;
}

void Registry::AppendJsonEntries(std::string* out, bool* first) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto comma = [out, first] {
    if (!*first) *out += ',';
    *first = false;
  };
  for (const auto& [name, family] : counters_) {
    for (const auto& [label_block, counter] : family.instances) {
      comma();
      *out += "\"" + name + JsonKeySuffix(label_block) +
              "\":" + std::to_string(counter->value());
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [label_block, gauge] : family.instances) {
      comma();
      *out += "\"" + name + JsonKeySuffix(label_block) +
              "\":" + FormatDouble(gauge->value());
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [label_block, histogram] : family.instances) {
      const auto snap = histogram->TakeSnapshot();
      comma();
      *out += "\"" + name + JsonKeySuffix(label_block) + "\":{\"count\":" +
              std::to_string(snap.count) + ",\"sum\":" +
              FormatDouble(static_cast<double>(snap.sum) * family.scale) +
              ",\"p50\":" + FormatDouble(snap.Percentile(50) * family.scale) +
              ",\"p95\":" + FormatDouble(snap.Percentile(95) * family.scale) +
              ",\"p99\":" + FormatDouble(snap.Percentile(99) * family.scale) +
              "}";
    }
  }
}

}  // namespace grasp::metrics
