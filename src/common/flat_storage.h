#ifndef GRASP_COMMON_FLAT_STORAGE_H_
#define GRASP_COMMON_FLAT_STORAGE_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>

#include "common/aligned.h"

namespace grasp {

/// Storage for a flat immutable array that is either *owned* (an
/// `AlignedVector` built in memory) or *borrowed* (a `std::span` over an
/// external buffer, typically an mmap-ed index snapshot). All reads go
/// through one span, so the owning and borrowed cases are indistinguishable
/// to callers; the distinction only shows up in memory accounting
/// (OwnedBytes) and lifetime (a borrowed view must not outlive its mapping).
///
/// This is the storage abstraction that lets every CSR array in the system
/// point straight into a snapshot file instead of copying it at load time.
/// Owned buffers start on a kFlatAlignment (64-byte) boundary, which the
/// SIMD kernels rely on for full-cache-line sweeps.
template <typename T>
class FlatStorage {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatStorage elements must be trivially copyable (they are "
                "written to and mapped back from snapshot files)");

 public:
  FlatStorage() = default;

  /// Takes ownership of `owned`.
  explicit FlatStorage(AlignedVector<T> owned)
      : owned_(std::move(owned)), view_(owned_) {}

  /// Borrows `view`; the underlying buffer must outlive this object.
  static FlatStorage Borrow(std::span<const T> view) {
    FlatStorage s;
    s.view_ = view;
    return s;
  }

  // Moves are safe with the default implementations: moving a std::vector
  // transfers its heap buffer without relocating it, so the copied span
  // still points at live storage owned by the destination.
  FlatStorage(FlatStorage&&) noexcept = default;
  FlatStorage& operator=(FlatStorage&&) noexcept = default;

  // Copying always materializes an owned copy of the viewed elements —
  // copies never alias a mapping they do not keep alive (the materialized
  // augmentation build copies the base CSR through this).
  FlatStorage(const FlatStorage& other)
      : owned_(other.view_.begin(), other.view_.end()), view_(owned_) {}
  FlatStorage& operator=(const FlatStorage& other) {
    if (this != &other) {
      owned_.assign(other.view_.begin(), other.view_.end());
      view_ = owned_;
    }
    return *this;
  }

  const T* data() const { return view_.data(); }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](std::size_t i) const { return view_[i]; }
  const T* begin() const { return view_.data(); }
  const T* end() const { return view_.data() + view_.size(); }

  std::span<const T> view() const { return view_; }
  operator std::span<const T>() const { return view_; }  // NOLINT

  /// True when the elements live in an external buffer (snapshot mapping).
  bool borrowed() const { return owned_.empty() && !view_.empty(); }

  /// Heap bytes owned by this object; 0 for a borrowed view. Mapped bytes
  /// are accounted separately (IndexStats::mapped_snapshot_bytes) so
  /// resident-memory reporting stays honest in warm-started engines.
  std::size_t OwnedBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  AlignedVector<T> owned_;
  std::span<const T> view_;
};

}  // namespace grasp

#endif  // GRASP_COMMON_FLAT_STORAGE_H_
