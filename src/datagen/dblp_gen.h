#ifndef GRASP_DATAGEN_DBLP_GEN_H_
#define GRASP_DATAGEN_DBLP_GEN_H_

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::datagen {

/// Namespace used by the DBLP-like generator.
inline constexpr char kDblpNs[] = "http://dblp.example.org/";

/// Parameters of the synthetic bibliographic dataset standing in for the
/// real DBLP dump (26M triples in the paper; size here is a parameter —
/// see DESIGN.md §5). The generator reproduces DBLP's *shape*: very few
/// classes and relations, a huge number of V-vertices (titles, names,
/// years), Zipfian author productivity, and venue/citation structure.
struct DblpOptions {
  std::uint64_t seed = 42;
  std::size_t num_authors = 1500;
  std::size_t num_publications = 5000;
  std::size_t num_venues = 40;
  std::size_t num_institutes = 60;
  /// Average number of citation edges per publication.
  double citations_per_publication = 1.2;
  int year_min = 1990;
  int year_max = 2008;
  /// Zipf exponent for author productivity.
  double author_skew = 1.1;
};

/// Generates the dataset into `dictionary` / `store` (store left
/// unfinalized so callers can add more data). Alongside the random bulk, a
/// deterministic set of *anchor* entities (well-known authors, venues,
/// institutes and publications) is always emitted; the evaluation workloads
/// of workload.h reference exactly these anchors, which makes the
/// gold-standard queries of Fig. 4 realizable on every generated instance.
void GenerateDblp(const DblpOptions& options, rdf::Dictionary* dictionary,
                  rdf::TripleStore* store);

}  // namespace grasp::datagen

#endif  // GRASP_DATAGEN_DBLP_GEN_H_
