#include "datagen/lubm_gen.h"

#include <array>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/gen_util.h"

namespace grasp::datagen {
namespace {

constexpr std::array<std::string_view, 12> kResearchAreas = {
    "databases",        "artificial intelligence", "networks",
    "graphics",         "theory",                  "systems",
    "security",         "bioinformatics",          "compilers",
    "machine learning", "robotics",                "visualization"};

constexpr std::array<std::string_view, 3> kProfessorRanks = {
    "FullProfessor", "AssociateProfessor", "AssistantProfessor"};

}  // namespace

void GenerateLubm(const LubmOptions& options, rdf::Dictionary* dictionary,
                  rdf::TripleStore* store) {
  GraphBuilder b(kLubmNs, dictionary, store);
  Rng rng(options.seed);

  // Class hierarchy (subset of the LUBM ontology).
  b.Subclass("FullProfessor", "Professor");
  b.Subclass("AssociateProfessor", "Professor");
  b.Subclass("AssistantProfessor", "Professor");
  b.Subclass("Professor", "Faculty");
  b.Subclass("Lecturer", "Faculty");
  b.Subclass("Faculty", "Person");
  b.Subclass("UndergraduateStudent", "Student");
  b.Subclass("GraduateStudent", "Student");
  b.Subclass("Student", "Person");
  b.Subclass("GraduateCourse", "Course");
  b.Subclass("University", "Organization");
  b.Subclass("Department", "Organization");
  b.Subclass("ResearchGroup", "Organization");

  std::size_t person_counter = 0, course_counter = 0, pub_counter = 0;

  for (std::size_t u = 0; u < options.num_universities; ++u) {
    const rdf::TermId university = b.Iri(StrFormat("university%zu", u));
    b.Type(university, "University");
    b.Attr(university, "name", StrFormat("University%zu", u));

    for (std::size_t d = 0; d < options.departments_per_university; ++d) {
      const rdf::TermId dept = b.Iri(StrFormat("dept%zu_%zu", u, d));
      b.Type(dept, "Department");
      b.Attr(dept, "name",
             StrFormat("Department of %s",
                       std::string(kResearchAreas[(u + d) %
                                                  kResearchAreas.size()])
                           .c_str()));
      b.Rel(dept, "subOrganizationOf", university);

      const rdf::TermId group = b.Iri(StrFormat("group%zu_%zu", u, d));
      b.Type(group, "ResearchGroup");
      b.Attr(group, "name", StrFormat("Research Group %zu %zu", u, d));
      b.Rel(group, "subOrganizationOf", dept);

      // Faculty.
      std::vector<rdf::TermId> professors;
      std::vector<rdf::TermId> courses;
      for (std::size_t c = 0; c < options.courses_per_department; ++c) {
        const rdf::TermId course = b.Iri(StrFormat("course%zu", course_counter));
        const bool graduate = rng.NextBernoulli(0.4);
        b.Type(course, graduate ? "GraduateCourse" : "Course");
        b.Attr(course, "name",
               StrFormat("Course%zu %s", course_counter,
                         std::string(kResearchAreas[rng.NextBelow(
                                         kResearchAreas.size())])
                             .c_str()));
        courses.push_back(course);
        ++course_counter;
      }

      for (std::size_t p = 0; p < options.professors_per_department; ++p) {
        const rdf::TermId prof = b.Iri(StrFormat("person%zu", person_counter));
        const std::string_view rank =
            kProfessorRanks[rng.NextBelow(kProfessorRanks.size())];
        b.Type(prof, rank);
        b.Attr(prof, "name", StrFormat("Professor%zu", person_counter));
        b.Attr(prof, "emailAddress",
               StrFormat("prof%zu@university%zu.edu", person_counter, u));
        b.Attr(prof, "researchInterest",
               kResearchAreas[rng.NextBelow(kResearchAreas.size())]);
        b.Rel(prof, "worksFor", dept);
        if (p == 0) b.Rel(prof, "headOf", dept);
        b.Rel(prof, "degreeFrom",
              b.Iri(StrFormat("university%llu",
                              static_cast<unsigned long long>(
                                  rng.NextBelow(options.num_universities)))));
        for (int t = 0; t < 2 && !courses.empty(); ++t) {
          b.Rel(prof, "teacherOf", courses[rng.NextBelow(courses.size())]);
        }
        for (std::size_t pub = 0; pub < options.publications_per_professor;
             ++pub) {
          const rdf::TermId publication =
              b.Iri(StrFormat("lubmpub%zu", pub_counter));
          b.Type(publication, "Publication");
          b.Attr(publication, "name",
                 StrFormat("Publication%zu about %s", pub_counter,
                           std::string(kResearchAreas[rng.NextBelow(
                                           kResearchAreas.size())])
                               .c_str()));
          b.Rel(publication, "publicationAuthor", prof);
          ++pub_counter;
        }
        professors.push_back(prof);
        ++person_counter;
      }

      // Students.
      for (std::size_t s = 0; s < options.students_per_department; ++s) {
        const rdf::TermId student =
            b.Iri(StrFormat("person%zu", person_counter));
        const bool graduate = rng.NextBernoulli(0.3);
        b.Type(student, graduate ? "GraduateStudent" : "UndergraduateStudent");
        b.Attr(student, "name", StrFormat("Student%zu", person_counter));
        b.Rel(student, "memberOf", dept);
        if (graduate && !professors.empty()) {
          b.Rel(student, "advisor",
                professors[rng.NextBelow(professors.size())]);
        }
        const std::size_t takes = 1 + rng.NextBelow(3);
        for (std::size_t t = 0; t < takes && !courses.empty(); ++t) {
          b.Rel(student, "takesCourse", courses[rng.NextBelow(courses.size())]);
        }
        ++person_counter;
      }
    }
  }
}

}  // namespace grasp::datagen
