#ifndef GRASP_DATAGEN_TAP_GEN_H_
#define GRASP_DATAGEN_TAP_GEN_H_

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::datagen {

inline constexpr char kTapNs[] = "http://tap.example.org/";

/// Parameters of the TAP-like generator. TAP is Stanford's broad "shallow
/// knowledge" ontology (sports, geography, music, movies, ...): *many
/// classes, few instances each* — the opposite regime from DBLP. Fig. 6b
/// uses TAP to show that the graph-index (summary) size is driven by the
/// number of classes and edge labels, so the class count is the first-class
/// knob here.
struct TapOptions {
  std::uint64_t seed = 11;
  /// Number of leaf classes (TAP has hundreds).
  std::size_t num_classes = 240;
  /// Instances per leaf class (TAP is shallow: few instances per class).
  std::size_t instances_per_class = 4;
  /// Relation edges per instance.
  std::size_t relations_per_instance = 2;
};

/// Generates the dataset (store left unfinalized).
void GenerateTap(const TapOptions& options, rdf::Dictionary* dictionary,
                 rdf::TripleStore* store);

}  // namespace grasp::datagen

#endif  // GRASP_DATAGEN_TAP_GEN_H_
