#include "datagen/dblp_gen.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/gen_util.h"

namespace grasp::datagen {
namespace {

constexpr std::array<std::string_view, 20> kFirstNames = {
    "james", "maria",  "wei",    "anna",   "peter", "laura", "raj",
    "chen",  "ivan",   "sofia",  "david",  "emma",  "lucas", "nina",
    "oscar", "tomas",  "yuki",   "carlos", "elena", "marco"};

constexpr std::array<std::string_view, 28> kLastNames = {
    "mueller", "smith",    "zhang", "kumar",  "rossi",  "novak", "tanaka",
    "garcia",  "kim",      "singh", "petrov", "larsen", "silva", "dubois",
    "moreau",  "andersen", "costa", "weber",  "fischer", "schmidt",
    "johnson", "brown",    "lopez", "martin", "lee",    "chen",  "wang",
    "davis"};

// Vocabulary of the random bulk titles. Deliberately disjoint from the
// distinctive words of the anchor titles below (keyword, search, stream,
// join, xml, schema, ...): the Fig. 4 workload uses those words as keywords,
// and reserving them for the anchors keeps the gold-standard interpretation
// identifiable instead of drowning it in same-cost lookalike titles.
constexpr std::array<std::string_view, 56> kTitleWords = {
    "graph",       "query",       "database",   "federated",   "columnar",
    "versioned",   "efficient",   "distributed", "parallel",   "materialized",
    "processing",  "optimization", "concurrency", "storage",   "provenance",
    "retrieval",   "ranking",     "analysis",   "mining",      "sharding",
    "deduplication", "normalization", "rdf",    "encryption",  "auditing",
    "telemetry",   "structure",   "cache",      "memory",      "visualization",
    "aggregation", "clustering",  "classification", "scalable", "crowdsourcing",
    "adaptive",    "incremental", "approximate", "exact",      "probabilistic",
    "temporal",    "spatial",     "relational", "object",      "model",
    "language",    "compiler",    "workload",   "benchmark",   "evaluation",
    "recovery",    "replication", "partition",  "sampling",    "estimation",
    "compression"};

constexpr std::array<std::string_view, 16> kInstituteNames = {
    "University of Karlsruhe",  "Shanghai Jiao Tong University",
    "Stanford University",      "MIT",
    "University of Wisconsin",  "Microsoft Research",
    "Google Research",          "INRIA",
    "TU Delft",                 "University of Washington",
    "ETH Zurich",               "Max Planck Institute",
    "IBM Research",             "Carnegie Mellon University",
    "University of Toronto",    "National University of Singapore"};

struct AnchorAuthor {
  std::string_view name;
  std::string_view institute;
};

constexpr std::array<AnchorAuthor, 12> kAnchorAuthors = {{
    {"Philipp Cimiano", "AIFB"},
    {"Thanh Tran", "AIFB"},
    {"Sebastian Rudolph", "AIFB"},
    {"Rudi Studer", "AIFB"},
    {"Haofen Wang", "Shanghai Jiao Tong University"},
    {"Jennifer Widom", "Stanford University"},
    {"Hector Garcia Molina", "Stanford University"},
    {"Alon Halevy", "Google Research"},
    {"Michael Stonebraker", "MIT"},
    {"Jim Gray", "Microsoft Research"},
    {"Serge Abiteboul", "INRIA"},
    {"David DeWitt", "University of Wisconsin"},
}};

struct AnchorVenue {
  std::string_view name;
  std::string_view kind;  // Conference or Journal
};

constexpr std::array<AnchorVenue, 8> kAnchorVenues = {{
    {"ICDE", "Conference"},
    {"VLDB", "Conference"},
    {"SIGMOD", "Conference"},
    {"WWW", "Conference"},
    {"ISWC", "Conference"},
    {"TKDE", "Journal"},
    {"VLDB Journal", "Journal"},
    {"TODS", "Journal"},
}};

struct AnchorPub {
  std::string_view title;
  int year;
  std::string_view venue;
  std::string_view kind;  // Article or InProceedings
  std::array<int, 4> authors;  // indexes into kAnchorAuthors, -1 = unused
};

constexpr std::array<AnchorPub, 15> kAnchorPubs = {{
    {"keyword search on graph shaped rdf data", 2008, "ICDE",
     "InProceedings", {1, 4, 2, 0}},
    {"efficient rdf storage and retrieval engines", 2006, "VLDB",
     "InProceedings", {4, 3, -1, -1}},
    {"algorithm analysis survey", 1999, "TKDE", "Article", {9, -1, -1, -1}},
    {"semantic web services composition", 2004, "WWW", "InProceedings",
     {3, 0, -1, -1}},
    {"query optimization techniques overview", 1995, "SIGMOD",
     "InProceedings", {5, -1, -1, -1}},
    {"data integration systems architecture", 2003, "VLDB", "InProceedings",
     {7, -1, -1, -1}},
    {"stream processing engine design", 2005, "SIGMOD", "InProceedings",
     {8, -1, -1, -1}},
    {"xml indexing methods comparison", 2002, "VLDB", "InProceedings",
     {6, -1, -1, -1}},
    {"machine learning applications for data systems", 2007, "ICDE",
     "InProceedings", {11, -1, -1, -1}},
    {"distributed transaction management protocols", 2001, "TODS", "Article",
     {10, -1, -1, -1}},
    {"ontology learning from text collections", 2006, "ISWC",
     "InProceedings", {0, -1, -1, -1}},
    {"top k join query processing", 2008, "ICDE", "InProceedings",
     {1, 2, -1, -1}},
    {"information extraction pipelines", 2007, "WWW", "InProceedings",
     {0, 3, -1, -1}},
    {"schema matching automation", 2000, "VLDB", "InProceedings", {7, 5, -1, -1}},
    {"sensor network data aggregation", 2004, "ICDE", "InProceedings",
     {8, -1, -1, -1}},
}};

std::string Cap(std::string_view word) {
  std::string out(word);
  if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  return out;
}

}  // namespace

void GenerateDblp(const DblpOptions& options, rdf::Dictionary* dictionary,
                  rdf::TripleStore* store) {
  GraphBuilder b(kDblpNs, dictionary, store);
  Rng rng(options.seed);

  // Schema.
  b.Subclass("Article", "Publication");
  b.Subclass("InProceedings", "Publication");
  b.Subclass("Conference", "Venue");
  b.Subclass("Journal", "Venue");

  // Institutes: anchor institutes (referenced by anchor authors) + bulk.
  std::vector<rdf::TermId> institutes;
  auto add_institute = [&](std::string_view name, std::size_t idx) {
    const rdf::TermId inst = b.Iri(StrFormat("institute%zu", idx));
    b.Type(inst, "Institute");
    b.Attr(inst, "name", name);
    institutes.push_back(inst);
    return inst;
  };
  std::size_t institute_count = 0;
  add_institute("AIFB", institute_count++);
  for (const auto& name : kInstituteNames) {
    add_institute(name, institute_count++);
  }
  while (institute_count < options.num_institutes) {
    const auto& city = kLastNames[rng.NextBelow(kLastNames.size())];
    add_institute(StrFormat("University of %s", Cap(city).c_str()),
                  institute_count++);
  }

  auto institute_by_name = [&](std::string_view name) -> rdf::TermId {
    if (name == "AIFB") return institutes[0];
    for (std::size_t i = 0; i < kInstituteNames.size(); ++i) {
      if (kInstituteNames[i] == name) return institutes[i + 1];
    }
    return institutes[0];
  };

  // Authors: anchors first, then bulk.
  std::vector<rdf::TermId> authors;
  for (std::size_t i = 0; i < kAnchorAuthors.size(); ++i) {
    const rdf::TermId person = b.Iri(StrFormat("author%zu", i));
    b.Type(person, "Person");
    b.Attr(person, "name", kAnchorAuthors[i].name);
    b.Rel(person, "worksAt", institute_by_name(kAnchorAuthors[i].institute));
    authors.push_back(person);
  }
  while (authors.size() < options.num_authors) {
    const std::size_t i = authors.size();
    const rdf::TermId person = b.Iri(StrFormat("author%zu", i));
    b.Type(person, "Person");
    b.Attr(person, "name",
           StrFormat("%s %s",
                     Cap(kFirstNames[rng.NextBelow(kFirstNames.size())]).c_str(),
                     Cap(kLastNames[rng.NextBelow(kLastNames.size())]).c_str()));
    if (rng.NextBernoulli(0.7)) {
      b.Rel(person, "worksAt",
            institutes[rng.NextBelow(institutes.size())]);
    }
    authors.push_back(person);
  }

  // Venues: anchors + bulk.
  std::vector<rdf::TermId> venues;
  for (std::size_t i = 0; i < kAnchorVenues.size(); ++i) {
    const rdf::TermId venue = b.Iri(StrFormat("venue%zu", i));
    b.Type(venue, "Venue");
    b.Type(venue, std::string(kAnchorVenues[i].kind));
    b.Attr(venue, "name", kAnchorVenues[i].name);
    venues.push_back(venue);
  }
  while (venues.size() < options.num_venues) {
    const std::size_t i = venues.size();
    const rdf::TermId venue = b.Iri(StrFormat("venue%zu", i));
    const bool journal = rng.NextBernoulli(0.3);
    b.Type(venue, "Venue");
    b.Type(venue, journal ? "Journal" : "Conference");
    b.Attr(venue, "name",
           StrFormat("%s on %s %s", journal ? "Journal" : "Symposium",
                     Cap(kTitleWords[rng.NextBelow(kTitleWords.size())]).c_str(),
                     Cap(kTitleWords[rng.NextBelow(kTitleWords.size())]).c_str()));
    venues.push_back(venue);
  }

  auto venue_by_name = [&](std::string_view name) -> rdf::TermId {
    for (std::size_t i = 0; i < kAnchorVenues.size(); ++i) {
      if (kAnchorVenues[i].name == name) return venues[i];
    }
    return venues[0];
  };

  // Publications: anchors first, then bulk with Zipfian author choice.
  std::vector<rdf::TermId> publications;
  auto add_publication = [&](std::string_view title, int year,
                             rdf::TermId venue, std::string_view kind,
                             const std::vector<rdf::TermId>& pub_authors) {
    const std::size_t i = publications.size();
    const rdf::TermId pub = b.Iri(StrFormat("pub%zu", i));
    b.Type(pub, "Publication");
    b.Type(pub, std::string(kind));
    b.Attr(pub, "title", title);
    b.Attr(pub, "year", StrFormat("%d", year));
    b.Rel(pub, "publishedIn", venue);
    for (rdf::TermId a : pub_authors) b.Rel(pub, "author", a);
    publications.push_back(pub);
    return pub;
  };

  for (const AnchorPub& anchor : kAnchorPubs) {
    std::vector<rdf::TermId> pub_authors;
    for (int idx : anchor.authors) {
      if (idx >= 0) pub_authors.push_back(authors[static_cast<std::size_t>(idx)]);
    }
    add_publication(anchor.title, anchor.year, venue_by_name(anchor.venue),
                    anchor.kind, pub_authors);
  }

  // Bulk publications draw authors from the non-anchor pool only, so the
  // anchors' publication lists stay exactly as defined above and the Fig. 4
  // gold-standard queries remain predictable.
  const std::size_t bulk_author_base = kAnchorAuthors.size();
  ZipfSampler author_zipf(
      std::max<std::size_t>(1, authors.size() - bulk_author_base),
      options.author_skew);
  while (publications.size() < options.num_publications) {
    std::string title;
    const std::size_t words = 3 + rng.NextBelow(4);
    for (std::size_t w = 0; w < words; ++w) {
      if (w > 0) title += ' ';
      title += kTitleWords[rng.NextBelow(kTitleWords.size())];
    }
    const int year = static_cast<int>(
        rng.NextInRange(options.year_min, options.year_max));
    std::vector<rdf::TermId> pub_authors;
    const std::size_t num = 1 + rng.NextBelow(4);
    for (std::size_t a = 0; a < num; ++a) {
      const rdf::TermId candidate =
          authors[std::min(authors.size() - 1,
                           bulk_author_base + author_zipf.Sample(&rng))];
      bool dup = false;
      for (rdf::TermId existing : pub_authors) dup = dup || existing == candidate;
      if (!dup) pub_authors.push_back(candidate);
    }
    add_publication(title, year, venues[rng.NextBelow(venues.size())],
                    rng.NextBernoulli(0.3) ? "Article" : "InProceedings",
                    pub_authors);
  }

  // Deterministic citations among the anchors, so the workload queries
  // about what an anchor paper cites are realizable regardless of the seed
  // (random citations below only ever cite *earlier* ids, and the anchors
  // come first). Indexes refer to kAnchorPubs order.
  constexpr std::pair<int, int> kAnchorCitations[] = {
      {0, 1},   // keyword search paper cites the rdf storage engines paper
      {0, 10},  // ... and the ontology learning paper
      {11, 0},  // the top-k join paper cites the keyword search paper
      {8, 2},   // machine learning systems cites algorithm analysis survey
      {13, 5},  // schema matching cites data integration
  };
  for (const auto& [from, to] : kAnchorCitations) {
    b.Rel(publications[static_cast<std::size_t>(from)], "cites",
          publications[static_cast<std::size_t>(to)]);
  }

  // Random citations (to strictly earlier publication ids, acyclic).
  const std::size_t total_citations = static_cast<std::size_t>(
      options.citations_per_publication *
      static_cast<double>(publications.size()));
  for (std::size_t c = 0; c < total_citations; ++c) {
    const std::size_t from = 1 + rng.NextBelow(publications.size() - 1);
    const std::size_t to = rng.NextBelow(from);
    b.Rel(publications[from], "cites", publications[to]);
  }
}

}  // namespace grasp::datagen
