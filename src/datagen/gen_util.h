#ifndef GRASP_DATAGEN_GEN_UTIL_H_
#define GRASP_DATAGEN_GEN_UTIL_H_

#include <string>
#include <string_view>

#include "rdf/data_graph.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::datagen {

/// Small helper shared by the dataset generators: namespaced IRI/literal
/// interning and triple emission against one Dictionary/TripleStore pair.
class GraphBuilder {
 public:
  GraphBuilder(std::string ns, rdf::Dictionary* dictionary,
               rdf::TripleStore* store)
      : ns_(std::move(ns)),
        dictionary_(dictionary),
        store_(store),
        type_(dictionary->InternIri(rdf::Vocabulary().type_iri)),
        subclass_(dictionary->InternIri(rdf::Vocabulary().subclass_iri)) {}

  rdf::TermId Iri(std::string_view local) {
    return dictionary_->InternIri(ns_ + std::string(local));
  }
  rdf::TermId Lit(std::string_view value) {
    return dictionary_->InternLiteral(value);
  }

  void Add(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    store_->Add(s, p, o);
  }
  void Rel(rdf::TermId s, std::string_view predicate, rdf::TermId o) {
    store_->Add(s, Iri(predicate), o);
  }
  void Attr(rdf::TermId s, std::string_view predicate,
            std::string_view value) {
    store_->Add(s, Iri(predicate), Lit(value));
  }
  void Type(rdf::TermId entity, std::string_view class_local) {
    store_->Add(entity, type_, Iri(class_local));
  }
  void Subclass(std::string_view narrow, std::string_view broad) {
    store_->Add(Iri(narrow), subclass_, Iri(broad));
  }

  rdf::TermId type_term() const { return type_; }

 private:
  std::string ns_;
  rdf::Dictionary* dictionary_;
  rdf::TripleStore* store_;
  rdf::TermId type_;
  rdf::TermId subclass_;
};

}  // namespace grasp::datagen

#endif  // GRASP_DATAGEN_GEN_UTIL_H_
