#include "datagen/tap_gen.h"

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/gen_util.h"

namespace grasp::datagen {
namespace {

/// Top-level domains, mirroring TAP's breadth.
constexpr std::array<std::string_view, 12> kDomains = {
    "Sports",   "Geography", "Music",    "Movies",  "Literature",
    "Science",  "Politics",  "Business", "Food",    "Technology",
    "History",  "Art"};

/// Concept stems combined with domains to mint leaf classes
/// ("SportsTeam", "MusicAlbum", ...).
constexpr std::array<std::string_view, 20> kConcepts = {
    "Team",    "Player",  "Event",   "Venue",   "Award",
    "Album",   "Band",    "Song",    "City",    "Country",
    "Mountain", "River",  "Company", "Product", "Person",
    "Club",    "League",  "Festival", "Museum", "Organization"};

constexpr std::array<std::string_view, 8> kRelations = {
    "relatedTo", "locatedIn", "memberOf", "participatesIn",
    "createdBy", "partOf",    "ownedBy",  "influencedBy"};

}  // namespace

void GenerateTap(const TapOptions& options, rdf::Dictionary* dictionary,
                 rdf::TripleStore* store) {
  GraphBuilder b(kTapNs, dictionary, store);
  Rng rng(options.seed);

  // Mint leaf classes Domain+Concept (+ numeric suffix beyond the cross
  // product) under a shallow hierarchy: leaf -> domain class -> Resource.
  std::vector<std::string> leaf_classes;
  for (const auto& domain : kDomains) {
    b.Subclass(std::string(domain) + "Thing", "Resource");
  }
  std::size_t minted = 0;
  while (leaf_classes.size() < options.num_classes) {
    const auto& domain = kDomains[minted % kDomains.size()];
    const auto& stem = kConcepts[(minted / kDomains.size()) % kConcepts.size()];
    std::string name = std::string(domain) + std::string(stem);
    const std::size_t round = minted / (kDomains.size() * kConcepts.size());
    if (round > 0) name += StrFormat("%zu", round);
    b.Subclass(name, std::string(domain) + "Thing");
    leaf_classes.push_back(std::move(name));
    ++minted;
  }

  // Few instances per class, each named and lightly connected.
  std::vector<rdf::TermId> instances;
  for (std::size_t c = 0; c < leaf_classes.size(); ++c) {
    for (std::size_t i = 0; i < options.instances_per_class; ++i) {
      const rdf::TermId entity =
          b.Iri(StrFormat("entity%zu_%zu", c, i));
      b.Type(entity, leaf_classes[c]);
      b.Attr(entity, "name",
             StrFormat("%s %zu", leaf_classes[c].c_str(), i));
      if (rng.NextBernoulli(0.5)) {
        b.Attr(entity, "description",
               StrFormat("a %s item number %zu", leaf_classes[c].c_str(), i));
      }
      instances.push_back(entity);
    }
  }
  for (const rdf::TermId from : instances) {
    for (std::size_t r = 0; r < options.relations_per_instance; ++r) {
      b.Rel(from, kRelations[rng.NextBelow(kRelations.size())],
            instances[rng.NextBelow(instances.size())]);
    }
  }
}

}  // namespace grasp::datagen
