#ifndef GRASP_DATAGEN_WORKLOAD_H_
#define GRASP_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "rdf/dictionary.h"

namespace grasp::datagen {

/// Term of a gold-standard atom, written against local names so the
/// workload stays independent of interned ids.
struct GoldTerm {
  static GoldTerm Var(std::string name) {
    return GoldTerm{true, std::move(name), false};
  }
  static GoldTerm Cls(std::string local) {
    return GoldTerm{false, std::move(local), false};
  }
  static GoldTerm Lit(std::string text) {
    return GoldTerm{false, std::move(text), true};
  }

  bool is_var = false;
  std::string text;       ///< variable name, class/entity local name, or literal
  bool is_literal = false;
};

/// One gold atom; predicate "type" stands for rdf:type.
struct GoldAtom {
  std::string predicate;
  GoldTerm subject;
  GoldTerm object;
};

/// One evaluation query: keywords, the natural-language information need the
/// assessors provided (Sec. VII-A), and — when defined — the gold-standard
/// conjunctive query that satisfies the need. A generated query is "correct"
/// iff it is isomorphic to the gold query.
struct WorkloadQuery {
  std::string id;
  std::vector<std::string> keywords;
  std::string description;
  std::vector<GoldAtom> gold;
};

/// The 30 DBLP keyword queries of the effectiveness study (Fig. 4). The
/// paper collected these from 12 assessors; this reproduction ships an
/// executable equivalent against the generator's anchor entities (see
/// DESIGN.md §5).
std::vector<WorkloadQuery> DblpEffectivenessWorkload();

/// Q1-Q10 of the performance comparison (Fig. 5), ordered by keyword count
/// (2 up to 6) as in the original study.
std::vector<WorkloadQuery> DblpPerformanceWorkload();

/// The 9 TAP queries of the effectiveness study.
std::vector<WorkloadQuery> TapEffectivenessWorkload();

/// Materializes a workload query's gold standard against a dictionary.
/// `ns` is the generator namespace (kDblpNs / kTapNs). Constants are
/// interned on demand so the gold query can be compared (via isomorphism)
/// with engine output. Returns an empty query if no gold is defined.
query::ConjunctiveQuery BuildGoldQuery(const WorkloadQuery& workload_query,
                                       rdf::Dictionary* dictionary,
                                       const std::string& ns);

}  // namespace grasp::datagen

#endif  // GRASP_DATAGEN_WORKLOAD_H_
