#include "datagen/workload.h"

#include <map>

#include "rdf/data_graph.h"

namespace grasp::datagen {
namespace {

using GT = GoldTerm;

/// Shorthand builders for the gold tables below.
GoldAtom Type(const std::string& var, const std::string& cls) {
  return GoldAtom{"type", GT::Var(var), GT::Cls(cls)};
}
GoldAtom Rel(const std::string& pred, const std::string& s,
             const std::string& o) {
  return GoldAtom{pred, GT::Var(s), GT::Var(o)};
}
GoldAtom Attr(const std::string& pred, const std::string& var,
              const std::string& value) {
  return GoldAtom{pred, GT::Var(var), GT::Lit(value)};
}

}  // namespace

std::vector<WorkloadQuery> DblpEffectivenessWorkload() {
  std::vector<WorkloadQuery> w;
  // Publication-by-title/year/author/venue/institute needs, written against
  // the generator's anchor entities. Variable naming convention: x =
  // publication, y = person, z = venue/institute.
  w.push_back({"D01",
               {"algorithm", "1999"},
               "All papers about algorithms published in 1999",
               {Type("x", "Publication"), Attr("title", "x", "algorithm analysis survey"),
                Attr("year", "x", "1999")}});
  w.push_back({"D02",
               {"cimiano", "2006"},
               "Publications by Philipp Cimiano in 2006",
               {Type("x", "Publication"), Attr("year", "x", "2006"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Philipp Cimiano")}});
  w.push_back({"D03",
               {"2006", "cimiano", "aifb"},
               "2006 publications of P. Cimiano who works at AIFB",
               {Type("x", "Publication"), Attr("year", "x", "2006"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Philipp Cimiano"), Rel("worksAt", "y", "z"),
                Type("z", "Institute"), Attr("name", "z", "AIFB")}});
  w.push_back({"D04",
               {"tran", "keyword", "search"},
               "The keyword search paper authored by Thanh Tran",
               {Type("x", "Publication"),
                Attr("title", "x", "keyword search on graph shaped rdf data"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Thanh Tran")}});
  w.push_back({"D05",
               {"widom", "sigmod"},
               "Papers by Jennifer Widom that appeared at SIGMOD",
               {Type("x", "Publication"), Rel("author", "x", "y"),
                Type("y", "Person"), Attr("name", "y", "Jennifer Widom"),
                Rel("publishedIn", "x", "z"), Type("z", "Venue"),
                Attr("name", "z", "SIGMOD")}});
  w.push_back({"D06",
               {"stonebraker", "stream"},
               "Michael Stonebraker's stream processing paper",
               {Type("x", "Publication"),
                Attr("title", "x", "stream processing engine design"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Michael Stonebraker")}});
  w.push_back({"D07",
               {"gray", "tkde"},
               "Papers by Jim Gray in the TKDE journal",
               {Type("x", "Publication"), Rel("author", "x", "y"),
                Type("y", "Person"), Attr("name", "y", "Jim Gray"),
                Rel("publishedIn", "x", "z"), Type("z", "Venue"),
                Attr("name", "z", "TKDE")}});
  w.push_back({"D08",
               {"halevy", "integration"},
               "Alon Halevy's data integration paper",
               {Type("x", "Publication"),
                Attr("title", "x", "data integration systems architecture"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Alon Halevy")}});
  w.push_back({"D09",
               {"icde", "2008"},
               "Publications that appeared at ICDE in 2008",
               {Type("x", "Publication"), Attr("year", "x", "2008"),
                Rel("publishedIn", "x", "z"), Type("z", "Venue"),
                Attr("name", "z", "ICDE")}});
  w.push_back({"D10",
               {"rudolph", "join"},
               "Sebastian Rudolph's paper on join query processing",
               {Type("x", "Publication"),
                Attr("title", "x", "top k join query processing"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Sebastian Rudolph")}});
  w.push_back({"D11",
               {"ontology", "cimiano"},
               "P. Cimiano's ontology learning paper",
               {Type("x", "Publication"),
                Attr("title", "x", "ontology learning from text collections"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Philipp Cimiano")}});
  w.push_back({"D12",
               {"abiteboul", "transaction"},
               "Serge Abiteboul's paper on transaction management",
               {Type("x", "Publication"),
                Attr("title", "x",
                     "distributed transaction management protocols"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Serge Abiteboul")}});
  w.push_back({"D13",
               {"dewitt", "machine", "learning"},
               "David DeWitt's machine learning paper",
               {Type("x", "Publication"),
                Attr("title", "x",
                     "machine learning applications for data systems"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "David DeWitt")}});
  w.push_back({"D14",
               {"xml", "indexing", "2002"},
               "The 2002 paper on XML indexing",
               {Type("x", "Publication"),
                Attr("title", "x", "xml indexing methods comparison"),
                Attr("year", "x", "2002")}});
  w.push_back({"D15",
               {"studer", "semantic", "web"},
               "Rudi Studer's semantic web paper",
               {Type("x", "Publication"),
                Attr("title", "x", "semantic web services composition"),
                Rel("author", "x", "y"), Type("y", "Person"),
                Attr("name", "y", "Rudi Studer")}});
  w.push_back({"D16",
               {"author", "cimiano"},
               "Things authored by Philipp Cimiano",
               {Type("x", "Publication"), Rel("author", "x", "y"),
                Type("y", "Person"), Attr("name", "y", "Philipp Cimiano")}});
  w.push_back({"D17",
               {"cites", "keyword", "search"},
               "What the keyword search paper cites",
               {Type("x", "Publication"),
                Attr("title", "x", "keyword search on graph shaped rdf data"),
                Type("x2", "Publication"), Rel("cites", "x", "x2")}});
  w.push_back({"D18",
               {"publishedin", "vldb"},
               "Everything published in VLDB",
               {Type("x", "Publication"), Rel("publishedIn", "x", "z"),
                Type("z", "Venue"), Attr("name", "z", "VLDB")}});
  w.push_back({"D19",
               {"worksat", "aifb"},
               "People working at AIFB",
               {Type("y", "Person"), Rel("worksAt", "y", "z"),
                Type("z", "Institute"), Attr("name", "z", "AIFB")}});
  w.push_back({"D20",
               {"journal", "article"},
               "Articles that appeared in journals",
               {Type("x", "Article"), Rel("publishedIn", "x", "z"),
                Type("z", "Journal")}});
  w.push_back({"D21",
               {"widom", "stanford"},
               "Jennifer Widom and her Stanford affiliation",
               {Type("y", "Person"), Attr("name", "y", "Jennifer Widom"),
                Rel("worksAt", "y", "z"), Type("z", "Institute"),
                Attr("name", "z", "Stanford University")}});
  // InProceedings is the generator's class of conference papers, so it is
  // the precise one-class reading of "conference publications" — the query
  // an assessor would accept as the best interpretation of this need.
  w.push_back({"D22",
               {"conference", "2005"},
               "Conference publications of 2005",
               {Type("x", "InProceedings"), Attr("year", "x", "2005")}});
  w.push_back({"D23",
               {"person", "name"},
               "Names of persons",
               {Type("y", "Person"), Rel("name", "y", "v")}});
  w.push_back({"D24",
               {"title", "ontology"},
               "The publication titled with ontology learning",
               {Type("x", "Publication"),
                Attr("title", "x", "ontology learning from text collections")}});
  w.push_back({"D25",
               {"year", "1995"},
               "Publications from the year 1995",
               {Type("x", "Publication"), Attr("year", "x", "1995")}});
  w.push_back({"D26",
               {"halevy", "google"},
               "Alon Halevy and his Google affiliation",
               {Type("y", "Person"), Attr("name", "y", "Alon Halevy"),
                Rel("worksAt", "y", "z"), Type("z", "Institute"),
                Attr("name", "z", "Google Research")}});
  w.push_back({"D27",
               {"icde", "sensor", "network"},
               "The ICDE paper on sensor networks",
               {Type("x", "Publication"),
                Attr("title", "x", "sensor network data aggregation"),
                Rel("publishedIn", "x", "z"), Type("z", "Venue"),
                Attr("name", "z", "ICDE")}});
  w.push_back({"D28",
               {"schema", "matching", "vldb", "2000"},
               "The 2000 VLDB paper on schema matching",
               {Type("x", "Publication"),
                Attr("title", "x", "schema matching automation"),
                Attr("year", "x", "2000"), Rel("publishedIn", "x", "z"),
                Type("z", "Venue"), Attr("name", "z", "VLDB")}});
  w.push_back({"D29",
               {"institute", "person", "works"},
               "Persons and the institutes they work at",
               {Type("y", "Person"), Rel("worksAt", "y", "z"),
                Type("z", "Institute")}});
  w.push_back({"D30",
               {"tran", "2008", "icde"},
               "Thanh Tran's 2008 ICDE publications",
               {Type("x", "Publication"), Attr("year", "x", "2008"),
                Rel("publishedIn", "x", "z"), Type("z", "Venue"),
                Attr("name", "z", "ICDE"), Rel("author", "x", "y"),
                Type("y", "Person"), Attr("name", "y", "Thanh Tran")}});
  return w;
}

std::vector<WorkloadQuery> DblpPerformanceWorkload() {
  // Ordered by keyword count, mirroring Fig. 5 (the impact of keyword count
  // is the comparison's main axis: "our approach achieves better
  // performance when the number of keywords is large (Q7-Q10)").
  return {
      {"Q1", {"algorithm", "1999"}, "2 keywords", {}},
      {"Q2", {"cimiano", "2006"}, "2 keywords", {}},
      {"Q3", {"widom", "sigmod"}, "2 keywords", {}},
      {"Q4", {"tran", "keyword", "search"}, "3 keywords", {}},
      {"Q5", {"2006", "cimiano", "aifb"}, "3 keywords", {}},
      {"Q6", {"icde", "2008", "tran"}, "3 keywords", {}},
      {"Q7", {"schema", "matching", "vldb", "2000"}, "4 keywords", {}},
      {"Q8", {"stream", "processing", "stonebraker", "sigmod"}, "4 keywords", {}},
      {"Q9", {"keyword", "search", "graph", "tran", "2008"}, "5 keywords", {}},
      {"Q10",
       {"keyword", "search", "graph", "rdf", "cimiano", "2008"},
       "6 keywords",
       {}},
  };
}

std::vector<WorkloadQuery> TapEffectivenessWorkload() {
  std::vector<WorkloadQuery> w;
  auto type_only = [](std::string id, std::vector<std::string> keywords,
                      std::string nl, std::string cls) {
    return WorkloadQuery{std::move(id), std::move(keywords), std::move(nl),
                         {Type("x", cls)}};
  };
  auto type_name = [](std::string id, std::vector<std::string> keywords,
                      std::string nl, std::string cls, std::string name) {
    return WorkloadQuery{
        std::move(id),
        std::move(keywords),
        std::move(nl),
        {Type("x", cls), Attr("name", "x", std::move(name))}};
  };
  w.push_back(type_only("T1", {"music", "album"}, "All music albums",
                        "MusicAlbum"));
  w.push_back(type_only("T2", {"sports", "team"}, "All sports teams",
                        "SportsTeam"));
  w.push_back(type_name("T3", {"science", "award", "2"},
                        "The science award number 2", "ScienceAward",
                        "ScienceAward 2"));
  w.push_back(type_only("T4", {"movies", "venue"}, "All movie venues",
                        "MoviesVenue"));
  w.push_back(type_name("T5", {"politics", "person", "1"},
                        "The politics person number 1", "PoliticsPerson",
                        "PoliticsPerson 1"));
  w.push_back(type_only("T6", {"food", "festival"}, "All food festivals",
                        "FoodFestival"));
  w.push_back(type_name("T7", {"art", "museum", "3"},
                        "The art museum number 3", "ArtMuseum",
                        "ArtMuseum 3"));
  w.push_back(type_only("T8", {"technology", "product"},
                        "All technology products", "TechnologyProduct"));
  w.push_back(type_name("T9", {"history", "event", "0"},
                        "The history event number 0", "HistoryEvent",
                        "HistoryEvent 0"));
  return w;
}

query::ConjunctiveQuery BuildGoldQuery(const WorkloadQuery& workload_query,
                                       rdf::Dictionary* dictionary,
                                       const std::string& ns) {
  query::ConjunctiveQuery q;
  if (workload_query.gold.empty()) return q;
  const rdf::TermId type_term =
      dictionary->InternIri(rdf::Vocabulary().type_iri);
  std::map<std::string, query::VarId> vars;
  auto term_of = [&](const GoldTerm& t) {
    if (t.is_var) {
      auto it = vars.find(t.text);
      if (it == vars.end()) {
        it = vars.emplace(t.text, q.NewVariable()).first;
      }
      return query::QueryTerm::Variable(it->second);
    }
    if (t.is_literal) {
      return query::QueryTerm::Constant(dictionary->InternLiteral(t.text));
    }
    return query::QueryTerm::Constant(dictionary->InternIri(ns + t.text));
  };
  for (const GoldAtom& atom : workload_query.gold) {
    const rdf::TermId predicate = atom.predicate == "type"
                                      ? type_term
                                      : dictionary->InternIri(ns + atom.predicate);
    q.AddAtom(query::Atom{predicate, term_of(atom.subject),
                          term_of(atom.object)});
  }
  return q;
}

}  // namespace grasp::datagen
