#ifndef GRASP_DATAGEN_LUBM_GEN_H_
#define GRASP_DATAGEN_LUBM_GEN_H_

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace grasp::datagen {

inline constexpr char kLubmNs[] = "http://lubm.example.org/";

/// Parameters of the LUBM-like generator (Lehigh University Benchmark;
/// the paper uses LUBM(50,0) = 50 universities). The schema — universities,
/// departments, faculty ranks, students, courses, publications and their
/// relations — follows the public LUBM ontology; cardinality ratios follow
/// the original generator's documented ranges, scaled down by default.
struct LubmOptions {
  std::uint64_t seed = 7;
  std::size_t num_universities = 5;
  std::size_t departments_per_university = 4;   // LUBM: 15-25
  std::size_t professors_per_department = 10;   // LUBM: 14-34 across ranks
  std::size_t students_per_department = 40;     // LUBM: ~100s
  std::size_t courses_per_department = 12;
  std::size_t publications_per_professor = 3;
};

/// Generates the dataset (store left unfinalized).
void GenerateLubm(const LubmOptions& options, rdf::Dictionary* dictionary,
                  rdf::TripleStore* store);

}  // namespace grasp::datagen

#endif  // GRASP_DATAGEN_LUBM_GEN_H_
