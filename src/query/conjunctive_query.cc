#include "query/conjunctive_query.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace grasp::query {
namespace {

std::string RenderTermSparql(const QueryTerm& t,
                             const rdf::Dictionary& dictionary) {
  if (t.is_variable) return StrFormat("?x%u", t.var);
  if (dictionary.kind(t.term) == rdf::TermKind::kLiteral) {
    return "\"" + rdf::EscapeLiteral(dictionary.text(t.term)) + "\"";
  }
  return "<" + std::string(dictionary.text(t.term)) + ">";
}

std::string RenderTermShort(const QueryTerm& t,
                            const rdf::Dictionary& dictionary) {
  if (t.is_variable) return StrFormat("?x%u", t.var);
  if (dictionary.kind(t.term) == rdf::TermKind::kLiteral) {
    return "'" + std::string(dictionary.text(t.term)) + "'";
  }
  return std::string(rdf::IriLocalName(dictionary.text(t.term)));
}

std::string RenderTermCanonical(const QueryTerm& t,
                                const std::vector<VarId>& rank_of_var) {
  if (t.is_variable) return StrFormat("v%u", rank_of_var[t.var]);
  return StrFormat("c%u", t.term);
}

}  // namespace

namespace {

/// Renders the filter value without trailing zeros ("2000", "19.5").
std::string RenderFilterValue(double value) {
  std::string text = StrFormat("%g", value);
  return text;
}

}  // namespace

void ConjunctiveQuery::DeduplicateAtoms() {
  std::vector<Atom> unique;
  for (const Atom& a : atoms_) {
    if (std::find(unique.begin(), unique.end(), a) == unique.end()) {
      unique.push_back(a);
    }
  }
  atoms_ = std::move(unique);
  std::vector<FilterCondition> unique_filters;
  for (const FilterCondition& f : filters_) {
    if (std::find(unique_filters.begin(), unique_filters.end(), f) ==
        unique_filters.end()) {
      unique_filters.push_back(f);
    }
  }
  filters_ = std::move(unique_filters);
}

std::string ConjunctiveQuery::ToSparql(
    const rdf::Dictionary& dictionary) const {
  std::set<VarId> vars;
  for (const Atom& a : atoms_) {
    if (a.subject.is_variable) vars.insert(a.subject.var);
    if (a.object.is_variable) vars.insert(a.object.var);
  }
  std::string out = "SELECT";
  if (vars.empty()) {
    out += " *";
  } else {
    for (VarId v : vars) out += StrFormat(" ?x%u", v);
  }
  out += " WHERE {\n";
  for (const Atom& a : atoms_) {
    out += "  " + RenderTermSparql(a.subject, dictionary) + " <" +
           std::string(dictionary.text(a.predicate)) + "> " +
           RenderTermSparql(a.object, dictionary) + " .\n";
  }
  for (const FilterCondition& f : filters_) {
    out += StrFormat("  FILTER(?x%u %s %s)\n", f.var,
                     std::string(FilterOpSymbol(f.op)).c_str(),
                     RenderFilterValue(f.value).c_str());
  }
  out += "}";
  return out;
}

std::string ConjunctiveQuery::ToString(
    const rdf::Dictionary& dictionary) const {
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const Atom& a : atoms_) {
    parts.push_back(StrFormat(
        "%s(%s, %s)",
        std::string(rdf::IriLocalName(dictionary.text(a.predicate))).c_str(),
        RenderTermShort(a.subject, dictionary).c_str(),
        RenderTermShort(a.object, dictionary).c_str()));
  }
  for (const FilterCondition& f : filters_) {
    parts.push_back(StrFormat("?x%u %s %s", f.var,
                              std::string(FilterOpSymbol(f.op)).c_str(),
                              RenderFilterValue(f.value).c_str()));
  }
  return Join(parts, " & ");
}

std::string ConjunctiveQuery::CanonicalString() const {
  // Collect the variables that actually occur.
  std::vector<VarId> used;
  {
    std::set<VarId> seen;
    for (const Atom& a : atoms_) {
      if (a.subject.is_variable) seen.insert(a.subject.var);
      if (a.object.is_variable) seen.insert(a.object.var);
    }
    for (const FilterCondition& f : filters_) seen.insert(f.var);
    used.assign(seen.begin(), seen.end());
  }

  std::vector<VarId> rank_of_var(num_variables_, 0);
  auto serialize = [this, &rank_of_var]() {
    std::vector<std::string> rendered;
    rendered.reserve(atoms_.size() + filters_.size());
    for (const Atom& a : atoms_) {
      rendered.push_back(StrFormat(
          "%u|%s|%s", a.predicate,
          RenderTermCanonical(a.subject, rank_of_var).c_str(),
          RenderTermCanonical(a.object, rank_of_var).c_str()));
    }
    for (const FilterCondition& f : filters_) {
      rendered.push_back(StrFormat(
          "F|v%u|%s|%s", rank_of_var[f.var],
          std::string(FilterOpSymbol(f.op)).c_str(),
          RenderFilterValue(f.value).c_str()));
    }
    std::sort(rendered.begin(), rendered.end());
    rendered.erase(std::unique(rendered.begin(), rendered.end()),
                   rendered.end());
    return Join(rendered, ";");
  };

  if (used.size() <= kExactCanonicalVarLimit) {
    // Exact: lexicographically smallest serialization over all labelings.
    std::vector<VarId> perm(used.size());
    for (VarId i = 0; i < perm.size(); ++i) perm[i] = i;
    std::string best;
    do {
      for (std::size_t i = 0; i < used.size(); ++i) {
        rank_of_var[used[i]] = perm[i];
      }
      std::string candidate = serialize();
      if (best.empty() || candidate < best) best = std::move(candidate);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
  }

  // Greedy fallback: order variables by a deterministic structural
  // signature (occurrence count, then sorted incident predicates), ties by
  // variable id. Not a complete isomorphism test, but stable.
  struct Signature {
    std::size_t occurrences = 0;
    std::vector<std::uint64_t> incident;
    VarId var = 0;
  };
  std::vector<Signature> signatures;
  for (VarId v : used) {
    Signature sig;
    sig.var = v;
    for (const Atom& a : atoms_) {
      if (a.subject.is_variable && a.subject.var == v) {
        ++sig.occurrences;
        sig.incident.push_back((static_cast<std::uint64_t>(a.predicate) << 1));
      }
      if (a.object.is_variable && a.object.var == v) {
        ++sig.occurrences;
        sig.incident.push_back((static_cast<std::uint64_t>(a.predicate) << 1) |
                               1);
      }
    }
    std::sort(sig.incident.begin(), sig.incident.end());
    signatures.push_back(std::move(sig));
  }
  std::sort(signatures.begin(), signatures.end(),
            [](const Signature& a, const Signature& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              if (a.incident != b.incident) return a.incident < b.incident;
              return a.var < b.var;
            });
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    rank_of_var[signatures[i].var] = static_cast<VarId>(i);
  }
  return serialize();
}

}  // namespace grasp::query
