#include "query/evaluator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace grasp::query {
namespace {

/// Execution state threaded through the backtracking join.
struct EvalContext {
  const rdf::TripleStore& store;
  const ConjunctiveQuery* query;
  const std::vector<Atom>& atoms;
  const std::vector<std::size_t>& order;
  const std::vector<VarId>& variables;
  const EvalOptions& options;
  std::vector<rdf::TermId>* binding;  // var -> bound term or kInvalidTermId
  std::set<std::vector<rdf::TermId>>* rows;
  std::size_t steps = 0;
  bool truncated = false;
};

rdf::TermId ResolveTerm(const QueryTerm& t,
                        const std::vector<rdf::TermId>& binding) {
  if (!t.is_variable) return t.term;
  return binding[t.var];
}

bool LimitsHit(EvalContext* ctx) {
  if (ctx->options.limit > 0 && ctx->rows->size() >= ctx->options.limit) {
    return true;
  }
  if (ctx->options.max_steps > 0 && ctx->steps >= ctx->options.max_steps) {
    ctx->truncated = true;
    return true;
  }
  return false;
}

/// True when every FILTER condition holds under the (complete) binding. A
/// filter on a non-numeric or unbound value fails closed.
bool FiltersSatisfied(const EvalContext& ctx) {
  for (const FilterCondition& f : ctx.query->filters()) {
    const rdf::TermId bound = (*ctx.binding)[f.var];
    if (bound == rdf::kInvalidTermId) return false;
    const auto numeric =
        ParseNumericLiteral(ctx.options.dictionary->text(bound));
    if (!numeric.has_value()) return false;
    if (!EvalFilterOp(f.op, *numeric, f.value)) return false;
  }
  return true;
}

void Join(EvalContext* ctx, std::size_t depth) {
  if (LimitsHit(ctx)) return;
  if (depth == ctx->order.size()) {
    if (!FiltersSatisfied(*ctx)) return;
    std::vector<rdf::TermId> row;
    row.reserve(ctx->variables.size());
    for (VarId v : ctx->variables) row.push_back((*ctx->binding)[v]);
    ctx->rows->insert(std::move(row));
    return;
  }
  const Atom& atom = ctx->atoms[ctx->order[depth]];
  const rdf::TermId s = ResolveTerm(atom.subject, *ctx->binding);
  const rdf::TermId o = ResolveTerm(atom.object, *ctx->binding);
  rdf::TripleStore::Pattern pattern{s, atom.predicate, o};

  ++ctx->steps;
  ctx->store.Scan(pattern, [&](const rdf::Triple& t) {
    ++ctx->steps;
    // Extend the binding with newly bound variables; handle the case where
    // subject and object are the same (still unbound) variable.
    std::vector<std::pair<VarId, rdf::TermId>> bound_now;
    bool consistent = true;
    auto bind = [&](const QueryTerm& qt, rdf::TermId value) {
      if (!qt.is_variable) return;
      rdf::TermId& slot = (*ctx->binding)[qt.var];
      if (slot == rdf::kInvalidTermId) {
        slot = value;
        bound_now.emplace_back(qt.var, value);
      } else if (slot != value) {
        consistent = false;
      }
    };
    bind(atom.subject, t.subject);
    if (consistent) bind(atom.object, t.object);
    if (consistent) Join(ctx, depth + 1);
    for (const auto& [var, value] : bound_now) {
      (void)value;
      (*ctx->binding)[var] = rdf::kInvalidTermId;
    }
    return !LimitsHit(ctx);
  });
}

/// Greedy join order: at each step, pick the unused atom with the smallest
/// estimated result size under the simulated binding. The estimate starts
/// from the store's count of the constant-only pattern and is divided by
/// the predicate's average fan-out for each position occupied by an
/// already-bound variable (a bound subject makes the scan behave like a
/// subject-constant lookup). Atoms that share no bound variable with the
/// prefix are deferred until nothing connected remains — they would start a
/// cartesian product.
std::vector<std::size_t> PlanOrder(const rdf::TripleStore& store,
                                   const std::vector<Atom>& atoms,
                                   std::size_t num_variables) {
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> var_bound(num_variables, false);
  std::vector<std::size_t> order;
  order.reserve(atoms.size());

  auto estimate = [&](const Atom& a) {
    rdf::TripleStore::Pattern p;
    p.predicate = a.predicate;
    if (!a.subject.is_variable) p.subject = a.subject.term;
    if (!a.object.is_variable) p.object = a.object.term;
    double est = static_cast<double>(store.Count(p));
    if (a.subject.is_variable && var_bound[a.subject.var]) {
      est = std::min(est, store.AvgTriplesPerSubject(a.predicate));
    }
    if (a.object.is_variable && var_bound[a.object.var]) {
      est = std::min(est, store.AvgTriplesPerObject(a.predicate));
    }
    return est;
  };

  for (std::size_t step = 0; step < atoms.size(); ++step) {
    std::size_t best = atoms.size();
    double best_estimate = 0.0;
    bool best_connected = false;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const Atom& a = atoms[i];
      // "Connected" means sharing a bound variable with the prefix (or
      // being fully ground). An atom whose variables are all fresh starts a
      // cartesian product and only runs when nothing else is left.
      const bool connected =
          step == 0 ||
          (a.subject.is_variable && var_bound[a.subject.var]) ||
          (a.object.is_variable && var_bound[a.object.var]) ||
          ((!a.subject.is_variable) && (!a.object.is_variable));
      const double est = estimate(a);
      const bool better = best == atoms.size() ||
                          (connected && !best_connected) ||
                          (connected == best_connected && est < best_estimate);
      if (better) {
        best = i;
        best_estimate = est;
        best_connected = connected;
      }
    }
    GRASP_CHECK_LT(best, atoms.size());
    used[best] = true;
    order.push_back(best);
    if (atoms[best].subject.is_variable) {
      var_bound[atoms[best].subject.var] = true;
    }
    if (atoms[best].object.is_variable) {
      var_bound[atoms[best].object.var] = true;
    }
  }
  return order;
}

}  // namespace

Result<EvalResult> Evaluate(const rdf::TripleStore& store,
                            const ConjunctiveQuery& query,
                            const EvalOptions& options) {
  if (query.empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  if (!query.filters().empty() && options.dictionary == nullptr) {
    return Status::InvalidArgument(
        "query has FILTER conditions but EvalOptions.dictionary is not set");
  }
  for (const FilterCondition& f : query.filters()) {
    if (f.var >= query.num_variables()) {
      return Status::InvalidArgument("FILTER references an unknown variable");
    }
  }
  GRASP_CHECK(store.finalized());

  std::set<VarId> var_set;
  for (const Atom& a : query.atoms()) {
    if (a.subject.is_variable) var_set.insert(a.subject.var);
    if (a.object.is_variable) var_set.insert(a.object.var);
  }
  EvalResult result;
  result.variables.assign(var_set.begin(), var_set.end());

  const std::vector<std::size_t> order =
      PlanOrder(store, query.atoms(), query.num_variables());
  std::vector<rdf::TermId> binding(query.num_variables(), rdf::kInvalidTermId);
  std::set<std::vector<rdf::TermId>> rows;
  EvalContext ctx{store,   &query,    query.atoms(), order,
                  result.variables, options, &binding, &rows};
  Join(&ctx, 0);

  result.rows.assign(rows.begin(), rows.end());
  result.steps = ctx.steps;
  result.truncated =
      ctx.truncated ||
      (options.limit > 0 && result.rows.size() >= options.limit);
  return result;
}

}  // namespace grasp::query
