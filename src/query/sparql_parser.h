#ifndef GRASP_QUERY_SPARQL_PARSER_H_
#define GRASP_QUERY_SPARQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "rdf/dictionary.h"

namespace grasp::query {

/// A parsed SELECT query: the conjunctive core plus the projection and the
/// surface variable names (ConjunctiveQuery itself stores dense VarIds).
struct ParsedQuery {
  ConjunctiveQuery query;
  /// Surface name per VarId, without the leading '?' (e.g. "x0").
  std::vector<std::string> variable_names;
  /// Projected variables in SELECT order; empty means `SELECT *`.
  std::vector<VarId> selected;
};

/// Parses the conjunctive SELECT subset of SPARQL — exactly the queries this
/// engine computes (Sec. II: "many SPARQL queries can be written as
/// conjunctive queries"), and everything ToSparql() prints:
///
///   SELECT ?x ?y WHERE { ?x <iri> ?y . ?x <iri> "literal" . }
///   SELECT * WHERE { <iri> <iri> <iri> }
///
/// Grammar notes:
///  - keywords are case-insensitive; whitespace and newlines are free-form,
///  - triple patterns separate with '.', the last dot is optional,
///  - literals support the \" \\ \n \t \r escapes (as in our N-Triples
///    subset); language tags and datatypes are parsed and dropped,
///  - predicates must be IRIs (variables in predicate position are not
///    conjunctive atoms in this engine's sense and are rejected),
///  - `a` abbreviates rdf:type.
///
/// Constants are interned into `dictionary`. Returns InvalidArgument with a
/// position-annotated message on malformed input.
Result<ParsedQuery> ParseSparql(std::string_view text,
                                rdf::Dictionary* dictionary);

}  // namespace grasp::query

#endif  // GRASP_QUERY_SPARQL_PARSER_H_
