#ifndef GRASP_QUERY_CONJUNCTIVE_QUERY_H_
#define GRASP_QUERY_CONJUNCTIVE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/filter_op.h"
#include "rdf/dictionary.h"

namespace grasp::query {

/// Variable identifier within one query (dense, starting at 0).
using VarId = std::uint32_t;

/// Subject or object of a query atom: a variable or an interned constant.
struct QueryTerm {
  static QueryTerm Variable(VarId var) {
    QueryTerm t;
    t.is_variable = true;
    t.var = var;
    return t;
  }
  static QueryTerm Constant(rdf::TermId term) {
    QueryTerm t;
    t.is_variable = false;
    t.term = term;
    return t;
  }

  bool is_variable = false;
  VarId var = 0;
  rdf::TermId term = rdf::kInvalidTermId;

  friend bool operator==(const QueryTerm& a, const QueryTerm& b) {
    if (a.is_variable != b.is_variable) return false;
    return a.is_variable ? a.var == b.var : a.term == b.term;
  }
};

/// One query atom P(s, o) (Definition 2). Predicates are always constants.
struct Atom {
  rdf::TermId predicate = rdf::kInvalidTermId;
  QueryTerm subject;
  QueryTerm object;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.subject == b.subject &&
           a.object == b.object;
  }
};

/// A numeric comparison on a variable — the filter-operator extension the
/// paper sketches in Sec. IX. Evaluates against the numeric interpretation
/// of the bound literal.
struct FilterCondition {
  VarId var = 0;
  FilterOp op = FilterOp::kGreater;
  double value = 0.0;

  friend bool operator==(const FilterCondition& a, const FilterCondition& b) {
    return a.var == b.var && a.op == b.op && a.value == b.value;
  }
};

/// A conjunctive query (Definition 2). Variables interact arbitrarily, so a
/// query is a graph pattern; all variables are treated as distinguished by
/// default ("a reasonable choice is to treat all query variables as
/// distinguished", Sec. VI-D). Optionally extended with numeric FILTER
/// conditions on variables (Sec. IX future work).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Appends an atom. Callers allocate variables via NewVariable().
  void AddAtom(Atom atom) { atoms_.push_back(atom); }

  /// Appends a numeric filter condition on a variable.
  void AddFilter(FilterCondition filter) { filters_.push_back(filter); }

  /// Allocates a fresh variable id.
  VarId NewVariable() { return num_variables_++; }

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<FilterCondition>& filters() const { return filters_; }
  std::size_t num_variables() const { return num_variables_; }
  bool empty() const { return atoms_.empty(); }

  /// The cost assigned by the cost function C (lower is better).
  double cost() const { return cost_; }
  void set_cost(double cost) { cost_ = cost; }

  /// Removes duplicate atoms (the mapping rules of Sec. VI-D emit one type
  /// atom per incident edge, so duplicates are common) and duplicate
  /// filters.
  void DeduplicateAtoms();

  /// SPARQL rendering (Fig. 1c style). Variables print as ?x0, ?x1, ...
  std::string ToSparql(const rdf::Dictionary& dictionary) const;

  /// Compact one-line rendering using IRI local names; for logs and examples.
  std::string ToString(const rdf::Dictionary& dictionary) const;

  /// A serialization invariant under variable renaming and atom order:
  /// two queries are isomorphic iff their canonical strings are equal. Exact
  /// for queries with at most kExactCanonicalVarLimit variables (the paper's
  /// queries are far smaller); beyond that a deterministic greedy labeling
  /// is used, which may distinguish some isomorphic pairs.
  std::string CanonicalString() const;

  static constexpr std::size_t kExactCanonicalVarLimit = 8;

  /// True when the two queries are isomorphic (equal canonical strings).
  friend bool Isomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.CanonicalString() == b.CanonicalString();
  }

 private:
  std::vector<Atom> atoms_;
  std::vector<FilterCondition> filters_;
  VarId num_variables_ = 0;
  double cost_ = 0.0;
};

}  // namespace grasp::query

#endif  // GRASP_QUERY_CONJUNCTIVE_QUERY_H_
