#ifndef GRASP_QUERY_VERBALIZER_H_
#define GRASP_QUERY_VERBALIZER_H_

#include <string>

#include "query/conjunctive_query.h"
#include "rdf/dictionary.h"

namespace grasp::query {

/// Options of the query verbalizer.
struct VerbalizeOptions {
  /// Lead-in of the question ("Find every ...").
  std::string prefix = "Find every";
};

/// Renders a conjunctive query as a simple natural-language question — the
/// presentation step of the paper's SearchWebDB demo (Sec. VII: "computes
/// the top-k conjunctive queries, transforms them to simple natural language
/// (NL) questions, and presents them to the user").
///
/// The verbalization is template-based and deterministic:
///   type(x, Publication) & year(x, '2006') & author(x, y) &
///   type(y, Person) & name(y, 'P. Cimiano')
/// becomes
///   "Find every Publication whose year is '2006', with author some Person
///    whose name is 'P. Cimiano'."
///
/// Every atom is verbalized (nothing is dropped), so distinct queries yield
/// distinct questions.
std::string Verbalize(const ConjunctiveQuery& query,
                      const rdf::Dictionary& dictionary,
                      const VerbalizeOptions& options = {});

}  // namespace grasp::query

#endif  // GRASP_QUERY_VERBALIZER_H_
