#include "query/sparql_parser.h"

#include <cctype>
#include <map>

#include "common/string_util.h"
#include "rdf/data_graph.h"

namespace grasp::query {
namespace {

/// Token kinds of the conjunctive SPARQL subset.
enum class TokenKind {
  kKeyword,   // SELECT / WHERE / FILTER (uppercased in `text`)
  kVariable,  // ?name (text excludes the '?')
  kIri,       // <...> (text excludes the brackets)
  kLiteral,   // "..." (text is the unescaped value)
  kStar,      // *
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kDot,
  kComparison,  // < <= > >= != (text is the operator)
  kNumber,      // bare numeric literal inside FILTER
  kA,           // the `a` rdf:type abbreviation
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t position;  // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Scans the next token; returns InvalidArgument on malformed input.
  Result<Token> Next() {
    SkipWhitespaceAndComments();
    const std::size_t at = pos_;
    if (pos_ >= input_.size()) return Token{TokenKind::kEnd, "", at};
    const char c = input_[pos_];
    switch (c) {
      case '{':
        ++pos_;
        return Token{TokenKind::kLBrace, "{", at};
      case '}':
        ++pos_;
        return Token{TokenKind::kRBrace, "}", at};
      case '.':
        ++pos_;
        return Token{TokenKind::kDot, ".", at};
      case '*':
        ++pos_;
        return Token{TokenKind::kStar, "*", at};
      case '(':
        ++pos_;
        return Token{TokenKind::kLParen, "(", at};
      case ')':
        ++pos_;
        return Token{TokenKind::kRParen, ")", at};
      case '?':
      case '$':
        return Variable(at);
      case '<':
        // '<' opens an IRI; "<=" and a bare "< " compare inside FILTER.
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          return Token{TokenKind::kComparison, "<=", at};
        }
        if (pos_ + 1 >= input_.size() ||
            std::isspace(static_cast<unsigned char>(input_[pos_ + 1])) ||
            std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) ||
            input_[pos_ + 1] == '?' || input_[pos_ + 1] == '-' ||
            input_[pos_ + 1] == '+') {
          ++pos_;
          return Token{TokenKind::kComparison, "<", at};
        }
        return Iri(at);
      case '>':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '=') {
          ++pos_;
          return Token{TokenKind::kComparison, ">=", at};
        }
        return Token{TokenKind::kComparison, ">", at};
      case '!':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          return Token{TokenKind::kComparison, "!=", at};
        }
        ++pos_;
        return Status::InvalidArgument(
            StrFormat("unexpected '!' at offset %zu", at));
      case '"':
        return Literal(at);
      default:
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+') {
          return Number(at);
        }
        return Word(at);
    }
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> Variable(std::size_t at) {
    ++pos_;  // consume '?' or '$'
    std::string name;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      name.push_back(input_[pos_++]);
    }
    if (name.empty()) {
      return Status::InvalidArgument(
          StrFormat("empty variable name at offset %zu", at));
    }
    return Token{TokenKind::kVariable, std::move(name), at};
  }

  Result<Token> Iri(std::size_t at) {
    ++pos_;  // consume '<'
    std::string iri;
    while (pos_ < input_.size() && input_[pos_] != '>') {
      iri.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument(
          StrFormat("unterminated IRI at offset %zu", at));
    }
    ++pos_;  // consume '>'
    return Token{TokenKind::kIri, std::move(iri), at};
  }

  Result<Token> Literal(std::size_t at) {
    ++pos_;  // consume '"'
    std::string value;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      char c = input_[pos_++];
      if (c == '\\') {
        if (pos_ >= input_.size()) {
          return Status::InvalidArgument(
              StrFormat("dangling escape at offset %zu", pos_ - 1));
        }
        const char esc = input_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default:
            return Status::InvalidArgument(
                StrFormat("unknown escape \\%c at offset %zu", esc, pos_ - 2));
        }
      }
      value.push_back(c);
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument(
          StrFormat("unterminated literal at offset %zu", at));
    }
    ++pos_;  // consume closing '"'
    // Language tag / datatype: parsed and dropped (as in our N-Triples
    // subset — the engine treats every literal as its plain text).
    if (pos_ < input_.size() && input_[pos_] == '@') {
      ++pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '-')) {
        ++pos_;
      }
    } else if (pos_ + 1 < input_.size() && input_[pos_] == '^' &&
               input_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ < input_.size() && input_[pos_] == '<') {
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ < input_.size()) ++pos_;
      }
    }
    return Token{TokenKind::kLiteral, std::move(value), at};
  }

  Result<Token> Number(std::size_t at) {
    std::string text;
    if (input_[pos_] == '-' || input_[pos_] == '+') {
      text.push_back(input_[pos_++]);
    }
    bool seen_digit = false;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      seen_digit |= std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0;
      text.push_back(input_[pos_++]);
    }
    if (!seen_digit) {
      return Status::InvalidArgument(
          StrFormat("malformed number at offset %zu", at));
    }
    return Token{TokenKind::kNumber, std::move(text), at};
  }

  Result<Token> Word(std::size_t at) {
    std::string word;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      word.push_back(input_[pos_++]);
    }
    if (word.empty()) {
      return Status::InvalidArgument(StrFormat(
          "unexpected character '%c' at offset %zu", input_[pos_], at));
    }
    if (word == "a") return Token{TokenKind::kA, std::move(word), at};
    return Token{TokenKind::kKeyword, ToUpper(word), at};
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, rdf::Dictionary* dictionary)
      : lexer_(text), dictionary_(dictionary) {}

  Result<ParsedQuery> Parse() {
    GRASP_RETURN_IF_ERROR(Advance());
    GRASP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Projection: '*' or a non-empty variable list.
    std::vector<std::string> selected_names;
    bool select_all = false;
    if (current_.kind == TokenKind::kStar) {
      select_all = true;
      GRASP_RETURN_IF_ERROR(Advance());
    } else {
      while (current_.kind == TokenKind::kVariable) {
        selected_names.push_back(current_.text);
        GRASP_RETURN_IF_ERROR(Advance());
      }
      if (selected_names.empty()) {
        return Status::InvalidArgument(StrFormat(
            "expected '*' or variables after SELECT at offset %zu",
            current_.position));
      }
    }

    GRASP_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    if (current_.kind != TokenKind::kLBrace) {
      return Status::InvalidArgument(
          StrFormat("expected '{' at offset %zu", current_.position));
    }
    GRASP_RETURN_IF_ERROR(Advance());

    while (current_.kind != TokenKind::kRBrace) {
      if (current_.kind == TokenKind::kEnd) {
        return Status::InvalidArgument("unterminated group pattern: missing '}'");
      }
      if (current_.kind == TokenKind::kKeyword && current_.text == "FILTER") {
        GRASP_RETURN_IF_ERROR(Advance());
        GRASP_RETURN_IF_ERROR(FilterClause());
      } else {
        GRASP_RETURN_IF_ERROR(TriplePattern());
      }
      if (current_.kind == TokenKind::kDot) {
        GRASP_RETURN_IF_ERROR(Advance());  // trailing dot before '}' is fine
      } else if (current_.kind != TokenKind::kRBrace &&
                 !(current_.kind == TokenKind::kKeyword &&
                   current_.text == "FILTER")) {
        return Status::InvalidArgument(StrFormat(
            "expected '.' or '}' after triple pattern at offset %zu",
            current_.position));
      }
    }
    GRASP_RETURN_IF_ERROR(Advance());  // consume '}'
    if (current_.kind != TokenKind::kEnd) {
      return Status::InvalidArgument(StrFormat(
          "unexpected trailing input at offset %zu", current_.position));
    }
    if (result_.query.empty()) {
      return Status::InvalidArgument("empty group pattern: no triple patterns");
    }

    // Resolve the projection against the variables seen in the pattern.
    for (const std::string& name : selected_names) {
      auto it = var_ids_.find(name);
      if (it == var_ids_.end()) {
        return Status::InvalidArgument(
            StrFormat("selected variable ?%s does not occur in the pattern",
                      name.c_str()));
      }
      result_.selected.push_back(it->second);
    }
    (void)select_all;  // empty `selected` already means SELECT *
    return std::move(result_);
  }

 private:
  Status Advance() {
    auto token = lexer_.Next();
    if (!token.ok()) return token.status();
    current_ = std::move(*token);
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (current_.kind != TokenKind::kKeyword || current_.text != keyword) {
      return Status::InvalidArgument(
          StrFormat("expected %s at offset %zu", std::string(keyword).c_str(),
                    current_.position));
    }
    return Advance();
  }

  Result<QueryTerm> Term() {
    switch (current_.kind) {
      case TokenKind::kVariable: {
        auto [it, inserted] =
            var_ids_.try_emplace(current_.text, result_.query.num_variables());
        if (inserted) {
          result_.query.NewVariable();
          result_.variable_names.push_back(current_.text);
        }
        const QueryTerm term = QueryTerm::Variable(it->second);
        GRASP_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kIri: {
        const QueryTerm term =
            QueryTerm::Constant(dictionary_->InternIri(current_.text));
        GRASP_RETURN_IF_ERROR(Advance());
        return term;
      }
      case TokenKind::kLiteral: {
        const QueryTerm term =
            QueryTerm::Constant(dictionary_->InternLiteral(current_.text));
        GRASP_RETURN_IF_ERROR(Advance());
        return term;
      }
      default:
        return Status::InvalidArgument(StrFormat(
            "expected variable, IRI or literal at offset %zu",
            current_.position));
    }
  }

  /// FILTER ( ?var op number ) — the numeric-comparison subset matching the
  /// FilterCondition extension (Sec. IX future work).
  Status FilterClause() {
    if (current_.kind != TokenKind::kLParen) {
      return Status::InvalidArgument(StrFormat(
          "expected '(' after FILTER at offset %zu", current_.position));
    }
    GRASP_RETURN_IF_ERROR(Advance());
    if (current_.kind != TokenKind::kVariable) {
      return Status::InvalidArgument(StrFormat(
          "expected variable in FILTER at offset %zu", current_.position));
    }
    auto it = var_ids_.find(current_.text);
    if (it == var_ids_.end()) {
      return Status::InvalidArgument(StrFormat(
          "FILTER variable ?%s does not occur in a preceding triple pattern",
          current_.text.c_str()));
    }
    const VarId var = it->second;
    GRASP_RETURN_IF_ERROR(Advance());
    if (current_.kind != TokenKind::kComparison) {
      return Status::InvalidArgument(StrFormat(
          "expected comparison operator in FILTER at offset %zu",
          current_.position));
    }
    FilterOp op;
    if (current_.text == "<") {
      op = FilterOp::kLess;
    } else if (current_.text == "<=") {
      op = FilterOp::kLessEqual;
    } else if (current_.text == ">") {
      op = FilterOp::kGreater;
    } else if (current_.text == ">=") {
      op = FilterOp::kGreaterEqual;
    } else {
      op = FilterOp::kNotEqual;
    }
    GRASP_RETURN_IF_ERROR(Advance());
    double value = 0.0;
    if (current_.kind == TokenKind::kNumber) {
      value = std::atof(current_.text.c_str());
    } else if (current_.kind == TokenKind::kLiteral) {
      const auto numeric = ParseNumericLiteral(current_.text);
      if (!numeric.has_value()) {
        return Status::InvalidArgument(StrFormat(
            "non-numeric FILTER literal at offset %zu", current_.position));
      }
      value = *numeric;
    } else {
      return Status::InvalidArgument(StrFormat(
          "expected number in FILTER at offset %zu", current_.position));
    }
    GRASP_RETURN_IF_ERROR(Advance());
    if (current_.kind != TokenKind::kRParen) {
      return Status::InvalidArgument(StrFormat(
          "expected ')' to close FILTER at offset %zu", current_.position));
    }
    GRASP_RETURN_IF_ERROR(Advance());
    result_.query.AddFilter(FilterCondition{var, op, value});
    return Status::Ok();
  }

  Status TriplePattern() {
    auto subject = Term();
    if (!subject.ok()) return subject.status();
    if (!subject->is_variable &&
        dictionary_->kind(subject->term) == rdf::TermKind::kLiteral) {
      return Status::InvalidArgument("literal in subject position");
    }

    // Predicate: IRI or the `a` abbreviation. Variables are rejected —
    // predicates are constants in a conjunctive atom (Definition 2).
    rdf::TermId predicate = rdf::kInvalidTermId;
    if (current_.kind == TokenKind::kIri) {
      predicate = dictionary_->InternIri(current_.text);
      GRASP_RETURN_IF_ERROR(Advance());
    } else if (current_.kind == TokenKind::kA) {
      predicate = dictionary_->InternIri(rdf::Vocabulary().type_iri);
      GRASP_RETURN_IF_ERROR(Advance());
    } else if (current_.kind == TokenKind::kVariable) {
      return Status::InvalidArgument(StrFormat(
          "variable predicate ?%s at offset %zu: predicates must be IRIs in "
          "a conjunctive query",
          current_.text.c_str(), current_.position));
    } else {
      return Status::InvalidArgument(StrFormat(
          "expected predicate IRI at offset %zu", current_.position));
    }

    auto object = Term();
    if (!object.ok()) return object.status();

    result_.query.AddAtom(Atom{predicate, *subject, *object});
    return Status::Ok();
  }

  Lexer lexer_;
  rdf::Dictionary* dictionary_;
  Token current_{TokenKind::kEnd, "", 0};
  ParsedQuery result_;
  std::map<std::string, VarId> var_ids_;
};

}  // namespace

Result<ParsedQuery> ParseSparql(std::string_view text,
                                rdf::Dictionary* dictionary) {
  return Parser(text, dictionary).Parse();
}

}  // namespace grasp::query
