#include "query/verbalizer.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "rdf/data_graph.h"
#include "rdf/term.h"

namespace grasp::query {
namespace {

/// Splits a camelCase / snake_case local name into lower-case words
/// ("worksAt" -> "works at").
std::string HumanizeLocalName(std::string_view local) {
  std::string out;
  char prev = '\0';
  for (char c : local) {
    if (c == '_' || c == '-') {
      if (!out.empty() && out.back() != ' ') out.push_back(' ');
      prev = c;
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) &&
        std::islower(static_cast<unsigned char>(prev)) && !out.empty()) {
      out.push_back(' ');
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    prev = c;
  }
  return out;
}

struct VarFacts {
  std::string class_name;                       // from type atoms ("thing" if none)
  std::vector<std::string> attribute_clauses;   // "whose year is '2006'"
  std::vector<std::string> filter_clauses;      // "whose value is > 2000"
  /// (predicate, object var) pairs for relation atoms rooted here.
  std::vector<std::pair<std::string, VarId>> relations;
  bool is_root = true;  // no relation atom points at this variable
};

}  // namespace

std::string Verbalize(const ConjunctiveQuery& query,
                      const rdf::Dictionary& dictionary,
                      const VerbalizeOptions& options) {
  if (query.empty()) return options.prefix + " thing.";
  const rdf::TermId type_term =
      dictionary.Find(rdf::TermKind::kIri, rdf::Vocabulary().type_iri);

  std::map<VarId, VarFacts> facts;
  auto local = [&dictionary](rdf::TermId term) {
    return HumanizeLocalName(rdf::IriLocalName(dictionary.text(term)));
  };
  auto value_text = [&dictionary](rdf::TermId term) {
    if (dictionary.kind(term) == rdf::TermKind::kLiteral) {
      return "'" + std::string(dictionary.text(term)) + "'";
    }
    return std::string(rdf::IriLocalName(dictionary.text(term)));
  };

  std::vector<std::string> ground_clauses;
  for (const Atom& atom : query.atoms()) {
    if (!atom.subject.is_variable) {
      // Ground assertions (e.g. subClassOf(Article, Publication)).
      ground_clauses.push_back(StrFormat(
          "%s %s %s", value_text(atom.subject.term).c_str(),
          local(atom.predicate).c_str(),
          atom.object.is_variable ? "something"
                                  : value_text(atom.object.term).c_str()));
      continue;
    }
    VarFacts& f = facts[atom.subject.var];
    if (atom.predicate == type_term && !atom.object.is_variable) {
      const std::string cls = local(atom.object.term);
      // Keep the most specific (first) class mention.
      if (f.class_name.empty()) f.class_name = cls;
      continue;
    }
    if (atom.object.is_variable) {
      facts[atom.object.var].is_root = false;
      f.relations.emplace_back(local(atom.predicate), atom.object.var);
    } else {
      f.attribute_clauses.push_back(
          StrFormat("whose %s is %s", local(atom.predicate).c_str(),
                    value_text(atom.object.term).c_str()));
    }
  }
  for (const FilterCondition& filter : query.filters()) {
    facts[filter.var].filter_clauses.push_back(StrFormat(
        "that is %s %g", std::string(FilterOpSymbol(filter.op)).c_str(),
        filter.value));
  }

  // Render one variable as a noun phrase, following relations depth-first.
  std::set<VarId> rendered;
  std::function<std::string(VarId, bool)> phrase = [&](VarId v,
                                                       bool with_article) {
    VarFacts& f = facts[v];
    std::string noun = f.class_name.empty() ? "thing" : f.class_name;
    std::string out = with_article ? "some " + noun : noun;
    if (!rendered.insert(v).second) return out;  // avoid cycles
    std::vector<std::string> clauses = f.attribute_clauses;
    for (const std::string& fc : f.filter_clauses) clauses.push_back(fc);
    for (const auto& [pred, object] : f.relations) {
      clauses.push_back(
          StrFormat("with %s %s", pred.c_str(), phrase(object, true).c_str()));
    }
    if (!clauses.empty()) out += " " + Join(clauses, ", ");
    return out;
  };

  // Start from root variables (never the object of a relation), in id order.
  std::vector<std::string> sentences;
  for (auto& [var, f] : facts) {
    if (!f.is_root || rendered.count(var) > 0) continue;
    sentences.push_back(phrase(var, false));
  }
  // Any leftover variables (pure cycles).
  for (auto& [var, f] : facts) {
    (void)f;
    if (rendered.count(var) == 0) sentences.push_back(phrase(var, false));
  }
  for (const std::string& g : ground_clauses) sentences.push_back(g);

  return options.prefix + " " + Join(sentences, "; and every ") + ".";
}

}  // namespace grasp::query
