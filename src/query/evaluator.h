#ifndef GRASP_QUERY_EVALUATOR_H_
#define GRASP_QUERY_EVALUATOR_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "rdf/triple_store.h"

namespace grasp::query {

struct EvalOptions {
  /// Stop after this many distinct answer rows (0 = all). Fig. 5 measures
  /// "time for processing queries until finding at least 10 answers", which
  /// sets limit = 10.
  std::size_t limit = 0;
  /// Safety cap on visited triples across the whole evaluation (0 = none).
  std::size_t max_steps = 0;
  /// Required when the query carries FILTER conditions: resolves bound
  /// terms to their literal text for the numeric comparison. Not owned.
  const rdf::Dictionary* dictionary = nullptr;
};

/// Answers to a conjunctive query (Definition 3): each row maps the query's
/// variables (in `variables` order) to graph vertices.
struct EvalResult {
  std::vector<VarId> variables;
  std::vector<std::vector<rdf::TermId>> rows;
  /// Number of index lookups + triples visited; a machine-independent cost
  /// indicator reported by the benchmarks.
  std::size_t steps = 0;
  /// True if `limit` or `max_steps` stopped the evaluation early.
  bool truncated = false;
};

/// Evaluates `query` over `store` with index-nested-loop joins and a greedy
/// selectivity-based atom order. This is the "underlying database engine"
/// the paper delegates chosen queries to; all variables are treated as
/// distinguished.
///
/// Returns InvalidArgument for queries with no atoms. `store` must be
/// finalized.
Result<EvalResult> Evaluate(const rdf::TripleStore& store,
                            const ConjunctiveQuery& query,
                            const EvalOptions& options = EvalOptions());

}  // namespace grasp::query

#endif  // GRASP_QUERY_EVALUATOR_H_
