#include "summary/augmented_graph.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "rdf/term.h"

namespace grasp::summary {

NodeId AugmentedGraph::GetOrAddValueNode(rdf::TermId value_term) {
  auto it = value_node_of_term_.find(value_term);
  if (it != value_node_of_term_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(SummaryNode{value_term, NodeKind::kValue, 1});
  node_scores_.push_back(1.0);
  value_node_of_term_.emplace(value_term, id);
  return id;
}

EdgeId AugmentedGraph::GetOrAddAttributeEdge(rdf::TermId label, NodeId from,
                                             NodeId to,
                                             std::uint64_t agg_count) {
  const std::pair<std::uint64_t, std::uint64_t> key{
      (static_cast<std::uint64_t>(label) << 32) | from, to};
  auto it = attribute_edge_ids_.find(key);
  if (it != attribute_edge_ids_.end()) {
    // Several keywords can introduce the same augmented edge; keep the
    // largest aggregation count reported for it.
    SummaryEdge& existing = edges_[it->second];
    existing.agg_count = std::max(existing.agg_count, agg_count);
    return it->second;
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(
      SummaryEdge{label, from, to, SummaryEdgeKind::kAttribute, agg_count});
  edge_scores_.push_back(1.0);
  attribute_edge_ids_.emplace(key, id);
  return id;
}

void AugmentedGraph::SetScore(ElementId element, double score) {
  auto& scored = element.is_edge() ? edge_scored_ : node_scored_;
  if (scored.size() <= element.index()) scored.resize(element.index() + 1);
  double& slot = element.is_edge() ? edge_scores_[element.index()]
                                   : node_scores_[element.index()];
  // An element may represent several keywords; remember its best match.
  if (!scored[element.index()] || score > slot) slot = score;
  scored[element.index()] = true;
}

AugmentedGraph AugmentedGraph::Build(
    const SummaryGraph& base,
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  AugmentedGraph g;
  g.nodes_ = base.nodes_;
  g.edges_ = base.edges_;
  g.class_node_of_term_ = base.node_of_term_;
  g.total_entities_ = base.total_entities_;
  g.total_relation_edges_ = base.total_relation_edges_;
  g.node_scores_.assign(g.nodes_.size(), 1.0);
  g.edge_scores_.assign(g.edges_.size(), 1.0);
  g.keyword_elements_.resize(keyword_matches.size());

  // Pre-index base edges by label for kRelationLabel matches.
  std::unordered_map<rdf::TermId, std::vector<EdgeId>> edges_by_label;
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    edges_by_label[g.edges_[e].label].push_back(e);
  }

  auto class_node = [&g](rdf::TermId term) -> NodeId {
    auto it = g.class_node_of_term_.find(term);
    return it == g.class_node_of_term_.end() ? kInvalidNodeId : it->second;
  };

  auto add_keyword_element = [&g](std::size_t kw, ElementId element,
                                  double score) {
    auto& list = g.keyword_elements_[kw];
    for (ScoredElement& existing : list) {
      if (existing.element == element) {
        existing.score = std::max(existing.score, score);
        g.SetScore(element, existing.score);
        return;
      }
    }
    list.push_back(ScoredElement{element, score});
    g.SetScore(element, score);
  };

  // Pass 1 (Def. 5, rule 1): keyword-matching V-vertices and their A-edges.
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind != keyword::KeywordMatch::Kind::kValue) continue;
      if (m.is_filter) {
        // Filter-operator extension: one artificial node stands for the
        // whole satisfying value set; the mapping will bind it to a fresh
        // variable constrained by a FILTER condition.
        const NodeId filter_node = static_cast<NodeId>(g.nodes_.size());
        g.nodes_.push_back(
            SummaryNode{rdf::kInvalidTermId, NodeKind::kArtificial, 1});
        g.node_scores_.push_back(1.0);
        g.filter_of_node_.emplace(filter_node, m.filter);
        for (const keyword::AttrContext& ctx : m.contexts) {
          for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
            const NodeId c = class_node(ctx.classes[i]);
            if (c == kInvalidNodeId) continue;
            const std::uint64_t count =
                i < ctx.counts.size() ? ctx.counts[i] : 1;
            g.GetOrAddAttributeEdge(ctx.attribute, c, filter_node, count);
          }
        }
        add_keyword_element(kw, ElementId::Node(filter_node), m.score);
        continue;
      }
      for (const keyword::AttrContext& ctx : m.contexts) {
        for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
          const NodeId c = class_node(ctx.classes[i]);
          if (c == kInvalidNodeId) continue;
          const std::uint64_t count =
              i < ctx.counts.size() ? ctx.counts[i] : 1;
          const NodeId value_node = g.GetOrAddValueNode(m.term);
          g.GetOrAddAttributeEdge(ctx.attribute, c, value_node, count);
          add_keyword_element(kw, ElementId::Node(value_node), m.score);
        }
      }
    }
  }

  // Pass 2 (Def. 5, rule 2): keyword-matching A-edge labels. Every edge of
  // the augmented graph carrying the matched label is an occurrence of the
  // keyword element (the concrete edges added by pass 1 included), and the
  // artificial-value edge e_k(v', value) is added as well — the data graph
  // always contains values of the attribute that are not keyword elements
  // themselves, which is exactly the condition of the rule. This lets the
  // exploration choose between "the keyword is the attribute of a matched
  // value" (one merged edge) and "the keyword asks for the attribute with a
  // free value" (the artificial edge mapping to a fresh variable).
  std::map<std::pair<rdf::TermId, NodeId>, EdgeId> artificial_edges;
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind != keyword::KeywordMatch::Kind::kAttributeLabel) continue;
      for (const keyword::AttrContext& ctx : m.contexts) {
        for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
          const NodeId c = class_node(ctx.classes[i]);
          if (c == kInvalidNodeId) continue;
          const std::uint64_t count =
              i < ctx.counts.size() ? ctx.counts[i] : 1;
          // Concrete keyword-value edges added by pass 1 under this label —
          // including edges to filter nodes, so "year >2005" merges into a
          // single year(x, ?v) atom with the FILTER on ?v.
          for (EdgeId e = 0; e < g.edges_.size(); ++e) {
            const SummaryEdge& edge = g.edges_[e];
            if (edge.label == m.term && edge.from == c &&
                (g.nodes_[edge.to].kind == NodeKind::kValue ||
                 g.filter_of_node_.count(edge.to) > 0)) {
              add_keyword_element(kw, ElementId::Edge(e), m.score);
            }
          }
          // The artificial-value edge for the free-variable interpretation,
          // shared when several keywords match the same (label, class). Its
          // aggregation count covers every edge with this label, since the
          // free value stands for any of them.
          auto [it, inserted] =
              artificial_edges.try_emplace({m.term, c}, kInvalidNodeId);
          if (inserted) {
            const NodeId artificial = static_cast<NodeId>(g.nodes_.size());
            g.nodes_.push_back(
                SummaryNode{rdf::kInvalidTermId, NodeKind::kArtificial, 1});
            g.node_scores_.push_back(1.0);
            it->second = g.GetOrAddAttributeEdge(m.term, c, artificial, count);
          }
          add_keyword_element(kw, ElementId::Edge(it->second), m.score);
        }
      }
    }
  }

  // Pass 3: class and R-edge label matches refer to existing elements.
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind == keyword::KeywordMatch::Kind::kClass) {
        const NodeId c = class_node(m.term);
        if (c != kInvalidNodeId) {
          add_keyword_element(kw, ElementId::Node(c), m.score);
        }
      } else if (m.kind == keyword::KeywordMatch::Kind::kRelationLabel) {
        auto it = edges_by_label.find(m.term);
        if (it == edges_by_label.end()) continue;
        for (EdgeId e : it->second) {
          add_keyword_element(kw, ElementId::Edge(e), m.score);
        }
      }
    }
  }

  g.BuildAdjacency();
  return g;
}

void AugmentedGraph::BuildAdjacency() {
  const std::size_t nn = nodes_.size();
  incident_offsets_.assign(nn + 1, 0);
  auto count_endpoint = [&](const SummaryEdge& e) {
    ++incident_offsets_[e.from + 1];
    if (e.to != e.from) ++incident_offsets_[e.to + 1];
  };
  for (const SummaryEdge& e : edges_) count_endpoint(e);
  for (std::size_t i = 0; i < nn; ++i) {
    incident_offsets_[i + 1] += incident_offsets_[i];
  }
  incident_edges_.resize(incident_offsets_[nn]);
  std::vector<std::uint32_t> fill(incident_offsets_.begin(),
                                  incident_offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    incident_edges_[fill[edges_[e].from]++] = e;
    if (edges_[e].to != edges_[e].from) {
      incident_edges_[fill[edges_[e].to]++] = e;
    }
  }
}

std::span<const EdgeId> AugmentedGraph::IncidentEdges(NodeId node) const {
  return {incident_edges_.data() + incident_offsets_[node],
          incident_edges_.data() + incident_offsets_[node + 1]};
}

double AugmentedGraph::MatchScore(ElementId element) const {
  return element.is_edge() ? edge_scores_[element.index()]
                           : node_scores_[element.index()];
}

std::string AugmentedGraph::DebugString(
    ElementId element, const rdf::Dictionary& dictionary) const {
  auto term_text = [&dictionary](rdf::TermId term) -> std::string {
    if (term == rdf::kThingTerm) return "Thing";
    if (term == rdf::kInvalidTermId) return "<value>";
    return std::string(rdf::IriLocalName(dictionary.text(term)));
  };
  if (!element.valid()) return "<invalid>";
  if (element.is_node()) {
    const SummaryNode& n = nodes_[element.index()];
    return StrFormat("node(%s)", term_text(n.term).c_str());
  }
  const SummaryEdge& e = edges_[element.index()];
  return StrFormat("edge(%s: %s -> %s)", term_text(e.label).c_str(),
                   term_text(nodes_[e.from].term).c_str(),
                   term_text(nodes_[e.to].term).c_str());
}

}  // namespace grasp::summary
