#include "summary/augmented_graph.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "rdf/term.h"

namespace grasp::summary {

AugmentedGraph::AugmentedGraph(const SummaryGraph& base, bool materialize)
    : base_summary_(&base),
      owned_base_(materialize ? std::make_unique<Csr>(base.csr()) : nullptr),
      overlay_(owned_base_ != nullptr ? *owned_base_ : base.csr()) {
  total_entities_ = base.total_entities();
  total_relation_edges_ = base.total_relation_edges();
}

NodeId AugmentedGraph::GetOrAddValueNode(rdf::TermId value_term) {
  auto it = value_node_of_term_.find(value_term);
  if (it != value_node_of_term_.end()) return it->second;
  const NodeId id =
      overlay_.AddNode(SummaryNode{value_term, NodeKind::kValue, 1});
  value_node_of_term_.emplace(value_term, id);
  return id;
}

EdgeId AugmentedGraph::GetOrAddAttributeEdge(rdf::TermId label, NodeId from,
                                             NodeId to,
                                             std::uint64_t agg_count) {
  const std::pair<std::uint64_t, std::uint64_t> key{
      (static_cast<std::uint64_t>(label) << 32) | from, to};
  auto it = attribute_edge_ids_.find(key);
  if (it != attribute_edge_ids_.end()) {
    // Several keywords can introduce the same augmented edge; keep the
    // largest aggregation count reported for it. Attribute edges are always
    // overlay edges, so mutating the count never touches the shared base.
    SummaryEdge& existing = overlay_.overlay_edge(it->second);
    existing.agg_count = std::max(existing.agg_count, agg_count);
    return it->second;
  }
  const EdgeId id = overlay_.AddEdge(
      SummaryEdge{label, from, to, SummaryEdgeKind::kAttribute, agg_count});
  attribute_edge_ids_.emplace(key, id);
  return id;
}

void AugmentedGraph::SetScore(ElementId element, double score) {
  // An element may represent several keywords; remember its best match.
  auto [it, inserted] = scores_.try_emplace(element.raw(), score);
  if (!inserted && score > it->second) it->second = score;
}

void AugmentedGraph::AddKeywordElement(std::size_t keyword, ElementId element,
                                       double score) {
  auto& list = keyword_elements_[keyword];
  const std::uint64_t key =
      (static_cast<std::uint64_t>(keyword) << 32) | element.raw();
  auto [it, inserted] = keyword_element_pos_.try_emplace(key, list.size());
  if (!inserted) {
    // Deduplicate K_i, keeping the best score. The position map makes this
    // O(1) even when a label keyword covers thousands of summary edges.
    ScoredElement& existing = list[it->second];
    existing.score = std::max(existing.score, score);
    SetScore(element, existing.score);
    return;
  }
  list.push_back(ScoredElement{element, score});
  SetScore(element, score);
}

AugmentedGraph AugmentedGraph::Build(
    const SummaryGraph& base,
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  AugmentedGraph g(base, /*materialize=*/false);
  g.Augment(keyword_matches);
  return g;
}

void AugmentedGraph::Rebuild(
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  overlay_.Reset();
  value_node_of_term_.clear();
  attribute_edge_ids_.clear();
  scores_.clear();
  keyword_element_pos_.clear();
  filter_of_node_.clear();
  // Keep the inner K_i vectors' capacity: shrink the outer list only when a
  // query has fewer keywords, clear (not destroy) the survivors.
  if (keyword_elements_.size() > keyword_matches.size()) {
    keyword_elements_.resize(keyword_matches.size());
  }
  for (auto& list : keyword_elements_) list.clear();
  Augment(keyword_matches);
}

AugmentedGraph AugmentedGraph::BuildMaterialized(
    const SummaryGraph& base,
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  AugmentedGraph g(base, /*materialize=*/true);
  g.Augment(keyword_matches);
  return g;
}

void AugmentedGraph::Augment(
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  keyword_elements_.resize(keyword_matches.size());

  auto class_node = [this](rdf::TermId term) -> NodeId {
    return base_summary_->NodeOfTerm(term);
  };

  // Pass 1 (Def. 5, rule 1): keyword-matching V-vertices and their A-edges.
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind != keyword::KeywordMatch::Kind::kValue) continue;
      if (m.is_filter) {
        // Filter-operator extension: one artificial node stands for the
        // whole satisfying value set; the mapping will bind it to a fresh
        // variable constrained by a FILTER condition.
        const NodeId filter_node = overlay_.AddNode(
            SummaryNode{rdf::kInvalidTermId, NodeKind::kArtificial, 1});
        filter_of_node_.emplace(filter_node, m.filter);
        for (const keyword::AttrContext& ctx : m.contexts) {
          for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
            const NodeId c = class_node(ctx.classes[i]);
            if (c == kInvalidNodeId) continue;
            const std::uint64_t count =
                i < ctx.counts.size() ? ctx.counts[i] : 1;
            GetOrAddAttributeEdge(ctx.attribute, c, filter_node, count);
          }
        }
        AddKeywordElement(kw, ElementId::Node(filter_node), m.score);
        continue;
      }
      for (const keyword::AttrContext& ctx : m.contexts) {
        for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
          const NodeId c = class_node(ctx.classes[i]);
          if (c == kInvalidNodeId) continue;
          const std::uint64_t count =
              i < ctx.counts.size() ? ctx.counts[i] : 1;
          const NodeId value_node = GetOrAddValueNode(m.term);
          GetOrAddAttributeEdge(ctx.attribute, c, value_node, count);
          AddKeywordElement(kw, ElementId::Node(value_node), m.score);
        }
      }
    }
  }

  // Pass 2 (Def. 5, rule 2): keyword-matching A-edge labels. Every edge of
  // the augmented graph carrying the matched label is an occurrence of the
  // keyword element (the concrete edges added by pass 1 included), and the
  // artificial-value edge e_k(v', value) is added as well — the data graph
  // always contains values of the attribute that are not keyword elements
  // themselves, which is exactly the condition of the rule. This lets the
  // exploration choose between "the keyword is the attribute of a matched
  // value" (one merged edge) and "the keyword asks for the attribute with a
  // free value" (the artificial edge mapping to a fresh variable).
  //
  // Candidate concrete edges always target V-vertices or filter nodes, and
  // those exist only in the overlay — so the scan walks the O(matches)
  // overlay extension, never the base edge array.
  std::map<std::pair<rdf::TermId, NodeId>, EdgeId> artificial_edges;
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind != keyword::KeywordMatch::Kind::kAttributeLabel) continue;
      for (const keyword::AttrContext& ctx : m.contexts) {
        for (std::size_t i = 0; i < ctx.classes.size(); ++i) {
          const NodeId c = class_node(ctx.classes[i]);
          if (c == kInvalidNodeId) continue;
          const std::uint64_t count =
              i < ctx.counts.size() ? ctx.counts[i] : 1;
          // Concrete keyword-value edges added by pass 1 under this label —
          // including edges to filter nodes, so "year >2005" merges into a
          // single year(x, ?v) atom with the FILTER on ?v.
          const EdgeId overlay_end = static_cast<EdgeId>(overlay_.NumEdges());
          for (EdgeId e = overlay_.base_edges(); e < overlay_end; ++e) {
            const SummaryEdge& edge = overlay_.edge(e);
            if (edge.label == m.term && edge.from == c &&
                (overlay_.node(edge.to).kind == NodeKind::kValue ||
                 filter_of_node_.count(edge.to) > 0)) {
              AddKeywordElement(kw, ElementId::Edge(e), m.score);
            }
          }
          // The artificial-value edge for the free-variable interpretation,
          // shared when several keywords match the same (label, class). Its
          // aggregation count covers every edge with this label, since the
          // free value stands for any of them.
          auto [it, inserted] =
              artificial_edges.try_emplace({m.term, c}, kInvalidNodeId);
          if (inserted) {
            const NodeId artificial = overlay_.AddNode(
                SummaryNode{rdf::kInvalidTermId, NodeKind::kArtificial, 1});
            it->second = GetOrAddAttributeEdge(m.term, c, artificial, count);
          }
          AddKeywordElement(kw, ElementId::Edge(it->second), m.score);
        }
      }
    }
  }

  // Pass 3: class and R-edge label matches refer to existing base elements,
  // resolved through the summary's precomputed term/label indexes.
  for (std::size_t kw = 0; kw < keyword_matches.size(); ++kw) {
    for (const keyword::KeywordMatch& m : keyword_matches[kw]) {
      if (m.kind == keyword::KeywordMatch::Kind::kClass) {
        const NodeId c = class_node(m.term);
        if (c != kInvalidNodeId) {
          AddKeywordElement(kw, ElementId::Node(c), m.score);
        }
      } else if (m.kind == keyword::KeywordMatch::Kind::kRelationLabel) {
        EdgeId first = kInvalidNodeId;
        const auto run = base_summary_->EdgesWithLabel(m.term, &first);
        for (EdgeId e = 0; e < run.size(); ++e) {
          AddKeywordElement(kw, ElementId::Edge(first + e), m.score);
        }
      }
    }
  }
}

graph::EdgeFilter AugmentedGraph::OverlayScopeBits(
    std::span<const rdf::TermId> sorted_predicates) const {
  const std::span<const SummaryEdge> overlay_edges = overlay_.overlay_edges();
  return graph::EdgeFilter::Build(
      static_cast<std::uint32_t>(overlay_edges.size()), [&](std::uint32_t i) {
        return std::binary_search(sorted_predicates.begin(),
                                  sorted_predicates.end(),
                                  overlay_edges[i].label);
      });
}

double AugmentedGraph::MatchScore(ElementId element) const {
  auto it = scores_.find(element.raw());
  return it == scores_.end() ? 1.0 : it->second;
}

std::size_t AugmentedGraph::OverlayMemoryUsageBytes() const {
  std::size_t bytes = overlay_.MemoryUsageBytes();
  // A materialized build owns its base copy — that O(|summary|) tax is the
  // very thing the microbenchmark's memory counter must show.
  if (owned_base_ != nullptr) bytes += owned_base_->MemoryUsageBytes();
  bytes += value_node_of_term_.size() *
           (sizeof(rdf::TermId) + sizeof(NodeId) + 2 * sizeof(void*));
  bytes += attribute_edge_ids_.size() *
           (2 * sizeof(std::uint64_t) + sizeof(EdgeId) + 2 * sizeof(void*));
  bytes += scores_.size() *
           (sizeof(std::uint32_t) + sizeof(double) + 2 * sizeof(void*));
  for (const auto& list : keyword_elements_) {
    bytes += list.capacity() * sizeof(ScoredElement);
  }
  bytes += filter_of_node_.size() *
           (sizeof(NodeId) + sizeof(FilterSpec) + 2 * sizeof(void*));
  return bytes;
}

std::size_t AugmentedGraph::QueryFootprintBytes() const {
  const std::size_t overlay_nodes = overlay_.overlay_nodes().size();
  const std::size_t overlay_edges = overlay_.overlay_edges().size();
  // Each overlay edge appears in at most two incidence extension lists.
  std::size_t bytes =
      overlay_nodes * sizeof(SummaryNode) +
      overlay_edges * (sizeof(SummaryEdge) + 2 * sizeof(std::uint32_t));
  bytes += value_node_of_term_.size() *
           (sizeof(rdf::TermId) + sizeof(NodeId) + 2 * sizeof(void*));
  bytes += attribute_edge_ids_.size() *
           (2 * sizeof(std::uint64_t) + sizeof(EdgeId) + 2 * sizeof(void*));
  bytes += scores_.size() *
           (sizeof(std::uint32_t) + sizeof(double) + 2 * sizeof(void*));
  bytes += keyword_element_pos_.size() *
           (sizeof(std::uint64_t) + sizeof(std::size_t) + 2 * sizeof(void*));
  for (const auto& list : keyword_elements_) {
    bytes += list.size() * sizeof(ScoredElement);
  }
  bytes += filter_of_node_.size() *
           (sizeof(NodeId) + sizeof(FilterSpec) + 2 * sizeof(void*));
  return bytes;
}

std::string AugmentedGraph::DebugString(
    ElementId element, const rdf::Dictionary& dictionary) const {
  auto term_text = [&dictionary](rdf::TermId term) -> std::string {
    if (term == rdf::kThingTerm) return "Thing";
    if (term == rdf::kInvalidTermId) return "<value>";
    return std::string(rdf::IriLocalName(dictionary.text(term)));
  };
  if (!element.valid()) return "<invalid>";
  if (element.is_node()) {
    const SummaryNode& n = node(element.index());
    return StrFormat("node(%s)", term_text(n.term).c_str());
  }
  const SummaryEdge& e = edge(element.index());
  return StrFormat("edge(%s: %s -> %s)", term_text(e.label).c_str(),
                   term_text(node(e.from).term).c_str(),
                   term_text(node(e.to).term).c_str());
}

}  // namespace grasp::summary
