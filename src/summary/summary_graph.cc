#include "summary/summary_graph.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/aligned.h"
#include "common/logging.h"

namespace grasp::summary {

SummaryGraph SummaryGraph::Build(const rdf::DataGraph& graph) {
  SummaryGraph s;
  s.total_entities_ = graph.NumEntities();

  // One node per class vertex, in data-graph order (deterministic).
  AlignedVector<SummaryNode> nodes;
  for (const rdf::Vertex& v : graph.vertices()) {
    if (v.kind != rdf::VertexKind::kClass) continue;
    const NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back(SummaryNode{v.term, NodeKind::kClass, 0});
    s.node_of_term_.emplace(v.term, id);
  }

  // Aggregation targets of an endpoint vertex: its classes, or Thing.
  bool needs_thing = false;
  auto endpoint_nodes = [&](rdf::VertexId v,
                            std::vector<NodeId>* out) -> bool {
    out->clear();
    const rdf::Vertex& vertex = graph.vertex(v);
    if (vertex.kind == rdf::VertexKind::kClass) {
      out->push_back(s.node_of_term_.at(vertex.term));
      return true;
    }
    if (vertex.kind == rdf::VertexKind::kValue) return false;
    for (rdf::VertexId c : graph.ClassesOf(v)) {
      out->push_back(s.node_of_term_.at(graph.vertex(c).term));
    }
    if (out->empty()) {
      needs_thing = true;
      out->push_back(kInvalidNodeId);  // patched to the Thing node below
    }
    return true;
  };

  // First sweep: count |v_agg| per class and detect untyped entities.
  for (const rdf::Vertex& v : graph.vertices()) {
    if (v.kind != rdf::VertexKind::kEntity) continue;
    auto classes = graph.ClassesOf(graph.VertexOf(v.term));
    if (classes.empty()) {
      needs_thing = true;
    } else {
      for (rdf::VertexId c : classes) {
        ++nodes[s.node_of_term_.at(graph.vertex(c).term)].agg_count;
      }
    }
  }
  if (needs_thing) {
    s.thing_node_ = static_cast<NodeId>(nodes.size());
    std::uint64_t untyped = 0;
    for (const rdf::Vertex& v : graph.vertices()) {
      if (v.kind == rdf::VertexKind::kEntity &&
          graph.ClassesOf(graph.VertexOf(v.term)).empty()) {
        ++untyped;
      }
    }
    nodes.push_back(SummaryNode{rdf::kThingTerm, NodeKind::kThing, untyped});
    s.node_of_term_.emplace(rdf::kThingTerm, s.thing_node_);
  }

  // Project R-edges and subclass edges onto class nodes, aggregating counts.
  std::map<std::tuple<rdf::TermId, NodeId, NodeId>,
           std::pair<SummaryEdgeKind, std::uint64_t>>
      aggregated;
  std::vector<NodeId> from_nodes, to_nodes;
  for (const rdf::Edge& e : graph.edges()) {
    if (e.kind == rdf::EdgeKind::kAttribute || e.kind == rdf::EdgeKind::kType) {
      continue;  // A-edges join only via augmentation; type edges define [[v']]
    }
    if (e.kind == rdf::EdgeKind::kRelation) {
      s.total_relation_edges_ += 1;
      if (!endpoint_nodes(e.from, &from_nodes) ||
          !endpoint_nodes(e.to, &to_nodes)) {
        continue;
      }
      for (NodeId f : from_nodes) {
        if (f == kInvalidNodeId) f = s.thing_node_;
        for (NodeId t : to_nodes) {
          if (t == kInvalidNodeId) t = s.thing_node_;
          auto& slot = aggregated[{e.label, f, t}];
          slot.first = SummaryEdgeKind::kRelation;
          ++slot.second;
        }
      }
    } else {  // subclass
      const NodeId f = s.node_of_term_.at(graph.vertex(e.from).term);
      const NodeId t = s.node_of_term_.at(graph.vertex(e.to).term);
      auto& slot = aggregated[{e.label, f, t}];
      slot.first = SummaryEdgeKind::kSubclass;
      ++slot.second;
    }
  }
  // The aggregation map iterates in (label, from, to) order, so same-label
  // edges land contiguously — that ordering is what EdgesWithLabel serves.
  AlignedVector<SummaryEdge> edges;
  edges.reserve(aggregated.size());
  for (const auto& [key, value] : aggregated) {
    const auto& [label, from, to] = key;
    const EdgeId id = static_cast<EdgeId>(edges.size());
    auto [it, inserted] = s.edges_of_label_.try_emplace(label, id, id + 1);
    if (!inserted) it->second.second = id + 1;
    edges.push_back(SummaryEdge{label, from, to, value.first, value.second});
  }

  s.csr_ = Csr::Build(std::move(nodes), std::move(edges),
                      graph::kIncidentAdjacency);
  return s;
}

SummaryGraph SummaryGraph::FromSnapshotParts(Csr csr,
                                             const SnapshotScalars& scalars) {
  SummaryGraph s;
  s.csr_ = std::move(csr);
  s.thing_node_ = scalars.thing_node;
  s.total_entities_ = scalars.total_entities;
  s.total_relation_edges_ = scalars.total_relation_edges;
  s.node_of_term_.reserve(s.csr_.NumNodes());
  for (NodeId n = 0; n < s.csr_.NumNodes(); ++n) {
    s.node_of_term_.try_emplace(s.csr_.node(n).term, n);
  }
  // Same incremental run-extension Build uses when emitting edges in label
  // order, so the rebuilt ranges are identical.
  for (EdgeId e = 0; e < s.csr_.NumEdges(); ++e) {
    auto [it, inserted] =
        s.edges_of_label_.try_emplace(s.csr_.edge(e).label, e, e + 1);
    if (!inserted) it->second.second = e + 1;
  }
  return s;
}

NodeId SummaryGraph::NodeOfTerm(rdf::TermId term) const {
  auto it = node_of_term_.find(term);
  return it == node_of_term_.end() ? kInvalidNodeId : it->second;
}

std::span<const SummaryEdge> SummaryGraph::EdgesWithLabel(
    rdf::TermId label, EdgeId* first_id) const {
  auto it = edges_of_label_.find(label);
  if (it == edges_of_label_.end()) {
    if (first_id != nullptr) *first_id = kInvalidNodeId;
    return {};
  }
  const auto [first, last] = it->second;
  if (first_id != nullptr) *first_id = first;
  return {csr_.edges().data() + first, csr_.edges().data() + last};
}

graph::EdgeFilter SummaryGraph::PredicateScopeFilter(
    std::span<const rdf::TermId> sorted_predicates) const {
  return graph::EdgeFilter::Build(
      static_cast<std::uint32_t>(csr_.NumEdges()), [&](std::uint32_t e) {
        const SummaryEdge& edge = csr_.edge(e);
        if (edge.kind == SummaryEdgeKind::kSubclass) return true;
        return std::binary_search(sorted_predicates.begin(),
                                  sorted_predicates.end(), edge.label);
      });
}

std::size_t SummaryGraph::MemoryUsageBytes() const {
  return csr_.MemoryUsageBytes() +
         node_of_term_.size() *
             (sizeof(rdf::TermId) + sizeof(NodeId) + 2 * sizeof(void*)) +
         edges_of_label_.size() *
             (sizeof(rdf::TermId) + 2 * sizeof(EdgeId) + 2 * sizeof(void*));
}

}  // namespace grasp::summary
