#include "summary/distance_index.h"

#include <deque>

namespace grasp::summary {

KeywordDistanceIndex KeywordDistanceIndex::Build(const AugmentedGraph& graph) {
  KeywordDistanceIndex index(graph.NumNodes());
  const std::size_t num_elements = graph.num_elements();
  index.distances_.reserve(graph.num_keywords());

  for (std::size_t kw = 0; kw < graph.num_keywords(); ++kw) {
    std::vector<std::uint32_t> dist(num_elements, kUnreachable);
    std::deque<ElementId> frontier;
    for (const ScoredElement& se : graph.keyword_elements()[kw]) {
      const std::size_t at = graph.DenseIndex(se.element);
      if (dist[at] == 0) continue;  // duplicate source
      dist[at] = 0;
      frontier.push_back(se.element);
    }
    while (!frontier.empty()) {
      const ElementId current = frontier.front();
      frontier.pop_front();
      const std::uint32_t d = dist[index.DenseIndex(current)];
      auto relax = [&](ElementId neighbor) {
        std::uint32_t& slot = dist[index.DenseIndex(neighbor)];
        if (slot != kUnreachable) return;
        slot = d + 1;
        frontier.push_back(neighbor);
      };
      if (current.is_node()) {
        for (EdgeId e : graph.IncidentEdges(current.index())) {
          relax(ElementId::Edge(e));
        }
      } else {
        const SummaryEdge& e = graph.edge(current.index());
        relax(ElementId::Node(e.from));
        if (e.to != e.from) relax(ElementId::Node(e.to));
      }
    }
    index.distances_.push_back(std::move(dist));
  }
  return index;
}

bool KeywordDistanceIndex::CanStillConnect(std::size_t cursor_keyword,
                                           ElementId element,
                                           std::uint32_t cursor_distance,
                                           std::uint32_t dmax) const {
  if (cursor_distance > dmax) return false;
  const std::uint32_t budget = (dmax - cursor_distance) + dmax;
  for (std::size_t j = 0; j < distances_.size(); ++j) {
    if (j == cursor_keyword) continue;
    const std::uint32_t d = distances_[j][DenseIndex(element)];
    if (d == kUnreachable || d > budget) return false;
  }
  return true;
}

}  // namespace grasp::summary
