#ifndef GRASP_SUMMARY_SUMMARY_GRAPH_H_
#define GRASP_SUMMARY_SUMMARY_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/edge_filter.h"
#include "rdf/data_graph.h"

namespace grasp::summary {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr NodeId kInvalidNodeId = 0xffffffffu;

/// Node roles in the (augmented) summary graph.
enum class NodeKind : std::uint8_t {
  kClass = 0,      ///< C-vertex carried over from the data graph
  kThing = 1,      ///< aggregation of all untyped entities (Def. 4)
  kValue = 2,      ///< V-vertex added by augmentation (Def. 5, rule 1)
  kArtificial = 3, ///< artificial `value` node (Def. 5, rule 2)
};

enum class SummaryEdgeKind : std::uint8_t {
  kRelation = 0,
  kSubclass = 1,
  kAttribute = 2,  ///< only present after augmentation
};

struct SummaryNode {
  /// Class term, literal term (kValue), rdf::kThingTerm, or kInvalidTermId
  /// for artificial nodes.
  rdf::TermId term = rdf::kInvalidTermId;
  NodeKind kind = NodeKind::kClass;
  /// |v_agg|: number of data-graph E-vertices this node aggregates (the
  /// popularity numerator of cost model C2). 1 for augmented nodes.
  std::uint64_t agg_count = 1;
};

struct SummaryEdge {
  rdf::TermId label = rdf::kInvalidTermId;
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  SummaryEdgeKind kind = SummaryEdgeKind::kRelation;
  /// |e_agg|: number of data-graph edges this summary edge aggregates.
  std::uint64_t agg_count = 1;
};

/// The summary graph G' of Definition 4: one node per class plus `Thing`,
/// edges e(c1, c2) whenever some data edge e(v1, v2) exists with v1 of type
/// c1 and v2 of type c2 (projected over all class combinations), plus the
/// `subclass` hierarchy. Aggregation counts are retained for the popularity
/// cost of Sec. V.
///
/// The summary is a *schema extracted from the data*: for every path in the
/// data graph there is at least one path here (tested as a property).
///
/// Topology lives in the shared immutable graph::CsrGraph core, with
/// undirected incidence built once at index time; per-query augmentation
/// layers a graph::OverlayGraph view on top (see AugmentedGraph) instead of
/// copying any of it.
class SummaryGraph {
 public:
  using Csr = graph::CsrGraph<SummaryNode, SummaryEdge>;

  /// Builds the summary of `graph`. A `Thing` node is created only when
  /// untyped entities exist.
  static SummaryGraph Build(const rdf::DataGraph& graph);

  /// Scalar fields an index snapshot must persist next to the topology.
  struct SnapshotScalars {
    NodeId thing_node = kInvalidNodeId;
    std::uint64_t total_entities = 0;
    std::uint64_t total_relation_edges = 0;
  };

  /// Adopts a prebuilt topology from an index snapshot: the CSR core points
  /// (zero-copy) into the mapping; the term->node and label-range hashes are
  /// rebuilt in one linear sweep over the mapped records. Produces a summary
  /// indistinguishable from Build() on the same data (edges are stored in
  /// label-contiguous build order, which is what EdgesWithLabel relies on).
  static SummaryGraph FromSnapshotParts(Csr csr,
                                        const SnapshotScalars& scalars);

  SnapshotScalars snapshot_scalars() const {
    return SnapshotScalars{thing_node_, total_entities_,
                           total_relation_edges_};
  }

  SummaryGraph(const SummaryGraph&) = delete;
  SummaryGraph& operator=(const SummaryGraph&) = delete;
  SummaryGraph(SummaryGraph&&) = default;
  SummaryGraph& operator=(SummaryGraph&&) = default;

  /// The shared immutable topology core (incident adjacency).
  const Csr& csr() const { return csr_; }

  std::span<const SummaryNode> nodes() const { return csr_.nodes(); }
  std::span<const SummaryEdge> edges() const { return csr_.edges(); }
  std::size_t NumNodes() const { return csr_.NumNodes(); }
  std::size_t NumEdges() const { return csr_.NumEdges(); }

  /// Node for a class term (or rdf::kThingTerm); kInvalidNodeId if absent.
  NodeId NodeOfTerm(rdf::TermId term) const;

  /// The contiguous run of edge ids carrying `label` (edges are sorted by
  /// label at build time). Lets augmentation resolve relation-label keyword
  /// matches without scanning all edges per query.
  std::span<const SummaryEdge> EdgesWithLabel(rdf::TermId label,
                                              EdgeId* first_id) const;

  NodeId thing_node() const { return thing_node_; }

  /// Base half of a predicate-scope mask: admits edges whose label is in
  /// `sorted_predicates` (ascending TermIds). Subclass edges stay
  /// traversable — they are schema structure, and scoping them out would
  /// disconnect the class hierarchy rather than restrict the predicates an
  /// interpretation may use. Build once per scope shape (the engine caches
  /// these) and compose with AugmentedGraph::OverlayScopeBits per query.
  graph::EdgeFilter PredicateScopeFilter(
      std::span<const rdf::TermId> sorted_predicates) const;

  /// Total number of E-vertices (resp. R-edges) in the underlying data
  /// graph: the popularity denominators of cost model C2.
  std::uint64_t total_entities() const { return total_entities_; }
  std::uint64_t total_relation_edges() const { return total_relation_edges_; }

  /// Approximate heap footprint in bytes (Fig. 6b graph-index size).
  std::size_t MemoryUsageBytes() const;

 private:
  SummaryGraph() = default;

  Csr csr_;
  std::unordered_map<rdf::TermId, NodeId> node_of_term_;
  /// label -> [first, last) edge-id range; edges are built label-sorted.
  std::unordered_map<rdf::TermId, std::pair<EdgeId, EdgeId>> edges_of_label_;
  NodeId thing_node_ = kInvalidNodeId;
  std::uint64_t total_entities_ = 0;
  std::uint64_t total_relation_edges_ = 0;
};

}  // namespace grasp::summary

#endif  // GRASP_SUMMARY_SUMMARY_GRAPH_H_
