#include "summary/augmentation_cache.h"

#include <cstring>
#include <type_traits>
#include <utility>

namespace grasp::summary {
namespace {

/// Appends the raw bytes of a trivially-copyable value. Scores are doubles
/// compared bit-exactly: the engine's coverage boost rescales them, and two
/// match sets differing only in scores build different graphs.
template <typename T>
void AppendRaw(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(T));
}

}  // namespace

std::string AugmentationCacheKey(
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches) {
  std::string key;
  // Rough pre-size: fixed header per match; contexts grow it as needed.
  std::size_t matches = 0;
  for (const auto& list : keyword_matches) matches += list.size();
  key.reserve(16 + 48 * matches);

  AppendRaw(&key, static_cast<std::uint32_t>(keyword_matches.size()));
  for (const auto& list : keyword_matches) {
    AppendRaw(&key, static_cast<std::uint32_t>(list.size()));
    for (const keyword::KeywordMatch& m : list) {
      AppendRaw(&key, static_cast<std::uint8_t>(m.kind));
      AppendRaw(&key, m.term);
      AppendRaw(&key, m.score);
      AppendRaw(&key, static_cast<std::uint8_t>(m.is_filter));
      if (m.is_filter) {
        AppendRaw(&key, static_cast<std::uint8_t>(m.filter.op));
        AppendRaw(&key, m.filter.value);
      }
      AppendRaw(&key, static_cast<std::uint32_t>(m.contexts.size()));
      for (const keyword::AttrContext& ctx : m.contexts) {
        AppendRaw(&key, ctx.attribute);
        AppendRaw(&key, static_cast<std::uint32_t>(ctx.classes.size()));
        for (rdf::TermId c : ctx.classes) AppendRaw(&key, c);
        AppendRaw(&key, static_cast<std::uint32_t>(ctx.counts.size()));
        for (std::uint64_t n : ctx.counts) AppendRaw(&key, n);
      }
    }
  }
  return key;
}

namespace {

/// The key is stored twice (entry + index) and each index slot costs a
/// node allocation; a fixed overhead constant keeps the accounting honest
/// without chasing container internals.
std::size_t BookkeepingBytes(const std::string& key) {
  constexpr std::size_t kEntryOverhead =
      sizeof(void*) * 8 + sizeof(AugmentedGraph);
  return 2 * key.capacity() + kEntryOverhead;
}

}  // namespace

AugmentationCache::GraphPtr AugmentationCache::GetOrBuild(
    std::string key, const BuildFn& build, bool* hit) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      return it->second->graph;
    }
    ++stats_.misses;
    if (hit != nullptr) *hit = false;
  }

  // Build outside the lock: concurrent misses on distinct keys proceed in
  // parallel. A racing build of the same key is possible; the second insert
  // detects it and discards its own graph.
  GraphPtr built = build();
  // Charge the query's marginal footprint, not the pooled shell's
  // high-water capacity: the shell's fixed arrays belong to the pool's
  // accounting, and charging them here would both re-bill a fixed cost per
  // entry and let one warmed-up shell trip the oversize rejection forever.
  Entry entry{std::move(key), built, 0, built->QueryFootprintBytes()};
  entry.bytes = entry.graph_bytes + BookkeepingBytes(entry.key);
  if (entry.bytes > max_bytes_) {
    // An entry that alone exceeds the budget is never admitted: inserting
    // it would evict every resident entry on its way out and leave the
    // cache flushed. The caller still gets its graph, just uncached.
    return built;
  }

  // Victims are moved out of the lock scope before they destruct: dropping
  // the last reference runs the pool-release deleter, which should not
  // stall every concurrent hit probe behind this insert.
  std::vector<GraphPtr> evicted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(entry.key);
    if (it != index_.end()) {
      // A racing builder of the same key won; serve its (shared) entry and
      // drop our own build. The call stays a miss — it paid a full build —
      // so hits + misses equals calls and hit-rate math stays honest.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->graph;
    }
    charged_bytes_ += entry.bytes;
    graph_bytes_ += entry.graph_bytes;
    lru_.push_front(std::move(entry));
    index_.emplace(lru_.front().key, lru_.begin());
    while ((charged_bytes_ > max_bytes_ || lru_.size() > max_entries_) &&
           !lru_.empty()) {
      // Evict least-recently-used. In-flight queries holding the
      // shared_ptr keep the evicted graph alive until they end.
      Entry& victim = lru_.back();
      charged_bytes_ -= victim.bytes;
      graph_bytes_ -= victim.graph_bytes;
      index_.erase(victim.key);
      evicted.push_back(std::move(victim.graph));
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  return built;
}

}  // namespace grasp::summary
