#ifndef GRASP_SUMMARY_DISTANCE_INDEX_H_
#define GRASP_SUMMARY_DISTANCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "summary/augmented_graph.h"

namespace grasp::summary {

/// Per-keyword hop distances on the augmented summary graph — the
/// "indexing connectivity for further speed up" the paper leaves as future
/// work (Sec. IX), restricted to what stays sound with query-specific costs
/// (Sec. VI-A: distance information applies to query-independent parts
/// only).
///
/// For every keyword i and every element n (node or edge), `Distance(i, n)`
/// is the minimum number of exploration steps — elements visited after n —
/// needed to reach some element of K_i from n, walking node↔incident-edge
/// adjacency exactly like the cursor exploration does. A keyword element of
/// K_i has distance 0.
///
/// The exploration uses these distances as an admissible reachability test:
/// a cursor of keyword i at element n with path distance d can contribute a
/// matching subgraph only if every other keyword j can still meet one of
/// its paths at a connecting element, which requires
///     Distance(j, n) <= (dmax - d) + dmax
/// (the cursor walks at most dmax - d further; j's path is at most dmax
/// long). Cursors violating the test for any j are pruned without affecting
/// the top-k result.
class KeywordDistanceIndex {
 public:
  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

  /// Runs one multi-source BFS per keyword. O(|K| * (nodes + edges)).
  static KeywordDistanceIndex Build(const AugmentedGraph& graph);

  /// Hops from element `n` to the nearest element of keyword `i`.
  std::uint32_t Distance(std::size_t keyword, ElementId element) const {
    return distances_[keyword][DenseIndex(element)];
  }

  /// True when a cursor of `keyword` at `element` with path distance
  /// `cursor_distance` can still take part in some matching subgraph of
  /// radius `dmax`, as far as every *other* keyword's reachability is
  /// concerned.
  bool CanStillConnect(std::size_t cursor_keyword, ElementId element,
                       std::uint32_t cursor_distance,
                       std::uint32_t dmax) const;

  std::size_t num_keywords() const { return distances_.size(); }

 private:
  explicit KeywordDistanceIndex(std::size_t num_nodes)
      : num_nodes_(num_nodes) {}

  /// Same layout as AugmentedGraph::DenseIndex, without needing the graph
  /// alive at query time.
  std::size_t DenseIndex(ElementId element) const {
    return element.is_edge() ? num_nodes_ + element.index() : element.index();
  }

  std::size_t num_nodes_ = 0;
  /// distances_[keyword][dense element index] in exploration hops.
  std::vector<std::vector<std::uint32_t>> distances_;
};

}  // namespace grasp::summary

#endif  // GRASP_SUMMARY_DISTANCE_INDEX_H_
