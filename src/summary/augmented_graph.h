#ifndef GRASP_SUMMARY_AUGMENTED_GRAPH_H_
#define GRASP_SUMMARY_AUGMENTED_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/filter_op.h"
#include "common/hash.h"
#include "graph/edge_filter.h"
#include "graph/overlay_graph.h"
#include "keyword/keyword_index.h"
#include "summary/summary_graph.h"

namespace grasp::summary {

/// Uniform address for a graph element: exploration (Alg. 1) walks vertices
/// *and* edges, since keywords may map to either. The high bit tags edges.
class ElementId {
 public:
  ElementId() : raw_(0xffffffffu) {}

  static ElementId Node(NodeId id) { return ElementId(id); }
  static ElementId Edge(EdgeId id) { return ElementId(id | kEdgeBit); }

  bool valid() const { return raw_ != 0xffffffffu; }
  bool is_edge() const { return (raw_ & kEdgeBit) != 0 && valid(); }
  bool is_node() const { return valid() && !is_edge(); }
  std::uint32_t index() const { return raw_ & ~kEdgeBit; }
  std::uint32_t raw() const { return raw_; }

  friend bool operator==(ElementId a, ElementId b) { return a.raw_ == b.raw_; }
  friend bool operator<(ElementId a, ElementId b) { return a.raw_ < b.raw_; }

 private:
  explicit ElementId(std::uint32_t raw) : raw_(raw) {}
  static constexpr std::uint32_t kEdgeBit = 0x80000000u;
  std::uint32_t raw_;
};

struct ElementIdHash {
  std::size_t operator()(ElementId id) const {
    return std::hash<std::uint32_t>{}(id.raw());
  }
};

/// A keyword element: a graph element together with its matching score.
struct ScoredElement {
  ElementId element;
  double score = 1.0;  ///< sm(n) in (0, 1]
};

/// The augmented summary graph G'_K of Definition 5: a copy-free per-query
/// *view* of the summary graph extended with
///  - the keyword-matching V-vertices, connected to the classes of their
///    subjects through the corresponding A-edges, and
///  - for keyword-matching A-edge labels, an A-edge to a fresh artificial
///    `value` node per class context (Def. 5, rule 2 — the free-variable
///    interpretation); every concrete same-label edge added by the first
///    rule is additionally registered as an occurrence of the label keyword,
///    so the exploration can merge "attribute" and "value" keywords into a
///    single edge.
///
/// Base summary elements keep their ids and are borrowed, never copied;
/// augmentation elements get ids past the base counts and live in a
/// graph::OverlayGraph extension. Per-query build work is therefore
/// O(keyword matches), independent of the summary size.
///
/// The graph also records, per input keyword, the set K_i of keyword
/// elements with their matching scores, and per element the best score
/// (used by cost model C3).
class AugmentedGraph {
 public:
  using Csr = SummaryGraph::Csr;
  using Overlay = graph::OverlayGraph<SummaryNode, SummaryEdge>;

  /// Builds the augmentation as an overlay borrowing `base`'s CSR core.
  /// `keyword_matches[i]` is the Lookup() result for keyword i. The base
  /// summary graph must outlive the result.
  static AugmentedGraph Build(
      const SummaryGraph& base,
      const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches);

  /// Reference variant that deep-copies the base CSR before overlaying —
  /// the seed's copy-based semantics, kept for differential testing and for
  /// callers that must detach from the summary's lifetime. Element ids,
  /// adjacency order, scores and keyword sets are identical to Build().
  static AugmentedGraph BuildMaterialized(
      const SummaryGraph& base,
      const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches);

  /// An empty, reusable overlay shell over `base`: call Rebuild() once per
  /// query. A pooled shell keeps its allocations (overlay vectors, dense
  /// incidence extensions, dedup tables) across queries, so steady-state
  /// augmentation reuses memory instead of reconstructing it. The base
  /// summary graph must outlive the shell.
  static AugmentedGraph MakeOverlayShell(const SummaryGraph& base) {
    return AugmentedGraph(base, /*materialize=*/false);
  }

  /// Resets the graph to the bare base (O(1) overlay epoch bump plus table
  /// clears that keep capacity) and augments it for `keyword_matches`. The
  /// result is element-for-element identical to a fresh Build().
  void Rebuild(
      const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches);

  AugmentedGraph(const AugmentedGraph&) = delete;
  AugmentedGraph& operator=(const AugmentedGraph&) = delete;
  AugmentedGraph(AugmentedGraph&&) = default;
  AugmentedGraph& operator=(AugmentedGraph&&) = default;

  std::size_t NumNodes() const { return overlay_.NumNodes(); }
  std::size_t NumEdges() const { return overlay_.NumEdges(); }
  const SummaryNode& node(NodeId id) const { return overlay_.node(id); }
  const SummaryEdge& edge(EdgeId id) const { return overlay_.edge(id); }

  /// First overlay node / edge id (== number of base elements).
  std::uint32_t base_nodes() const { return overlay_.base_nodes(); }
  std::uint32_t base_edges() const { return overlay_.base_edges(); }

  /// All edges touching a node (undirected incidence; exploration follows
  /// incoming and outgoing edges alike): the base CSR run chained with the
  /// overlay extension list.
  graph::ChainedIds IncidentEdges(NodeId node) const {
    return overlay_.IncidentEdges(node);
  }

  /// Overlay half of a predicate-scope mask: one bit per augmentation
  /// (overlay) edge, set iff its label is in `sorted_predicates`
  /// (ascending). Overlay edges are the A-edges Def. 5 adds, so a scope
  /// that excludes an attribute predicate masks its augmented edges too.
  /// O(augmentation size), built per query; the base half is the
  /// long-lived SummaryGraph::PredicateScopeFilter the engine caches.
  graph::EdgeFilter OverlayScopeBits(
      std::span<const rdf::TermId> sorted_predicates) const;

  /// Composes the cached base mask with this augmentation's overlay bits.
  /// `base` must cover exactly base_edges() edges and outlive the result.
  graph::OverlayEdgeFilter ScopedFilter(
      const graph::EdgeFilter* base,
      std::span<const rdf::TermId> sorted_predicates) const {
    return graph::OverlayEdgeFilter(base, OverlayScopeBits(sorted_predicates),
                                    base_edges());
  }

  /// K_i per keyword (deduplicated, best score kept).
  const std::vector<std::vector<ScoredElement>>& keyword_elements() const {
    return keyword_elements_;
  }
  std::size_t num_keywords() const { return keyword_elements_.size(); }

  /// Best matching score sm(n) of an element; 1.0 for non-keyword elements.
  double MatchScore(ElementId element) const;

  /// Filter-operator extension (Sec. IX): the comparison an artificial node
  /// carries when it was introduced by an operator keyword such as ">2000";
  /// nullptr for ordinary nodes. The query mapping turns it into a FILTER
  /// condition on the node's variable.
  const FilterSpec* FilterOf(NodeId node) const {
    auto it = filter_of_node_.find(node);
    return it == filter_of_node_.end() ? nullptr : &it->second;
  }

  /// Popularity denominators inherited from the summary graph.
  std::uint64_t total_entities() const { return total_entities_; }
  std::uint64_t total_relation_edges() const { return total_relation_edges_; }

  std::size_t num_elements() const { return NumNodes() + NumEdges(); }

  /// Dense [0, num_elements) index of an element: nodes first, then edges.
  /// The exploration's flat per-element state (path lists, BFS distances)
  /// is addressed through this.
  std::size_t DenseIndex(ElementId element) const {
    return element.is_edge() ? NumNodes() + element.index() : element.index();
  }

  /// Bytes owned by this graph: overlay extension + per-query maps, plus the
  /// deep-copied base for BuildMaterialized (a borrowed base contributes
  /// nothing). The augmentation microbenchmark tracks this to show the
  /// copy-free per-query footprint is O(matches), not O(summary).
  std::size_t OverlayMemoryUsageBytes() const;

  /// Bytes attributable to the *current query's* augmentation content
  /// (element records, incidence entries, keyword sets, dedup map
  /// entries) — sizes, not capacities. A pooled shell's high-water
  /// capacity (dense incidence arrays, warmed vectors) is serving
  /// infrastructure accounted by the engine's pool stats; the
  /// augmentation cache charges this marginal figure so one big shell
  /// can neither blow the budget for every later entry nor re-bill the
  /// fixed arrays per cached keyword set.
  std::size_t QueryFootprintBytes() const;

  /// Human-readable element description (for logging and examples).
  std::string DebugString(ElementId element,
                          const rdf::Dictionary& dictionary) const;

 private:
  AugmentedGraph(const SummaryGraph& base, bool materialize);

  void Augment(
      const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches);
  NodeId GetOrAddValueNode(rdf::TermId value_term);
  EdgeId GetOrAddAttributeEdge(rdf::TermId label, NodeId from, NodeId to,
                               std::uint64_t agg_count);
  void SetScore(ElementId element, double score);
  void AddKeywordElement(std::size_t keyword, ElementId element, double score);

  const SummaryGraph* base_summary_;
  /// Deep copy of the base CSR (BuildMaterialized only); Build() leaves this
  /// empty and the overlay borrows the summary's long-lived core directly.
  std::unique_ptr<Csr> owned_base_;
  Overlay overlay_;

  std::unordered_map<rdf::TermId, NodeId> value_node_of_term_;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, EdgeId, PairHash>
      attribute_edge_ids_;
  /// Best match score per element, keyed by ElementId::raw(); elements never
  /// matched by any keyword are absent (score 1.0). O(matches) entries.
  std::unordered_map<std::uint32_t, double> scores_;
  std::vector<std::vector<ScoredElement>> keyword_elements_;
  /// (keyword << 32 | element raw) -> position in keyword_elements_[keyword];
  /// constant-time K_i deduplication.
  std::unordered_map<std::uint64_t, std::size_t> keyword_element_pos_;
  std::unordered_map<NodeId, FilterSpec> filter_of_node_;
  std::uint64_t total_entities_ = 0;
  std::uint64_t total_relation_edges_ = 0;
};

}  // namespace grasp::summary

#endif  // GRASP_SUMMARY_AUGMENTED_GRAPH_H_
