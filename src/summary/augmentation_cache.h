#ifndef GRASP_SUMMARY_AUGMENTATION_CACHE_H_
#define GRASP_SUMMARY_AUGMENTATION_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "keyword/keyword_index.h"
#include "summary/augmented_graph.h"

namespace grasp::summary {

/// Canonical serialization of the matched keyword-element multiset: every
/// field AugmentedGraph::Augment consumes (per keyword, in order: match
/// kind, term, bit-exact score, filter spec, attribute contexts with class
/// and count lists). Two match sets with equal keys therefore build
/// element-for-element identical augmented graphs — including element ids,
/// which depend on keyword order, so the key is order-sensitive by design.
std::string AugmentationCacheKey(
    const std::vector<std::vector<keyword::KeywordMatch>>& keyword_matches);

/// A byte-bounded LRU cache in front of AugmentedGraph::Build. Queries
/// sharing their matched keyword-element sets (repeated queries, shared
/// keyword prefixes after per-keyword truncation) skip augmentation
/// entirely on a hit and share one immutable graph — AugmentedGraph is
/// read-only after construction, so concurrent explorations over a cached
/// entry are safe.
///
/// Entries are held as shared_ptrs: eviction drops the cache's reference,
/// and the graph is destroyed (or returned to its pool, if the builder
/// attached a pooling deleter) once the last in-flight query releases it.
class AugmentationCache {
 public:
  using GraphPtr = std::shared_ptr<const AugmentedGraph>;
  using BuildFn = std::function<GraphPtr()>;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t charged_bytes = 0;
    /// Portion of charged_bytes that is the entries' marginal query
    /// content (AugmentedGraph::QueryFootprintBytes); the rest is keys and
    /// LRU/index bookkeeping.
    std::size_t graph_bytes = 0;
    std::size_t max_bytes = 0;
  };

  /// `max_bytes` bounds the sum of charged entry sizes (overlay footprint
  /// plus key and bookkeeping overhead); `max_entries` bounds residency
  /// count. The entry bound matters when entries are pooled overlay shells:
  /// a resident entry pins its pool slot until eviction, so the bound keeps
  /// a byte budget worth thousands of tiny augmentations from exhausting
  /// the pool and degrading every miss to a transient allocation.
  explicit AugmentationCache(std::size_t max_bytes,
                             std::size_t max_entries = kNoEntryLimit)
      : max_bytes_(max_bytes), max_entries_(max_entries) {}

  static constexpr std::size_t kNoEntryLimit = ~std::size_t{0};

  AugmentationCache(const AugmentationCache&) = delete;
  AugmentationCache& operator=(const AugmentationCache&) = delete;

  /// Returns the cached graph for `key`, or invokes `build` and inserts the
  /// result. `build` runs outside the cache lock, so concurrent misses on
  /// distinct keys augment in parallel; two racing builds of the same key
  /// keep the first inserted graph (the loser's copy is simply released).
  /// `hit` (optional) reports whether this call avoided running `build` —
  /// a same-key race loser serves the winner's graph but still reports (and
  /// counts as) a miss, since it paid the build; hits + misses == calls.
  GraphPtr GetOrBuild(std::string key, const BuildFn& build,
                      bool* hit = nullptr);

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.entries = lru_.size();
    s.charged_bytes = charged_bytes_;
    s.graph_bytes = graph_bytes_;
    s.max_bytes = max_bytes_;
    return s;
  }

  /// Bytes currently charged against the budget (resident entries'
  /// marginal query content + keys + LRU/index overhead). Race-free: the
  /// counters live under the cache mutex. Resident pooled shells report
  /// zero to the overlay pool while checked out, so the engine's serving
  /// fields sum without double-counting.
  std::size_t MemoryUsageBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return charged_bytes_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    lru_.clear();
    charged_bytes_ = 0;
    graph_bytes_ = 0;
  }

 private:
  struct Entry {
    std::string key;
    GraphPtr graph;
    std::size_t bytes = 0;
    std::size_t graph_bytes = 0;
  };
  using LruList = std::list<Entry>;

  const std::size_t max_bytes_;
  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  std::size_t charged_bytes_ = 0;
  std::size_t graph_bytes_ = 0;
  Stats stats_;
};

}  // namespace grasp::summary

#endif  // GRASP_SUMMARY_AUGMENTATION_CACHE_H_
