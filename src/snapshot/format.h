#ifndef GRASP_SNAPSHOT_FORMAT_H_
#define GRASP_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/hash.h"

namespace grasp::snapshot {

/// On-disk layout of an index snapshot: one page-aligned, sectioned,
/// checksummed binary image of the engine's full immutable state.
///
///   +------------------+ offset 0
///   | FileHeader       |  magic, version, section count, file size,
///   |                  |  checksum over the section table
///   +------------------+
///   | SectionEntry[n]  |  id, element size, offset, byte length, checksum
///   +------------------+ first page boundary
///   | section payload  |  flat arrays, each starting on its own page so a
///   | ...              |  warm engine can point CSR spans straight at the
///   +------------------+  mapping (zero-copy, any element alignment)
///
/// Every structural fact the loader uses (section count, offsets, lengths,
/// element sizes) is validated against the actual file size before any
/// payload byte is interpreted, and every payload section carries its own
/// checksum — a truncated, bit-flipped or hand-crafted file is rejected
/// with a clean Status instead of undefined behavior.

inline constexpr char kMagic[8] = {'G', 'R', 'S', 'P', 'I', 'D', 'X', '\n'};
/// Version 2 added the inverted index's length-bucket CSR sections (32/33);
/// the reader requires an exact version match, so older snapshots rebuild.
inline constexpr std::uint32_t kFormatVersion = 2;
/// Section payloads start on page boundaries; 4096 is safe for mmap on
/// every platform the engine targets (mappings are page-granular).
inline constexpr std::uint64_t kPageSize = 4096;
/// Hard bound on the section table; far above what the format defines, so
/// a corrupt count cannot drive a huge table scan.
inline constexpr std::uint32_t kMaxSections = 256;

/// Section identifiers. Values are part of the format: never renumber, only
/// append (and bump kFormatVersion on incompatible layout changes).
enum SectionId : std::uint32_t {
  kSectionMeta = 0,  ///< one EngineMeta record (scalar engine state)
  // rdf::Dictionary: per-term kinds + a length-delimited text blob.
  kSectionDictKinds = 1,
  kSectionDictOffsets = 2,
  kSectionDictText = 3,
  // rdf::TripleStore: sorted SPO table + POS/OSP permutations + stats.
  kSectionTriples = 4,
  kSectionTriplePos = 5,
  kSectionTripleOsp = 6,
  kSectionPredicateStats = 7,
  // rdf::DataGraph: vertex/edge records + out/in + entity->class CSR.
  kSectionDataNodes = 8,
  kSectionDataEdges = 9,
  kSectionDataOutOffsets = 10,
  kSectionDataOutValues = 11,
  kSectionDataInOffsets = 12,
  kSectionDataInValues = 13,
  kSectionDataClassOffsets = 14,
  kSectionDataClassValues = 15,
  // summary::SummaryGraph: node/edge records + incidence CSR.
  kSectionSummaryNodes = 16,
  kSectionSummaryEdges = 17,
  kSectionSummaryIncOffsets = 18,
  kSectionSummaryIncValues = 19,
  // keyword::KeywordIndex: flattened element/context tables + numerics.
  kSectionKwElements = 20,
  kSectionKwContexts = 21,
  kSectionKwCtxClasses = 22,
  kSectionKwCtxCounts = 23,
  kSectionKwNumeric = 24,
  // text::InvertedIndex: vocabulary blob + CSR postings + doc lengths.
  kSectionIiTermOffsets = 25,
  kSectionIiTermText = 26,
  kSectionIiPostingOffsets = 27,
  kSectionIiPostings = 28,
  kSectionIiDocTermCounts = 29,
  kSectionIiSortedTerms = 30,
  /// rdf::DataGraph: dense term -> vertex table.
  kSectionDataTermVertex = 31,
  /// text::InvertedIndex: fuzzy-scan length buckets (CSR over term
  /// indexes; bucket = term length). Added in format version 2.
  kSectionIiBucketOffsets = 32,
  kSectionIiBucketTerms = 33,
  /// shard::ShardPlan: element 0 = shard count, elements 1..NumVertices =
  /// per-vertex shard ids. Optional — absent on unsharded builds, and
  /// readers tolerate absence (no version bump; an old reader skips the
  /// unknown id, an old image simply has no plan).
  kSectionShardPlan = 34,
};

struct FileHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t section_count;
  /// Total file size; must equal the mapped size exactly.
  std::uint64_t file_size;
  /// Checksum64 over the section table that follows the header.
  std::uint64_t table_checksum;
  std::uint64_t reserved;
};
static_assert(sizeof(FileHeader) == 40);

struct SectionEntry {
  std::uint32_t id;
  /// sizeof the element type the section was written with; a mismatch with
  /// the reader's type rejects snapshots from an incompatible ABI.
  std::uint32_t elem_size;
  std::uint64_t offset;       ///< from file start; page-aligned
  std::uint64_t byte_length;  ///< multiple of elem_size
  std::uint64_t checksum;     ///< Checksum64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);

/// Fast 64-bit content checksum. Four independent splitmix lanes keep the
/// multiply latency pipelined (verification bandwidth is on the warm-start
/// critical path: every section is checksummed before the engine serves).
/// Not cryptographic — it guards against truncation, bit rot and transport
/// corruption, not against an adversary crafting collisions.
inline std::uint64_t Checksum64(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h0 = 0xcbf29ce484222325ULL ^ Mix64(n);
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2 = 0xbf58476d1ce4e5b9ULL;
  std::uint64_t h3 = 0x94d049bb133111ebULL;
  while (n >= 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    std::memcpy(&w2, p + 16, 8);
    std::memcpy(&w3, p + 24, 8);
    h0 = Mix64(h0 ^ w0);
    h1 = Mix64(h1 ^ w1);
    h2 = Mix64(h2 ^ w2);
    h3 = Mix64(h3 ^ w3);
    p += 32;
    n -= 32;
  }
  std::uint64_t h = Mix64(h0 ^ Mix64(h1 ^ Mix64(h2 ^ h3)));
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = Mix64(h ^ w);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = Mix64(h ^ tail);
  }
  return h;
}

}  // namespace grasp::snapshot

#endif  // GRASP_SNAPSHOT_FORMAT_H_
