#ifndef GRASP_SNAPSHOT_READER_H_
#define GRASP_SNAPSHOT_READER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "snapshot/format.h"
#include "snapshot/mapped_file.h"

namespace grasp::snapshot {

/// Maps a snapshot file and validates its envelope: magic, version, file
/// size, section-table checksum, and — for every section — offset/length
/// bounds against the real file size, element-size sanity, and the payload
/// checksum. Nothing read from the file is trusted until it has been
/// checked, so corrupt or truncated images fail Open() with a clean Status
/// and can never produce out-of-bounds spans.
///
/// Structural validation of the *contents* (CSR offset monotonicity, id
/// ranges) is the caller's job — see engine_snapshot.cc.
class SnapshotReader {
 public:
  static Result<SnapshotReader> Open(const std::string& path,
                                     MappedFile::Options mapping_options);
  static Result<SnapshotReader> Open(const std::string& path) {
    return Open(path, MappedFile::Options{});
  }

  bool HasSection(std::uint32_t id) const { return Find(id) != nullptr; }

  /// Typed view of one section's payload, pointing into the mapping. The
  /// stored element size must equal sizeof(T) — a mismatch (foreign ABI or
  /// corrupted entry) is an error, not a reinterpretation.
  template <typename T>
  Result<std::span<const T>> Section(std::uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const SectionEntry* entry = Find(id);
    if (entry == nullptr) {
      return Status::InvalidArgument(
          StrFormat("snapshot: missing section %u", id));
    }
    if (entry->elem_size != sizeof(T)) {
      return Status::InvalidArgument(StrFormat(
          "snapshot: section %u element size %u does not match expected %zu",
          id, entry->elem_size, sizeof(T)));
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(mapping_.data() + entry->offset),
        static_cast<std::size_t>(entry->byte_length / sizeof(T)));
  }

  std::size_t mapped_bytes() const { return mapping_.size(); }

  /// Transfers the mapping out (the reader is unusable afterwards); the
  /// loader stores it next to the structures whose spans point into it.
  MappedFile TakeMapping() && { return std::move(mapping_); }

 private:
  const SectionEntry* Find(std::uint32_t id) const {
    for (const SectionEntry& e : table_) {
      if (e.id == id) return &e;
    }
    return nullptr;
  }

  MappedFile mapping_;
  std::vector<SectionEntry> table_;
};

}  // namespace grasp::snapshot

#endif  // GRASP_SNAPSHOT_READER_H_
