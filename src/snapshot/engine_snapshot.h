#ifndef GRASP_SNAPSHOT_ENGINE_SNAPSHOT_H_
#define GRASP_SNAPSHOT_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "snapshot/mapped_file.h"
#include "summary/summary_graph.h"
#include "text/tokenizer.h"

namespace grasp::snapshot {

/// Borrowed views of the engine's immutable index state, as handed to the
/// snapshot writer (see KeywordSearchEngine::SaveIndex).
struct EngineParts {
  const rdf::Dictionary* dictionary = nullptr;
  const rdf::TripleStore* store = nullptr;
  const rdf::DataGraph* data_graph = nullptr;
  const summary::SummaryGraph* summary = nullptr;
  const keyword::KeywordIndex* keyword_index = nullptr;
  /// Optional shard plan (kSectionShardPlan layout: [num_shards,
  /// shard_of_vertex...]); empty = unsharded build, no section written.
  std::span<const std::uint32_t> shard_plan;
};

/// Serializes the full immutable engine state into one page-aligned,
/// sectioned, checksummed image (see snapshot/format.h for the layout).
Status WriteEngineSnapshot(const EngineParts& parts, const std::string& path);

/// The result of loading a snapshot: the mapping plus every index structure,
/// ready to serve. The flat arrays (CSR topology, triple table, permutations)
/// point zero-copy into `mapping`; only the hash maps and string-bearing
/// structures (dictionary text, vocabulary, element contexts) are
/// materialized, each in one linear pass — no parsing, tokenization,
/// graph building or sorting happens.
///
/// `mapping` must outlive every other member (they are all heap-allocated,
/// so moving this struct is safe and keeps all internal pointers valid).
struct LoadedEngineParts {
  MappedFile mapping;
  std::unique_ptr<rdf::Dictionary> dictionary;
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<rdf::DataGraph> data_graph;
  std::unique_ptr<summary::SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> keyword_index;
  /// The lexical configuration the index was built with; querying with a
  /// different one would mis-tokenize keywords against the stored postings.
  text::AnalyzerOptions analyzer_options;
  /// Zero-copy view of the kSectionShardPlan payload (same [num_shards,
  /// shard_of_vertex...] layout); empty when the image carries no plan.
  std::span<const std::uint32_t> shard_plan;
  double load_millis = 0.0;
};

/// Maps `path` and reconstructs the engine state. Every length, offset and
/// id read from the file is bounds-checked before use and all payload
/// checksums are verified; corrupt, truncated or incompatible images are
/// rejected with InvalidArgument and never produce partial state.
Result<LoadedEngineParts> ReadEngineSnapshot(const std::string& path);

}  // namespace grasp::snapshot

#endif  // GRASP_SNAPSHOT_ENGINE_SNAPSHOT_H_
