#ifndef GRASP_SNAPSHOT_WRITER_H_
#define GRASP_SNAPSHOT_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "snapshot/format.h"

namespace grasp::snapshot {

/// Serializes a set of flat arrays into one snapshot image. Sections are
/// registered as spans (the writer does not copy — the buffers must stay
/// alive until WriteFile returns) and laid out page-aligned with per-section
/// checksums, so the reader can mmap the file and hand the arrays back
/// zero-copy.
class SnapshotWriter {
 public:
  /// Registers a section. `id` must be unique; elements must be trivially
  /// copyable (they are reinterpreted from the mapping on load).
  template <typename T>
  void AddSection(std::uint32_t id, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddRaw(id, static_cast<std::uint32_t>(sizeof(T)), data.data(),
           data.size_bytes());
  }

  /// Writes the image to `path` (truncating any existing file). Returns
  /// IoError on filesystem failures.
  Status WriteFile(const std::string& path) const;

 private:
  struct Pending {
    std::uint32_t id;
    std::uint32_t elem_size;
    const void* data;
    std::uint64_t bytes;
  };

  void AddRaw(std::uint32_t id, std::uint32_t elem_size, const void* data,
              std::uint64_t bytes);

  std::vector<Pending> sections_;
};

}  // namespace grasp::snapshot

#endif  // GRASP_SNAPSHOT_WRITER_H_
