#include "snapshot/reader.h"

#include <cstring>

#include "common/failpoint.h"

namespace grasp::snapshot {

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            MappedFile::Options mapping_options) {
  // Failpoint: a transient open failure above the mmap layer, so the
  // engine's retry loop can be exercised with the real file intact.
  if (failpoint::ShouldFail("snapshot.open")) {
    return Status::IoError("failpoint snapshot.open: injected open failure for " +
                           path);
  }
  SnapshotReader reader;
  GRASP_ASSIGN_OR_RETURN(reader.mapping_, MappedFile::Open(path, mapping_options));
  const unsigned char* base = reader.mapping_.data();
  const std::uint64_t size = reader.mapping_.size();

  // Envelope. Each check only relies on facts established by the previous
  // ones, so no read ever leaves the mapping.
  if (size < sizeof(FileHeader)) {
    return Status::InvalidArgument("snapshot: file smaller than header");
  }
  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  if (header.format_version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("snapshot: unsupported format version %u (expected %u)",
                  header.format_version, kFormatVersion));
  }
  if (header.file_size != size) {
    return Status::InvalidArgument(
        StrFormat("snapshot: header says %llu bytes, file has %llu",
                  static_cast<unsigned long long>(header.file_size),
                  static_cast<unsigned long long>(size)));
  }
  if (header.section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot: section count out of range");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (table_bytes > size - sizeof(FileHeader)) {
    return Status::InvalidArgument("snapshot: section table truncated");
  }
  const unsigned char* table_base = base + sizeof(FileHeader);
  if (Checksum64(table_base, table_bytes) != header.table_checksum) {
    return Status::InvalidArgument("snapshot: section table checksum mismatch");
  }

  // The table is now trusted bytes; its *fields* still are not.
  reader.table_.resize(header.section_count);
  std::memcpy(reader.table_.data(), table_base, table_bytes);
  for (std::size_t i = 0; i < reader.table_.size(); ++i) {
    const SectionEntry& e = reader.table_[i];
    for (std::size_t j = 0; j < i; ++j) {
      if (reader.table_[j].id == e.id) {
        return Status::InvalidArgument(
            StrFormat("snapshot: duplicate section %u", e.id));
      }
    }
    if (e.elem_size == 0 || e.elem_size > kPageSize) {
      return Status::InvalidArgument(
          StrFormat("snapshot: section %u element size out of range", e.id));
    }
    if (e.offset % kPageSize != 0) {
      return Status::InvalidArgument(
          StrFormat("snapshot: section %u offset not page-aligned", e.id));
    }
    // Overflow-safe containment: offset and length are checked against the
    // real size separately before their sum is formed.
    if (e.offset > size || e.byte_length > size - e.offset) {
      return Status::InvalidArgument(
          StrFormat("snapshot: section %u exceeds file bounds", e.id));
    }
    if (e.byte_length % e.elem_size != 0) {
      return Status::InvalidArgument(StrFormat(
          "snapshot: section %u length not a multiple of element size", e.id));
    }
    if (Checksum64(base + e.offset, e.byte_length) != e.checksum) {
      return Status::InvalidArgument(
          StrFormat("snapshot: section %u checksum mismatch", e.id));
    }
  }
  return reader;
}

}  // namespace grasp::snapshot
